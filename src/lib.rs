//! # uopcache
//!
//! A from-scratch Rust reproduction of **"From Optimal to Practical:
//! Efficient Micro-op Cache Replacement Policies for Data Center
//! Applications"** (HPCA 2025): the FLACK near-optimal offline replacement
//! policy, the FURBYS practical profile-guided policy, every baseline they
//! are compared against, and the simulation substrate (synthetic data-center
//! workloads, a frontend simulator with a detailed micro-op cache model, a
//! min-cost-flow solver, and a McPAT/CACTI-style power model).
//!
//! This crate is a facade: each subsystem lives in its own workspace crate
//! and is re-exported here under a short module name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `uopcache-model` | addresses, prediction windows, configs, statistics |
//! | [`trace`] | `uopcache-trace` | synthetic workloads (Table II apps), PW stream formation |
//! | [`flow`] | `uopcache-flow` | min-cost max-flow solver |
//! | [`cache`] | `uopcache-cache` | micro-op cache structure, policy trait, L1i |
//! | [`policies`] | `uopcache-policies` | LRU/SRRIP/SHiP++/GHRP/Mockingjay/Thermometer |
//! | [`offline`] | `uopcache-offline` | Belady, FOO, decision replay |
//! | [`sim`] | `uopcache-sim` | timed frontend simulator |
//! | [`power`] | `uopcache-power` | energy model, performance-per-watt |
//! | [`core`] | `uopcache-core` | **FLACK**, **FURBYS**, Jenks breaks, the 7-step pipeline |
//! | [`exec`] | `uopcache-exec` | deterministic parallel experiment engine |
//! | [`obs`] | `uopcache-obs` | event stream, metrics registry, recorders |
//! | [`sample`] | `uopcache-sample` | SimPoint-style representative-interval sampling |
//!
//! # Examples
//!
//! Compare LRU with FURBYS on a synthetic Kafka trace:
//!
//! ```
//! use uopcache::cache::LruPolicy;
//! use uopcache::core::FurbysPipeline;
//! use uopcache::model::FrontendConfig;
//! use uopcache::sim::Frontend;
//! use uopcache::trace::{build_trace, AppId, InputVariant};
//!
//! let cfg = FrontendConfig::zen3();
//! let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, 10_000);
//!
//! let lru = Frontend::builder(cfg).policy(LruPolicy::new()).build().run(&trace);
//!
//! let pipeline = FurbysPipeline::new(cfg);
//! let profile = pipeline.profile(&trace);
//! let furbys = pipeline.deploy_and_run(&profile, &trace);
//!
//! assert!(furbys.uopc.uops_missed <= lru.uopc.uops_missed);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

pub use uopcache_cache as cache;
pub use uopcache_core as core;
pub use uopcache_exec as exec;
pub use uopcache_flow as flow;
pub use uopcache_model as model;
pub use uopcache_obs as obs;
pub use uopcache_offline as offline;
pub use uopcache_policies as policies;
pub use uopcache_power as power;
pub use uopcache_sample as sample;
pub use uopcache_sim as sim;
pub use uopcache_trace as trace;
