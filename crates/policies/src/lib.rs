//! # uopcache-policies
//!
//! Online replacement-policy baselines for the micro-op cache, matching the
//! set the paper compares against (§III-E, §VI):
//!
//! * [`SrripPolicy`] — static re-reference interval prediction (2-bit RRPV).
//! * [`ShipPlusPlusPolicy`] — SHiP++: PC-signature history counter table.
//! * [`GhrpPolicy`] — global-history-based dead-block prediction with bypass.
//! * [`MockingjayPolicy`] — sampled reuse-distance prediction (ETA eviction).
//! * [`ThermometerPolicy`] — profile-guided hot/warm/cold classification.
//! * [`RandomPolicy`] / [`FifoPolicy`] — sanity baselines for tests.
//!
//! (LRU, the paper's baseline, lives in `uopcache-cache` as
//! [`uopcache_cache::LruPolicy`]; FURBYS, the paper's contribution, lives in
//! `uopcache-core`.)
//!
//! The crate also provides [`run_trace`], a synchronous insert-on-miss driver
//! used for policy comparisons that do not need frontend timing, and
//! [`profile::lru_hit_rates`] for building Thermometer profiles.
//!
//! # Examples
//!
//! ```
//! use uopcache_cache::UopCache;
//! use uopcache_model::UopCacheConfig;
//! use uopcache_policies::{run_trace, SrripPolicy};
//! use uopcache_trace::{build_trace, AppId, InputVariant};
//!
//! let trace = build_trace(AppId::Kafka, InputVariant::default(), 5_000);
//! let mut cache = UopCache::new(UopCacheConfig::zen3(), Box::new(SrripPolicy::new()));
//! let stats = run_trace(&mut cache, &trace);
//! assert!(stats.uops_hit > 0);
//! ```

pub mod fifo;
pub mod ghrp;
pub mod mockingjay;
pub mod profile;
pub mod random;
pub mod runner;
pub mod ship;
pub mod slots;
pub mod srrip;
pub mod thermometer;

pub use fifo::FifoPolicy;
pub use ghrp::GhrpPolicy;
pub use mockingjay::MockingjayPolicy;
pub use random::RandomPolicy;
pub use runner::{run_trace, run_trace_observed};
pub use ship::ShipPlusPlusPolicy;
pub use slots::SlotTable;
pub use srrip::SrripPolicy;
pub use thermometer::{HotClass, ThermometerPolicy};
