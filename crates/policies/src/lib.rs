//! # uopcache-policies
//!
//! Online replacement-policy baselines for the micro-op cache, matching the
//! set the paper compares against (§III-E, §VI):
//!
//! * [`SrripPolicy`] — static re-reference interval prediction (2-bit RRPV).
//! * [`ShipPlusPlusPolicy`] — SHiP++: PC-signature history counter table.
//! * [`GhrpPolicy`] — global-history-based dead-block prediction with bypass.
//! * [`MockingjayPolicy`] — sampled reuse-distance prediction (ETA eviction).
//! * [`ThermometerPolicy`] — profile-guided hot/warm/cold classification.
//! * [`RandomPolicy`] / [`FifoPolicy`] — sanity baselines for tests.
//!
//! Plus the classic policy zoo the dynamic-selection work duels over:
//!
//! * [`ClockPolicy`] / [`CarPolicy`] — second-chance sweeps, plain and
//!   ARC-adaptive.
//! * [`ArcPolicy`] / [`TwoQPolicy`] — ghost-list history (B1/B2, A1out).
//! * [`SlruPolicy`] — segmented probation/protected LRU.
//! * [`LfuPolicy`] / [`MruPolicy`] — frequency-based and anti-recency
//!   extremes.
//! * [`SetDuelingPolicy`] — the meta-policy: K leader sets per candidate,
//!   saturating PSEL counters, followers switch to the phase winner.
//!
//! (LRU, the paper's baseline, lives in `uopcache-cache` as
//! [`uopcache_cache::LruPolicy`]; FURBYS, the paper's contribution, lives in
//! `uopcache-core`.)
//!
//! The crate also provides [`run_trace`], a synchronous insert-on-miss driver
//! used for policy comparisons that do not need frontend timing, and
//! [`profile::lru_hit_rates`] for building Thermometer profiles.
//!
//! # Examples
//!
//! ```
//! use uopcache_cache::UopCache;
//! use uopcache_model::UopCacheConfig;
//! use uopcache_policies::{run_trace, SrripPolicy};
//! use uopcache_trace::{build_trace, AppId, InputVariant};
//!
//! let trace = build_trace(AppId::Kafka, InputVariant::default(), 5_000);
//! let mut cache = UopCache::new(UopCacheConfig::zen3(), Box::new(SrripPolicy::new()));
//! let stats = run_trace(&mut cache, &trace);
//! assert!(stats.uops_hit > 0);
//! ```

pub mod arc;
pub mod car;
pub mod clock;
pub mod dueling;
pub mod fifo;
pub mod ghost;
pub mod ghrp;
pub mod lfu;
pub mod mockingjay;
pub mod mru;
pub mod profile;
pub mod random;
pub mod runner;
pub mod ship;
pub mod slots;
pub mod slru;
pub mod srrip;
pub mod thermometer;
pub mod twoq;

pub use arc::ArcPolicy;
pub use car::CarPolicy;
pub use clock::ClockPolicy;
pub use dueling::SetDuelingPolicy;
pub use fifo::FifoPolicy;
pub use ghost::GhostRing;
pub use ghrp::GhrpPolicy;
pub use lfu::LfuPolicy;
pub use mockingjay::MockingjayPolicy;
pub use mru::MruPolicy;
pub use random::RandomPolicy;
pub use runner::{run_trace, run_trace_observed};
pub use ship::ShipPlusPlusPolicy;
pub use slots::{SetTable, SlotTable};
pub use slru::SlruPolicy;
pub use srrip::SrripPolicy;
pub use thermometer::{HotClass, ThermometerPolicy};
pub use twoq::TwoQPolicy;
