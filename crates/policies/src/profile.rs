//! Profiling helpers: per-start-address hit rates from a baseline run, the
//! input to profile-guided policies (Thermometer here, FURBYS in
//! `uopcache-core`).

use uopcache_cache::{LruPolicy, UopCache};
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, LookupTrace, UopCacheConfig};

/// Runs `trace` through an LRU cache and returns the micro-op-weighted hit
/// rate of every PW start address.
///
/// # Examples
///
/// ```
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::profile::lru_hit_rates;
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let trace = build_trace(AppId::Kafka, InputVariant::default(), 5_000);
/// let rates = lru_hit_rates(&trace, UopCacheConfig::zen3());
/// assert!(rates.values().all(|&r| (0.0..=1.0).contains(&r)));
/// ```
pub fn lru_hit_rates(trace: &LookupTrace, cfg: UopCacheConfig) -> FastHashMap<Addr, f64> {
    let mut cache = UopCache::new(cfg, Box::new(LruPolicy::new()));
    let mut hit: FastHashMap<Addr, u64> = FastHashMap::default();
    let mut total: FastHashMap<Addr, u64> = FastHashMap::default();
    for access in trace.iter() {
        let result = cache.lookup(&access.pw);
        let uops = u64::from(access.pw.uops);
        *total.entry(access.pw.start).or_insert(0) += uops;
        *hit.entry(access.pw.start).or_insert(0) += u64::from(result.hit_uops());
        if !result.is_full_hit() {
            cache.insert(&access.pw);
        }
    }
    total
        .into_iter()
        .map(|(a, t)| {
            let h = hit.get(&a).copied().unwrap_or(0);
            (a, if t == 0 { 0.0 } else { h as f64 / t as f64 })
        })
        .collect()
}

/// Runs `trace` through an LRU cache and returns the **PW-granularity** hit
/// rate of every start address: each lookup counts 1, and only fully-served
/// lookups count as hits. This is the profile a straight port of Thermometer
/// (a BTB policy) uses — it is blind to micro-op costs and partial hits,
/// one of the gaps FURBYS closes.
pub fn lru_pw_hit_rates(trace: &LookupTrace, cfg: UopCacheConfig) -> FastHashMap<Addr, f64> {
    let mut cache = UopCache::new(cfg, Box::new(LruPolicy::new()));
    let mut hit: FastHashMap<Addr, u64> = FastHashMap::default();
    let mut total: FastHashMap<Addr, u64> = FastHashMap::default();
    for access in trace.iter() {
        let result = cache.lookup(&access.pw);
        *total.entry(access.pw.start).or_insert(0) += 1;
        if result.is_full_hit() {
            *hit.entry(access.pw.start).or_insert(0) += 1;
        } else {
            cache.insert(&access.pw);
        }
    }
    total
        .into_iter()
        .map(|(a, t)| {
            let h = hit.get(&a).copied().unwrap_or(0);
            (a, if t == 0 { 0.0 } else { h as f64 / t as f64 })
        })
        .collect()
}

/// Converts per-access hit observations into per-start hit rates.
/// Generic building block for policies fed by other oracles.
pub fn hit_rates_from_observations<I>(observations: I) -> FastHashMap<Addr, f64>
where
    I: IntoIterator<Item = (Addr, u32, u32)>, // (start, hit_uops, total_uops)
{
    let mut hit: FastHashMap<Addr, u64> = FastHashMap::default();
    let mut total: FastHashMap<Addr, u64> = FastHashMap::default();
    for (a, h, t) in observations {
        *hit.entry(a).or_insert(0) += u64::from(h);
        *total.entry(a).or_insert(0) += u64::from(t);
    }
    total
        .into_iter()
        .map(|(a, t)| {
            let h = hit.get(&a).copied().unwrap_or(0);
            (a, if t == 0 { 0.0 } else { h as f64 / t as f64 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    #[test]
    fn hot_loops_profile_hotter_than_cold_tail() {
        let trace = build_trace(AppId::Postgres, InputVariant(0), 20_000);
        let rates = lru_hit_rates(&trace, UopCacheConfig::zen3());
        let counts = trace.access_counts();
        // Average hit rate of the 20 most-accessed starts vs 20 single-access
        // starts.
        let mut by_count: Vec<(&Addr, &u64)> = counts.iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(a.1));
        let hot_avg: f64 = by_count.iter().take(20).map(|(a, _)| rates[a]).sum::<f64>() / 20.0;
        let cold: Vec<f64> = by_count
            .iter()
            .rev()
            .filter(|(_, &c)| c == 1)
            .take(20)
            .map(|(a, _)| rates[a])
            .collect();
        let cold_avg: f64 = cold.iter().sum::<f64>() / cold.len().max(1) as f64;
        assert!(hot_avg > cold_avg, "hot {hot_avg} vs cold {cold_avg}");
    }

    #[test]
    fn observations_aggregate() {
        let rates = hit_rates_from_observations([
            (Addr::new(1), 4, 4),
            (Addr::new(1), 0, 4),
            (Addr::new(2), 0, 8),
        ]);
        assert!((rates[&Addr::new(1)] - 0.5).abs() < 1e-12);
        assert!(rates[&Addr::new(2)].abs() < 1e-12);
    }
}
