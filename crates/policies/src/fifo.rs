//! First-in-first-out replacement (sanity baseline).

use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Evicts the oldest-inserted resident PW regardless of hits.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::FifoPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(FifoPolicy::new()));
/// assert_eq!(cache.policy_name(), "FIFO");
/// ```
#[derive(Clone, Debug, Default)]
pub struct FifoPolicy {
    _private: (),
}

impl FifoPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FifoPolicy { _private: () }
    }
}

impl PwReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn on_hit(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_evict(&mut self, _set: usize, _meta: &PwMeta) {}

    fn choose_victim(&mut self, _set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        resident
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.inserted_at)
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    #[test]
    fn ignores_recency() {
        let mk = |slot, inserted_at, last_access| PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + slot as u64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at,
            last_access,
            hits: 0,
        };
        let mut p = FifoPolicy::new();
        // Oldest-inserted has the freshest access; FIFO still evicts it.
        let resident = [mk(0, 1, 99), mk(1, 5, 2)];
        let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
        assert_eq!(p.choose_victim(0, &incoming, &resident), 0);
    }
}
