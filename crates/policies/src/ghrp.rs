//! GHRP: global-history-based dead-block prediction with bypass
//! (Mirbagher Ajorpaz et al., ISCA 2018), adapted to prediction windows.

use crate::slots::SlotTable;
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::{Addr, PwDesc};

const TABLE_BITS: u32 = 12;
const TABLE_SIZE: usize = 1 << TABLE_BITS;
const NUM_TABLES: usize = 3;
const COUNTER_MAX: u8 = 7;
/// Counter level above which one table votes "dead".
const DEAD_LEVEL: u8 = 4;
/// Vote threshold: a signature is predicted dead when at least this many
/// tables vote dead. Bypass additionally requires a unanimous vote.
const DEAD_VOTES: usize = 2;
/// History bits kept: one recent PW address of context. Longer histories
/// fragment training too much in the micro-op cache, where each start
/// address maps to exactly one PW (§III-E).
const HISTORY_MASK: u64 = 0xff;
const RRPV_MAX: u8 = 3;
const RRPV_INSERT: u8 = 2;

/// GHRP adapted to the micro-op cache: a global history register of recent
/// PW start addresses is hashed with the access address into signatures that
/// index several prediction tables; a majority vote predicts whether the PW
/// is *dead* (will not be reused before eviction). Predicted-dead residents
/// are preferred victims and predicted-dead insertions are bypassed.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::GhrpPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(GhrpPolicy::new()));
/// assert_eq!(cache.policy_name(), "GHRP");
/// ```
#[derive(Clone, Debug)]
pub struct GhrpPolicy {
    tables: [Vec<u8>; NUM_TABLES],
    /// Global history of recent PW start addresses (hashed).
    ghr: u64,
    /// Per-slot signature captured at insertion, for training on eviction.
    sig: SlotTable<u32>,
    /// SRRIP backbone: dead predictions modulate insertion depth and break
    /// ties in the re-reference stack.
    rrpv: SlotTable<u8>,
}

impl Default for GhrpPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl GhrpPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        GhrpPolicy {
            tables: std::array::from_fn(|_| vec![0; TABLE_SIZE]),
            ghr: 0,
            sig: SlotTable::new(),
            rrpv: SlotTable::new(),
        }
    }

    fn signature(&self, start: Addr) -> u32 {
        let mixed = start.get() ^ ((self.ghr & HISTORY_MASK) << 24);
        (mixed.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as u32
    }

    fn table_index(sig: u32, t: usize) -> usize {
        let folded = sig.wrapping_mul([0x85eb_ca6b, 0xc2b2_ae35, 0x27d4_eb2f][t]);
        (folded >> (32 - TABLE_BITS)) as usize
    }

    fn dead_votes(&self, sig: u32) -> usize {
        (0..NUM_TABLES)
            .filter(|&t| self.tables[t][Self::table_index(sig, t)] >= DEAD_LEVEL)
            .count()
    }

    fn predict_dead(&self, sig: u32) -> bool {
        self.dead_votes(sig) >= DEAD_VOTES
    }

    fn train(&mut self, sig: u32, dead: bool) {
        for t in 0..NUM_TABLES {
            let c = &mut self.tables[t][Self::table_index(sig, t)];
            if dead {
                *c = (*c + 1).min(COUNTER_MAX);
            } else {
                // Hits train alive twice as fast as deaths train dead, so a
                // live signature survives the occasional unlucky eviction.
                *c = c.saturating_sub(2);
            }
        }
    }

    fn push_history(&mut self, start: Addr) {
        // Hash each address so alignment does not blank the history bits.
        let h = start.get().wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56;
        self.ghr = (self.ghr << 8) ^ h;
    }
}

impl PwReplacementPolicy for GhrpPolicy {
    fn name(&self) -> &'static str {
        "GHRP"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.sig.reserve(sets, ways);
        self.rrpv.reserve(sets, ways);
    }

    fn on_lookup(&mut self, pw: &PwDesc) {
        self.push_history(pw.start);
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        // A hit proves the block was alive: train its insertion signature.
        let sig = *self.sig.get(set, meta.slot);
        self.train(sig, false);
        *self.rrpv.get_mut(set, meta.slot) = 0;
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        let sig = self.signature(meta.desc.start);
        *self.sig.get_mut(set, meta.slot) = sig;
        // Predicted-dead windows are inserted with a distant re-reference
        // prediction so they leave quickly if the prediction holds.
        *self.rrpv.get_mut(set, meta.slot) = if self.predict_dead(sig) {
            RRPV_MAX
        } else {
            RRPV_INSERT
        };
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        // Evicted without any hit: the insertion signature was dead.
        if meta.hits == 0 {
            let sig = *self.sig.get(set, meta.slot);
            self.train(sig, true);
        }
        *self.sig.get_mut(set, meta.slot) = 0;
        *self.rrpv.get_mut(set, meta.slot) = 0;
    }

    fn should_bypass(
        &mut self,
        _set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        _resident: &[PwMeta],
    ) -> bool {
        // Only bypass when insertion would force an eviction, and only on a
        // unanimous dead vote.
        if needed_entries <= free_entries {
            return false;
        }
        let sig = self.signature(incoming.start);
        self.dead_votes(sig) == NUM_TABLES
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // Prefer predicted-dead residents (stalest first); otherwise fall
        // back to the SRRIP stack.
        if let Some((i, _)) = resident
            .iter()
            .enumerate()
            .filter(|(_, m)| self.predict_dead(*self.sig.get(set, m.slot)))
            .min_by_key(|(_, m)| m.last_access)
        {
            return i;
        }
        crate::srrip::SrripPolicy::select_victim(&mut self.rrpv, set, resident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn meta(slot: u8, start: u64, last_access: u64, hits: u32) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits,
        }
    }

    #[test]
    fn untrained_predictor_is_alive_and_falls_back_to_srrip() {
        let mut p = GhrpPolicy::new();
        let a = meta(0, 0x100, 9, 0);
        let b = meta(1, 0x200, 3, 0);
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a); // protect a in the SRRIP stack
        let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
        assert!(!p.should_bypass(0, &incoming, 1, 0, &[a, b]));
        assert_eq!(
            p.choose_victim(0, &incoming, &[a, b]),
            1,
            "SRRIP evicts the unreferenced PW"
        );
    }

    #[test]
    fn dead_training_shifts_prediction() {
        let mut p = GhrpPolicy::new();
        // Repeated insert+evict of the same address with zero history churn
        // trains its signature dead.
        let m = meta(0, 0x5000, 0, 0);
        for _ in 0..6 {
            let sig_ghr = p.ghr;
            p.on_insert(0, &m);
            p.on_evict(0, &m);
            p.ghr = sig_ghr; // pin history so the signature is stable
        }
        let sig = p.signature(Addr::new(0x5000));
        assert!(p.predict_dead(sig));
    }

    #[test]
    fn hits_train_alive() {
        let mut p = GhrpPolicy::new();
        let m = meta(0, 0x5000, 0, 0);
        for _ in 0..6 {
            let sig_ghr = p.ghr;
            p.on_insert(0, &m);
            p.on_evict(0, &m);
            p.ghr = sig_ghr;
        }
        let sig = p.signature(Addr::new(0x5000));
        assert!(p.predict_dead(sig));
        // Now reuse it a few times: counters fall back.
        for _ in 0..6 {
            let sig_ghr = p.ghr;
            p.on_insert(0, &m);
            p.on_hit(0, &m);
            p.ghr = sig_ghr;
        }
        assert!(!p.predict_dead(sig));
    }

    #[test]
    fn history_changes_signatures() {
        let mut p = GhrpPolicy::new();
        let s1 = p.signature(Addr::new(0x100));
        p.push_history(Addr::new(0x2000));
        let s2 = p.signature(Addr::new(0x100));
        assert_ne!(s1, s2);
    }
}
