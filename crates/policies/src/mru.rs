//! Most-recently-used eviction — the classic anti-LRU for cyclic scans.

use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Most-recently-used replacement: evicts the resident PW with the *newest*
/// `last_access`. Pathological on temporal-locality workloads but optimal on
/// looping scans larger than the set — included in the zoo so the dueling
/// and identification machinery has a maximally LRU-unlike reference point.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::MruPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(MruPolicy::new()));
/// assert_eq!(cache.policy_name(), "MRU");
/// ```
#[derive(Clone, Debug, Default)]
pub struct MruPolicy {
    _private: (),
}

impl MruPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        MruPolicy { _private: () }
    }
}

impl PwReplacementPolicy for MruPolicy {
    fn name(&self) -> &'static str {
        "MRU"
    }

    fn on_hit(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_evict(&mut self, _set: usize, _meta: &PwMeta) {}

    fn choose_victim(&mut self, _set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // min_by_key over the negated key rather than max_by_key: Rust's
        // max_by_key returns the *last* maximum, and the wall pins ties to
        // the first (lowest-slot) resident like every other zoo policy.
        resident
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| u64::MAX - m.last_access)
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(start: u64, last_access: u64, slot: u8) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits: 0,
        }
    }

    #[test]
    fn picks_newest() {
        let mut p = MruPolicy::new();
        let resident = [meta(0x10, 3, 0), meta(0x20, 9, 1), meta(0x30, 7, 2)];
        let incoming = PwDesc::new(Addr::new(0x40), 4, 12, PwTermination::TakenBranch);
        assert_eq!(p.choose_victim(0, &incoming, &resident), 1);
    }

    #[test]
    fn ties_break_by_position() {
        let mut p = MruPolicy::new();
        let resident = [meta(0x10, 5, 0), meta(0x20, 5, 1)];
        let incoming = PwDesc::new(Addr::new(0x40), 4, 12, PwTermination::TakenBranch);
        assert_eq!(p.choose_victim(0, &incoming, &resident), 0);
    }
}
