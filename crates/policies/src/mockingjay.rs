//! Mockingjay: mimicking Belady with sampled reuse-distance prediction
//! (Shah, Jain & Lin, HPCA 2022), adapted to prediction windows.

use crate::slots::SlotTable;
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, PwDesc};

/// Reuse distance assumed for never-seen PWs (in lookups).
const DEFAULT_RD: u64 = 64;
/// Every set feeds the reuse-distance predictor. The paper observes (§III-E)
/// that in the micro-op cache every "PC" maps to exactly one PW, so sampled
/// training cannot generalise across blocks the way it does in data caches:
/// "Mockingjay must sample all the sets to achieve high accuracy causing a
/// large space overhead" — which is exactly what this models. Raise this to
/// sample a subset of sets (at an accuracy cost).
const SAMPLE_MOD: usize = 1;
/// Bound on the sampler map (oldest entries are dropped wholesale).
const SAMPLER_CAP: usize = 1 << 14;
/// Bound on the reuse-distance predictor itself. Like the sampler it is
/// dropped wholesale at the cap, and both maps reserve this capacity at
/// `prepare` time so the steady-state hook path never touches the
/// allocator (the alloc-budget wall pins this at zero).
const RDP_CAP: usize = 1 << 14;

/// Mockingjay adapted to the micro-op cache: a reuse-distance predictor
/// (RDP) learns per-start-address reuse distances from sampled sets; every
/// resident PW carries an *estimated time of access* (ETA), and the victim is
/// the PW with the furthest ETA — an online imitation of Belady's MIN.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::MockingjayPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(MockingjayPolicy::new()));
/// assert_eq!(cache.policy_name(), "Mockingjay");
/// ```
#[derive(Clone, Debug)]
pub struct MockingjayPolicy {
    /// Exponentially-weighted predicted reuse distance per start address.
    rdp: FastHashMap<Addr, u64>,
    /// Last sampled access time per start address.
    sampler: FastHashMap<Addr, u64>,
    /// Per-slot estimated time of next access.
    eta: SlotTable<u64>,
    clock: u64,
}

impl Default for MockingjayPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl MockingjayPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        MockingjayPolicy {
            rdp: FastHashMap::default(),
            sampler: FastHashMap::default(),
            eta: SlotTable::new(),
            clock: 0,
        }
    }

    fn predicted_rd(&self, start: Addr) -> u64 {
        self.rdp.get(&start).copied().unwrap_or(DEFAULT_RD)
    }

    fn sample(&mut self, set: usize, start: Addr) {
        if SAMPLE_MOD > 1 && !set.is_multiple_of(SAMPLE_MOD) {
            return;
        }
        if let Some(last) = self.sampler.insert(start, self.clock) {
            let observed = self.clock - last;
            let e = self.rdp.entry(start).or_insert(observed);
            // EWMA with 1/4 step.
            *e = (*e * 3 + observed) / 4;
        }
        if self.sampler.len() > SAMPLER_CAP {
            self.sampler.clear();
        }
        if self.rdp.len() > RDP_CAP {
            self.rdp.clear();
        }
    }
}

impl PwReplacementPolicy for MockingjayPolicy {
    fn name(&self) -> &'static str {
        "Mockingjay"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.eta.reserve(sets, ways);
        // Both maps stay under their caps (checked after every insert), so
        // reserving cap + 1 up front removes rehashing from the hot path.
        self.sampler.reserve(SAMPLER_CAP + 1);
        self.rdp.reserve(RDP_CAP + 1);
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        self.clock += 1;
        self.sample(set, meta.desc.start);
        *self.eta.get_mut(set, meta.slot) = self.clock + self.predicted_rd(meta.desc.start);
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        self.clock += 1;
        self.sample(set, meta.desc.start);
        *self.eta.get_mut(set, meta.slot) = self.clock + self.predicted_rd(meta.desc.start);
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        *self.eta.get_mut(set, meta.slot) = 0;
    }

    fn should_bypass(
        &mut self,
        set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        // Bypass when an eviction would be forced and the incoming PW's next
        // use is predicted further away than every resident's — inserting it
        // could only hurt.
        if resident.is_empty() || needed_entries <= free_entries {
            return false;
        }
        let incoming_eta = self.clock + self.predicted_rd(incoming.start);
        resident
            .iter()
            .all(|m| *self.eta.get(set, m.slot) < incoming_eta)
            && self.predicted_rd(incoming.start) > 4 * DEFAULT_RD
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // Overdue PWs (predicted reuse never happened) are the first
        // victims, most-overdue first; otherwise evict the furthest ETA.
        // LRU breaks ties so untrained PWs do not degenerate to slot-order
        // eviction.
        let clock = self.clock;
        let score = |eta: u64| -> u64 {
            if eta <= clock {
                // Overdue: strictly above any future ETA, ordered by how
                // long overdue.
                u64::MAX / 2 + (clock - eta)
            } else {
                eta
            }
        };
        resident
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| {
                (
                    score(*self.eta.get(set, m.slot)),
                    std::cmp::Reverse(m.last_access),
                )
            })
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn meta(slot: u8, start: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        }
    }

    #[test]
    fn learns_short_reuse_distance_in_sampled_sets() {
        let mut p = MockingjayPolicy::new();
        let m = meta(0, 0x100);
        p.on_insert(0, &m); // set 0 is sampled
        p.on_hit(0, &m);
        p.on_hit(0, &m);
        assert!(p.predicted_rd(Addr::new(0x100)) <= 2 + DEFAULT_RD / 4 + 1);
    }

    #[test]
    fn every_set_trains() {
        // §III-E: in the micro-op cache each PC maps to one PW, so the
        // predictor must observe all sets.
        let mut p = MockingjayPolicy::new();
        let m = meta(0, 0x140);
        p.on_insert(1, &m);
        p.on_hit(1, &m);
        assert!(p.predicted_rd(Addr::new(0x140)) < DEFAULT_RD);
    }

    #[test]
    fn overdue_residents_are_evicted_first() {
        let mut p = MockingjayPolicy::new();
        let hot = meta(0, 0x100);
        // Train a short reuse distance, then let its ETA lapse.
        p.on_insert(0, &hot);
        p.on_hit(0, &hot);
        p.on_hit(0, &hot); // rd ~1, eta ~clock+1
        let fresh = meta(1, 0x200);
        for _ in 0..10 {
            // Advance the clock well past hot's ETA.
            p.on_insert(0, &meta(2, 0x300 + 64));
            p.on_evict(0, &meta(2, 0x300 + 64));
        }
        p.on_insert(0, &fresh); // eta = clock + default (future)
        let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
        let v = p.choose_victim(0, &incoming, &[hot, fresh]);
        assert_eq!(v, 0, "the overdue PW should be the victim");
    }

    #[test]
    fn victim_is_furthest_eta() {
        let mut p = MockingjayPolicy::new();
        let near = meta(0, 0x100);
        let far = meta(1, 0x200);
        // Train `near` to a short distance in a sampled set.
        p.on_insert(0, &near);
        p.on_hit(0, &near);
        p.on_hit(0, &near);
        p.on_insert(0, &far); // untrained: default (long) distance
        let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
        // Refresh near's ETA after far's insertion so clocks compare fairly.
        p.on_hit(0, &near);
        assert_eq!(p.choose_victim(0, &incoming, &[near, far]), 1);
    }

    #[test]
    fn sampler_is_bounded() {
        let mut p = MockingjayPolicy::new();
        for i in 0..(SAMPLER_CAP as u64 + 10) {
            let m = meta(0, 0x1000 + i * 64);
            p.on_insert(0, &m);
        }
        assert!(p.sampler.len() <= SAMPLER_CAP);
    }
}
