//! Random replacement (sanity baseline).

use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Evicts a pseudo-random resident PW. Deterministic: uses a xorshift state
/// seeded at construction, so runs are reproducible.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::RandomPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(RandomPolicy::new(7)));
/// assert_eq!(cache.policy_name(), "Random");
/// ```
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    state: u64,
}

impl RandomPolicy {
    /// Creates the policy with a seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl PwReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn on_hit(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_evict(&mut self, _set: usize, _meta: &PwMeta) {}

    fn choose_victim(&mut self, _set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // Reduced modulo the slice length, so the value fits in usize.
        #[allow(clippy::cast_possible_truncation)]
        let idx = (self.next() % resident.len() as u64) as usize;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    #[test]
    fn deterministic_and_in_range() {
        let mk = |slot| PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + slot as u64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        };
        let resident = [mk(0), mk(1), mk(2)];
        let incoming = PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch);
        let picks: Vec<usize> = {
            let mut p = RandomPolicy::new(11);
            (0..20)
                .map(|_| p.choose_victim(0, &incoming, &resident))
                .collect()
        };
        let picks2: Vec<usize> = {
            let mut p = RandomPolicy::new(11);
            (0..20)
                .map(|_| p.choose_victim(0, &incoming, &resident))
                .collect()
        };
        assert_eq!(picks, picks2);
        assert!(picks.iter().all(|&i| i < 3));
        // Not constant.
        assert!(picks.windows(2).any(|w| w[0] != w[1]));
    }
}
