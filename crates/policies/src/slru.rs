//! Segmented LRU (SLRU), Karedla/Love/Wherry 1994.

use crate::slots::SlotTable;
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Segment tags for [`SlruPolicy`]'s per-slot state.
const FREE: u8 = 0;
const PROBATION: u8 = 1;
const PROTECTED: u8 = 2;

/// Segmented LRU: each set is split into a probationary and a protected
/// segment. Insertions land on probation; a hit promotes to the protected
/// segment, demoting that segment's LRU PW back to probation when it is full
/// (capacity `ways / 2`, minimum 1). Victims are the probationary LRU,
/// falling back to the protected LRU only when probation is empty — so one
/// touch is not enough to out-live a twice-touched PW.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::SlruPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(SlruPolicy::new()));
/// assert_eq!(cache.policy_name(), "SLRU");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlruPolicy {
    seg: SlotTable<u8>,
    /// The policy's own recency stamps — independent of the cache's
    /// `last_access` so segment order survives slot recycling unambiguously.
    stamp: SlotTable<u64>,
    tick: u64,
    ways: u32,
}

impl SlruPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        SlruPolicy::default()
    }

    /// Protected-segment capacity in PWs.
    fn protected_cap(&self) -> u32 {
        (self.ways / 2).max(1)
    }

    /// `(probationary, protected)` PW counts for `set`. Exposed for the
    /// property wall (segment sizes can never sum past `ways`).
    pub fn segment_counts(&self, set: usize) -> (u32, u32) {
        let mut counts = (0, 0);
        for slot in 0..self.ways.min(255) {
            #[allow(clippy::cast_possible_truncation)] // bounded at 255 above
            match *self.seg.get(set, slot as u8) {
                PROBATION => counts.0 += 1,
                PROTECTED => counts.1 += 1,
                _ => {}
            }
        }
        counts
    }

    /// The protected slot with the oldest stamp, if any.
    fn protected_lru_slot(&self, set: usize) -> Option<u8> {
        let mut oldest: Option<(u64, u8)> = None;
        for slot in 0..self.ways.min(255) {
            #[allow(clippy::cast_possible_truncation)] // bounded at 255 above
            let slot = slot as u8;
            if *self.seg.get(set, slot) == PROTECTED {
                let stamp = *self.stamp.get(set, slot);
                if oldest.is_none_or(|(s, _)| stamp < s) {
                    oldest = Some((stamp, slot));
                }
            }
        }
        oldest.map(|(_, slot)| slot)
    }
}

impl PwReplacementPolicy for SlruPolicy {
    fn name(&self) -> &'static str {
        "SLRU"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.seg.reserve(sets, ways);
        self.stamp.reserve(sets, ways);
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        self.tick += 1;
        *self.stamp.get_mut(set, meta.slot) = self.tick;
        if *self.seg.get(set, meta.slot) == PROBATION {
            let (_, protected) = self.segment_counts(set);
            if protected >= self.protected_cap() {
                if let Some(lru) = self.protected_lru_slot(set) {
                    *self.seg.get_mut(set, lru) = PROBATION;
                }
            }
            *self.seg.get_mut(set, meta.slot) = PROTECTED;
        }
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        self.tick += 1;
        *self.seg.get_mut(set, meta.slot) = PROBATION;
        *self.stamp.get_mut(set, meta.slot) = self.tick;
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        *self.seg.get_mut(set, meta.slot) = FREE;
        *self.stamp.get_mut(set, meta.slot) = 0;
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        let key = |m: &PwMeta| {
            let protected = *self.seg.get(set, m.slot) == PROTECTED;
            // Probation (false) sorts before protected (true); within a
            // segment the oldest stamp goes first.
            (protected, *self.stamp.get(set, m.slot))
        };
        resident
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| key(m))
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(slot: u8) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        }
    }

    fn incoming() -> PwDesc {
        PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn hit_promotes_and_probation_goes_first() {
        let mut p = SlruPolicy::new();
        p.prepare(1, 4);
        let (a, b) = (meta(0), meta(1));
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a); // a: probation -> protected
        assert_eq!(p.segment_counts(0), (1, 1));
        // b (probation) is evicted even though a's stamp is older overall.
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b]), 1);
    }

    #[test]
    fn full_protected_segment_demotes_its_lru() {
        let mut p = SlruPolicy::new();
        p.prepare(1, 4); // protected capacity 2
        let all = [meta(0), meta(1), meta(2), meta(3)];
        for m in &all {
            p.on_insert(0, m);
        }
        p.on_hit(0, &all[0]);
        p.on_hit(0, &all[1]);
        assert_eq!(p.segment_counts(0), (2, 2));
        // Promoting a third PW demotes slot 0 (the protected LRU).
        p.on_hit(0, &all[2]);
        assert_eq!(p.segment_counts(0), (2, 2));
        assert_eq!(*p.seg.get(0, 0), PROBATION);
        assert_eq!(*p.seg.get(0, 2), PROTECTED);
    }

    #[test]
    fn protected_lru_is_the_last_resort_victim() {
        let mut p = SlruPolicy::new();
        p.prepare(1, 4);
        let (a, b) = (meta(0), meta(1));
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a);
        p.on_hit(0, &b);
        // Probation is empty: the protected LRU (a) is the victim.
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b]), 0);
    }

    #[test]
    fn eviction_frees_the_slot_state() {
        let mut p = SlruPolicy::new();
        p.prepare(1, 4);
        let a = meta(0);
        p.on_insert(0, &a);
        p.on_hit(0, &a);
        p.on_evict(0, &a);
        assert_eq!(p.segment_counts(0), (0, 0));
    }
}
