//! Adaptive replacement cache (ARC), Megiddo & Modha, FAST 2003.

use crate::ghost::GhostRing;
use crate::slots::SlotTable;
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// List tags for [`ArcPolicy`]'s per-slot state.
const T1: u8 = 1;
const T2: u8 = 2;

/// ARC, applied per set: residents live on a recency list (T1, touched
/// once) or a frequency list (T2, touched again); evicted starts are
/// remembered on the matching ghost list (B1/B2, one ghost per way). A miss
/// whose start is still ghosted re-enters directly on T2 *and* moves the
/// adaptation target `p` — the intended T1 share of the set — toward the
/// list that just proved too small. Victims come from T1 while it holds more
/// than `p` PWs (or exactly `p` when the incoming start is a B2 ghost,
/// ARC's `REPLACE` case), from T2 otherwise; within a list the LRU PW goes.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::ArcPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(ArcPolicy::new()));
/// assert_eq!(cache.policy_name(), "ARC");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ArcPolicy {
    tag: SlotTable<u8>,
    b1: GhostRing,
    b2: GhostRing,
    /// Per-set adaptation target: how many of the set's ways T1 deserves.
    p: crate::slots::SetTable<u8>,
    ways: u32,
}

impl ArcPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        ArcPolicy::default()
    }

    /// `(B1, B2)` ghost-list occupancy for `set`. Exposed for the property
    /// wall (ghost lists can never exceed the per-way capacity).
    pub fn ghost_lens(&self, set: usize) -> (u32, u32) {
        (self.b1.len(set), self.b2.len(set))
    }

    /// The ghost-list capacity (= `ways` once prepared).
    pub fn ghost_capacity(&self) -> u32 {
        self.b1.capacity()
    }

    /// The adaptation target for `set` (T1's intended share, in ways).
    pub fn target(&self, set: usize) -> u32 {
        u32::from(*self.p.get(set))
    }
}

impl PwReplacementPolicy for ArcPolicy {
    fn name(&self) -> &'static str {
        "ARC"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.tag.reserve(sets, ways);
        self.b1.reserve(sets, ways);
        self.b2.reserve(sets, ways);
        self.p.reserve(sets);
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        // A second touch moves a T1 resident to the frequency list.
        *self.tag.get_mut(set, meta.slot) = T2;
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        let start = meta.desc.start;
        let (b1_len, b2_len) = (self.b1.len(set), self.b2.len(set));
        let tag = if self.b1.remove(set, start) {
            // B1 ghost hit: recency history was too short — grow T1's share
            // by the classic |B2|/|B1| step.
            let step = (b2_len / b1_len.max(1)).max(1);
            let p = self.p.get_mut(set);
            #[allow(clippy::cast_possible_truncation)] // clamped to ways ≤ 255
            {
                *p = (u32::from(*p) + step).min(self.ways.min(255)) as u8;
            }
            T2
        } else if self.b2.remove(set, start) {
            // B2 ghost hit: frequency history was too short — shrink T1.
            let step = (b1_len / b2_len.max(1)).max(1);
            let p = self.p.get_mut(set);
            #[allow(clippy::cast_possible_truncation)] // saturating shrink toward 0
            {
                *p = u32::from(*p).saturating_sub(step) as u8;
            }
            T2
        } else {
            T1
        };
        *self.tag.get_mut(set, meta.slot) = tag;
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        let tag = self.tag.get_mut(set, meta.slot);
        if *tag == T2 {
            self.b2.push(set, meta.desc.start);
        } else {
            self.b1.push(set, meta.desc.start);
        }
        *tag = 0;
    }

    fn choose_victim(&mut self, set: usize, incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // Untracked slots (pre-prepare unit harnesses only) count as T1.
        let in_t2 = |m: &PwMeta| *self.tag.get(set, m.slot) == T2;
        let t1_count = resident.iter().filter(|m| !in_t2(m)).count();
        let p = usize::try_from(self.target(set)).expect("u32 fits usize");
        let replace_from_t1 = t1_count > 0
            && (t1_count > p || (t1_count == p && self.b2.contains(set, incoming.start)));
        let from_t1 = replace_from_t1 || t1_count == resident.len();
        resident
            .iter()
            .enumerate()
            .filter(|(_, m)| in_t2(m) != from_t1)
            .min_by_key(|(_, m)| m.last_access)
            .map(|(i, _)| i)
            .expect("the chosen list is non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta_at(slot: u8, last_access: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits: 0,
        }
    }

    fn incoming() -> PwDesc {
        PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn once_touched_pws_go_before_twice_touched() {
        let mut p = ArcPolicy::new();
        p.prepare(1, 4);
        let a = meta_at(0, 9);
        let b = meta_at(1, 1);
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &b); // b -> T2
                         // p = 0: T1 (just a) is over target; a goes despite being newer.
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b]), 0);
    }

    #[test]
    fn b1_ghost_hit_grows_the_recency_target() {
        let mut p = ArcPolicy::new();
        p.prepare(1, 4);
        let a = meta_at(0, 1);
        p.on_insert(0, &a);
        p.on_evict(0, &a); // T1 eviction -> B1
        assert_eq!(p.ghost_lens(0), (1, 0));
        assert_eq!(p.target(0), 0);
        p.on_insert(0, &a); // ghosted start returns
        assert_eq!(p.target(0), 1, "p grew toward recency");
        assert_eq!(*p.tag.get(0, 0), T2, "ghost hits re-enter on T2");
    }

    #[test]
    fn b2_ghost_hit_shrinks_the_recency_target() {
        let mut p = ArcPolicy::new();
        p.prepare(1, 4);
        let a = meta_at(0, 1);
        // Grow p to 1 first via a B1 round trip.
        p.on_insert(0, &a);
        p.on_evict(0, &a);
        p.on_insert(0, &a);
        assert_eq!(p.target(0), 1);
        // Now evict from T2 and return: p shrinks back.
        p.on_evict(0, &a); // -> B2
        assert_eq!(p.ghost_lens(0).1, 1);
        p.on_insert(0, &a);
        assert_eq!(p.target(0), 0);
    }

    #[test]
    fn victims_come_from_t2_when_t1_is_within_target() {
        let mut p = ArcPolicy::new();
        p.prepare(1, 4);
        let a = meta_at(0, 9);
        let b = meta_at(1, 3);
        let c = meta_at(2, 5);
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_insert(0, &c);
        p.on_hit(0, &b);
        p.on_hit(0, &c);
        // Force p up to 2 so T1 (just a) is within target.
        *p.p.get_mut(0) = 2;
        // T2 LRU is b (last_access 3).
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b, c]), 1);
    }
}
