//! Simplified 2Q replacement, Johnson & Shasha, VLDB 1994.

use crate::ghost::GhostRing;
use crate::slots::SlotTable;
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Queue tags for [`TwoQPolicy`]'s per-slot state.
const A1: u8 = 1;
const AM: u8 = 2;

/// Simplified 2Q: first-time insertions enter a FIFO probationary queue
/// (A1in); a re-reference — a hit while probationary, or a re-insertion
/// whose start is still in the A1out ghost ring of recently evicted
/// probationary PWs — promotes to the LRU-managed main queue (Am). While
/// A1in is over its share (`ways / 4`, minimum 1) victims come from it in
/// FIFO order; otherwise the Am LRU goes. One-shot windows thus stream
/// through A1in without ever displacing the hot Am working set.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::TwoQPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(TwoQPolicy::new()));
/// assert_eq!(cache.policy_name(), "2Q");
/// ```
#[derive(Clone, Debug, Default)]
pub struct TwoQPolicy {
    qtag: SlotTable<u8>,
    a1out: GhostRing,
    ways: u32,
}

impl TwoQPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        TwoQPolicy::default()
    }

    /// A1in's maximum share of the set before it supplies victims.
    fn a1_max(&self) -> u32 {
        (self.ways / 4).max(1)
    }

    /// The A1out ghost-ring occupancy for `set` (bounded by `ways`).
    pub fn ghost_len(&self, set: usize) -> u32 {
        self.a1out.len(set)
    }
}

impl PwReplacementPolicy for TwoQPolicy {
    fn name(&self) -> &'static str {
        "2Q"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.qtag.reserve(sets, ways);
        self.a1out.reserve(sets, ways);
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        let tag = self.qtag.get_mut(set, meta.slot);
        if *tag == A1 {
            *tag = AM;
        }
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        // A start still remembered by A1out was evicted too early: it
        // re-enters straight into the main queue.
        let remembered = self.a1out.remove(set, meta.desc.start);
        *self.qtag.get_mut(set, meta.slot) = if remembered { AM } else { A1 };
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        let tag = self.qtag.get_mut(set, meta.slot);
        if *tag == A1 {
            self.a1out.push(set, meta.desc.start);
        }
        *self.qtag.get_mut(set, meta.slot) = 0;
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // Untracked slots (no on_insert seen, possible only pre-prepare in
        // unit harnesses) count as probationary first-touches.
        let in_am = |m: &PwMeta| *self.qtag.get(set, m.slot) == AM;
        let a1_count = resident.iter().filter(|m| !in_am(m)).count();
        let from_a1 = a1_count > self.a1_max() as usize || a1_count == resident.len();
        resident
            .iter()
            .enumerate()
            .filter(|(_, m)| in_am(m) != from_a1)
            .min_by_key(|(_, m)| {
                if from_a1 {
                    m.inserted_at
                } else {
                    m.last_access
                }
            })
            .map(|(i, _)| i)
            .expect("the chosen queue is non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta_at(slot: u8, inserted_at: u64, last_access: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at,
            last_access,
            hits: 0,
        }
    }

    fn incoming() -> PwDesc {
        PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn overfull_probation_evicts_fifo() {
        let mut p = TwoQPolicy::new();
        p.prepare(1, 4); // a1_max = 1
        let a = meta_at(0, 1, 9);
        let b = meta_at(1, 2, 5);
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        // Two probationary PWs > share of 1: the earliest-inserted goes,
        // regardless of recency.
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b]), 0);
    }

    #[test]
    fn main_queue_supplies_victims_when_probation_is_within_share() {
        let mut p = TwoQPolicy::new();
        p.prepare(1, 4);
        let a = meta_at(0, 1, 1);
        let b = meta_at(1, 2, 8);
        let c = meta_at(2, 3, 4);
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_insert(0, &c);
        p.on_hit(0, &b); // b -> Am
        p.on_hit(0, &c); // c -> Am
                         // One probationary PW (a) is within the share of 1, so the Am LRU
                         // (c, last_access 4) is the victim.
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b, c]), 2);
    }

    #[test]
    fn ghost_remembrance_promotes_reinsertion() {
        let mut p = TwoQPolicy::new();
        p.prepare(1, 4);
        let a = meta_at(0, 1, 1);
        p.on_insert(0, &a);
        p.on_evict(0, &a); // probationary eviction -> A1out
        assert_eq!(p.ghost_len(0), 1);
        p.on_insert(0, &a); // same start returns while remembered
        assert_eq!(*p.qtag.get(0, 0), AM);
        assert_eq!(p.ghost_len(0), 1, "tombstoned, slot retained until wrap");
    }

    #[test]
    fn main_queue_evictions_leave_no_ghost() {
        let mut p = TwoQPolicy::new();
        p.prepare(1, 4);
        let a = meta_at(0, 1, 1);
        p.on_insert(0, &a);
        p.on_hit(0, &a); // -> Am
        p.on_evict(0, &a);
        assert!(!p.a1out.contains(0, a.desc.start));
    }
}
