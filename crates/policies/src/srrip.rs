//! Static re-reference interval prediction (SRRIP), Jaleel et al., ISCA 2010.

use crate::slots::SlotTable;
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Maximum RRPV for a 2-bit counter.
pub(crate) const RRPV_MAX: u8 = 3;
/// Insertion RRPV ("long re-reference interval").
pub(crate) const RRPV_INSERT: u8 = 2;

/// SRRIP with hit-priority promotion: 2-bit re-reference prediction values
/// per resident PW; hits promote to 0, insertions start at 2, victims are
/// PWs at 3 (aging everyone when none is at 3).
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::SrripPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(SrripPolicy::new()));
/// assert_eq!(cache.policy_name(), "SRRIP");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SrripPolicy {
    rrpv: SlotTable<u8>,
}

impl SrripPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        SrripPolicy {
            rrpv: SlotTable::new(),
        }
    }

    /// Victim selection over arbitrary `(slot, rrpv)` views — shared with
    /// FURBYS's fallback mode. Ages in place so the chosen victim's RRPV is
    /// `RRPV_MAX`.
    pub(crate) fn select_victim(
        rrpv: &mut SlotTable<u8>,
        set: usize,
        resident: &[PwMeta],
    ) -> usize {
        let max = resident
            .iter()
            .map(|m| *rrpv.get(set, m.slot))
            .max()
            .expect("resident slice is non-empty");
        let age = RRPV_MAX.saturating_sub(max);
        if age > 0 {
            for m in resident {
                let v = rrpv.get_mut(set, m.slot);
                *v = (*v + age).min(RRPV_MAX);
            }
        }
        resident
            .iter()
            .position(|m| *rrpv.get(set, m.slot) == RRPV_MAX)
            .expect("aging guarantees a distant PW")
    }
}

impl PwReplacementPolicy for SrripPolicy {
    fn name(&self) -> &'static str {
        "SRRIP"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.rrpv.reserve(sets, ways);
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        *self.rrpv.get_mut(set, meta.slot) = 0;
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        *self.rrpv.get_mut(set, meta.slot) = RRPV_INSERT;
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        *self.rrpv.get_mut(set, meta.slot) = 0;
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        Self::select_victim(&mut self.rrpv, set, resident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(slot: u8) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        }
    }

    fn incoming() -> PwDesc {
        PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn recently_hit_pw_is_protected() {
        let mut p = SrripPolicy::new();
        let a = meta(0);
        let b = meta(1);
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a); // a -> 0, b stays at 2
        let v = p.choose_victim(0, &incoming(), &[a, b]);
        assert_eq!(v, 1, "b has the larger RRPV after aging");
    }

    #[test]
    fn aging_reaches_max() {
        let mut p = SrripPolicy::new();
        let a = meta(0);
        p.on_insert(0, &a);
        // Immediately picking a victim ages 2 -> 3.
        let v = p.choose_victim(0, &incoming(), &[a]);
        assert_eq!(v, 0);
        assert_eq!(*p.rrpv.get(0, 0), RRPV_MAX);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = SrripPolicy::new();
        let a = meta(0);
        p.on_insert(0, &a);
        p.on_hit(0, &a);
        p.on_insert(1, &a);
        assert_eq!(*p.rrpv.get(0, 0), 0);
        assert_eq!(*p.rrpv.get(1, 0), RRPV_INSERT);
    }

    #[test]
    fn eviction_resets_state_for_slot_reuse() {
        let mut p = SrripPolicy::new();
        let a = meta(0);
        p.on_insert(0, &a);
        p.on_evict(0, &a);
        assert_eq!(*p.rrpv.get(0, 0), 0);
    }
}
