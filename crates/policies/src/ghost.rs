//! Bounded per-set ghost lists (recently-evicted addresses) shared by the
//! history-keeping zoo policies (2Q's A1out, ARC/CAR's B1/B2).

use crate::slots::{SetTable, SlotTable};
use uopcache_model::Addr;

/// A removed entry leaves a tombstone so ring positions stay stable; the
/// slot is reclaimed when the ring wraps over it.
const TOMBSTONE: u64 = u64::MAX;

/// A fixed-capacity ring of evicted PW start addresses, one ring per set.
///
/// Capacity is the cache's associativity (one ghost per way — the classic
/// sizing for ARC's B-lists and 2Q's A1out), fixed by [`reserve`] at
/// `prepare` time, so pushes and membership probes never allocate and a
/// ring's length can never exceed `ways`.
///
/// [`reserve`]: GhostRing::reserve
#[derive(Clone, Debug, Default)]
pub struct GhostRing {
    addrs: SlotTable<u64>,
    head: SetTable<u8>,
    len: SetTable<u8>,
    cap: u32,
}

impl GhostRing {
    /// Creates an empty ring table (capacity 0 until [`reserve`] is called;
    /// pushes are dropped while unconfigured).
    ///
    /// [`reserve`]: GhostRing::reserve
    pub fn new() -> Self {
        GhostRing::default()
    }

    /// Sizes every ring: `sets` rings of `ways` ghosts each.
    pub fn reserve(&mut self, sets: usize, ways: u32) {
        let cap = ways.min(255);
        self.addrs.reserve(sets, cap);
        self.head.reserve(sets);
        self.len.reserve(sets);
        self.cap = cap;
    }

    /// The ring capacity (0 before [`reserve`](GhostRing::reserve)).
    pub fn capacity(&self) -> u32 {
        self.cap
    }

    /// The number of ghosts currently held for `set` (tombstones included;
    /// never exceeds [`capacity`](GhostRing::capacity)).
    pub fn len(&self, set: usize) -> u32 {
        u32::from(*self.len.get(set))
    }

    /// Whether `set`'s ring holds no ghosts.
    pub fn is_empty(&self, set: usize) -> bool {
        self.len(set) == 0
    }

    /// Records `addr` as evicted from `set`, displacing the oldest ghost
    /// once the ring is full.
    pub fn push(&mut self, set: usize, addr: Addr) {
        if self.cap == 0 {
            return;
        }
        let head = u32::from(*self.head.get(set));
        #[allow(clippy::cast_possible_truncation)] // head/cap < 256 by construction
        {
            *self.addrs.get_mut(set, head as u8) = addr.get();
            *self.head.get_mut(set) = ((head + 1) % self.cap) as u8;
        }
        #[allow(clippy::cast_possible_truncation)] // cap ≤ 255 by construction
        let cap = self.cap as u8;
        let len = self.len.get_mut(set);
        *len = (*len + 1).min(cap);
    }

    /// Whether `addr` is a live (non-tombstoned) ghost of `set`.
    pub fn contains(&self, set: usize, addr: Addr) -> bool {
        self.position(set, addr).is_some()
    }

    /// Tombstones `addr` in `set`'s ring; returns whether it was present.
    pub fn remove(&mut self, set: usize, addr: Addr) -> bool {
        match self.position(set, addr) {
            Some(cell) => {
                *self.addrs.get_mut(set, cell) = TOMBSTONE;
                true
            }
            None => false,
        }
    }

    /// The ring cell holding `addr`, scanning the `len` most recent pushes.
    fn position(&self, set: usize, addr: Addr) -> Option<u8> {
        let len = self.len(set);
        if len == 0 || addr.get() == TOMBSTONE {
            return None;
        }
        let head = u32::from(*self.head.get(set));
        (0..len).find_map(|j| {
            let cell = (head + self.cap - 1 - j) % self.cap;
            #[allow(clippy::cast_possible_truncation)] // cell < cap < 256
            let cell = cell as u8;
            (*self.addrs.get(set, cell) == addr.get()).then_some(cell)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_probe_remove_round_trip() {
        let mut g = GhostRing::new();
        g.reserve(2, 4);
        g.push(0, Addr::new(0x100));
        g.push(0, Addr::new(0x140));
        assert!(g.contains(0, Addr::new(0x100)));
        assert!(!g.contains(1, Addr::new(0x100)), "rings are per set");
        assert!(g.remove(0, Addr::new(0x100)));
        assert!(!g.contains(0, Addr::new(0x100)));
        assert!(!g.remove(0, Addr::new(0x100)), "second remove is a no-op");
        assert_eq!(g.len(0), 2, "tombstones keep ring positions stable");
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut g = GhostRing::new();
        g.reserve(1, 3);
        for i in 0..10u64 {
            g.push(0, Addr::new(0x1000 + i * 64));
            assert!(g.len(0) <= 3);
        }
        // Only the three most recent survive.
        assert!(g.contains(0, Addr::new(0x1000 + 9 * 64)));
        assert!(g.contains(0, Addr::new(0x1000 + 7 * 64)));
        assert!(!g.contains(0, Addr::new(0x1000 + 6 * 64)));
    }

    #[test]
    fn unconfigured_ring_drops_pushes() {
        let mut g = GhostRing::new();
        g.push(0, Addr::new(0x100));
        assert_eq!(g.len(0), 0);
        assert!(!g.contains(0, Addr::new(0x100)));
    }
}
