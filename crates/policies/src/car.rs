//! CLOCK with adaptive replacement (CAR), Bansal & Modha, FAST 2004.

use crate::ghost::GhostRing;
use crate::slots::{SetTable, SlotTable};
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Clock tags for [`CarPolicy`]'s per-slot state.
const T1: u8 = 1;
const T2: u8 = 2;

/// CAR: ARC's adaptation with CLOCK's constant-time sweeps. Residents sit
/// on a recency clock (T1) or a frequency clock (T2) with one reference bit
/// each; hits only set the bit. The victim sweep runs the T1 clock while T1
/// holds at least `max(1, p)` PWs: an unreferenced PW is evicted (ghosted on
/// B1), a referenced one has its bit cleared and migrates to T2. Otherwise
/// the T2 clock runs, clearing bits until an unreferenced PW is evicted
/// (ghosted on B2). Ghost hits at insertion move the target `p` exactly as
/// in [ARC](crate::ArcPolicy).
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::CarPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(CarPolicy::new()));
/// assert_eq!(cache.policy_name(), "CAR");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CarPolicy {
    tag: SlotTable<u8>,
    refbit: SlotTable<u8>,
    b1: GhostRing,
    b2: GhostRing,
    p: SetTable<u8>,
    hand1: SetTable<u8>,
    hand2: SetTable<u8>,
    ways: u32,
}

impl CarPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        CarPolicy::default()
    }

    /// `(B1, B2)` ghost-list occupancy for `set`. Exposed for the property
    /// wall (ghost lists can never exceed the per-way capacity).
    pub fn ghost_lens(&self, set: usize) -> (u32, u32) {
        (self.b1.len(set), self.b2.len(set))
    }

    /// The adaptation target for `set` (T1's intended share, in ways).
    pub fn target(&self, set: usize) -> u32 {
        u32::from(*self.p.get(set))
    }

    /// One clock sweep over the residents currently tagged `list`, starting
    /// at `hand`. Returns the victim's index in `resident`; referenced T1
    /// members migrate to T2 instead of being spared in place.
    fn sweep(&mut self, set: usize, list: u8, resident: &[PwMeta]) -> Option<usize> {
        let hand = if list == T1 {
            *self.hand1.get(set)
        } else {
            *self.hand2.get(set)
        };
        let on_list = |tag: u8| if list == T1 { tag != T2 } else { tag == T2 };
        let start = resident
            .iter()
            .position(|m| m.slot >= hand && on_list(*self.tag.get(set, m.slot)))
            .or_else(|| {
                resident
                    .iter()
                    .position(|m| on_list(*self.tag.get(set, m.slot)))
            })?;
        // Two passes bound the scan: the first clears bits (or drains T1
        // into T2), the second meets a clear bit immediately.
        for _ in 0..=2 * resident.len() {
            for k in 0..resident.len() {
                let idx = (start + k) % resident.len();
                let m = &resident[idx];
                if !on_list(*self.tag.get(set, m.slot)) {
                    continue;
                }
                if *self.refbit.get(set, m.slot) == 0 {
                    let next = m.slot.wrapping_add(1);
                    let next = if u32::from(next) >= self.ways.max(1) {
                        0
                    } else {
                        next
                    };
                    *(if list == T1 {
                        self.hand1.get_mut(set)
                    } else {
                        self.hand2.get_mut(set)
                    }) = next;
                    return Some(idx);
                }
                *self.refbit.get_mut(set, m.slot) = 0;
                if list == T1 {
                    // A referenced T1 page earned a promotion; the sweep
                    // continues and may run T1 dry.
                    *self.tag.get_mut(set, m.slot) = T2;
                }
            }
            if list == T1 && !resident.iter().any(|m| on_list(*self.tag.get(set, m.slot))) {
                return None; // every T1 member migrated; fall back to T2
            }
        }
        unreachable!("a cleared bit is found within two passes");
    }
}

impl PwReplacementPolicy for CarPolicy {
    fn name(&self) -> &'static str {
        "CAR"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.tag.reserve(sets, ways);
        self.refbit.reserve(sets, ways);
        self.b1.reserve(sets, ways);
        self.b2.reserve(sets, ways);
        self.p.reserve(sets);
        self.hand1.reserve(sets);
        self.hand2.reserve(sets);
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        *self.refbit.get_mut(set, meta.slot) = 1;
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        let start = meta.desc.start;
        let (b1_len, b2_len) = (self.b1.len(set), self.b2.len(set));
        let tag = if self.b1.remove(set, start) {
            let step = (b2_len / b1_len.max(1)).max(1);
            let p = self.p.get_mut(set);
            #[allow(clippy::cast_possible_truncation)] // clamped to ways ≤ 255
            {
                *p = (u32::from(*p) + step).min(self.ways.min(255)) as u8;
            }
            T2
        } else if self.b2.remove(set, start) {
            let step = (b1_len / b2_len.max(1)).max(1);
            let p = self.p.get_mut(set);
            #[allow(clippy::cast_possible_truncation)] // saturating shrink toward 0
            {
                *p = u32::from(*p).saturating_sub(step) as u8;
            }
            T2
        } else {
            T1
        };
        *self.tag.get_mut(set, meta.slot) = tag;
        // CAR inserts with the reference bit clear — the bit is earned by a
        // hit, not granted at entry.
        *self.refbit.get_mut(set, meta.slot) = 0;
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        let tag = self.tag.get_mut(set, meta.slot);
        if *tag == T2 {
            self.b2.push(set, meta.desc.start);
        } else {
            self.b1.push(set, meta.desc.start);
        }
        *tag = 0;
        *self.refbit.get_mut(set, meta.slot) = 0;
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        let in_t2 = |m: &PwMeta| *self.tag.get(set, m.slot) == T2;
        let t1_count = resident.iter().filter(|m| !in_t2(m)).count();
        let p = usize::try_from(self.target(set)).expect("u32 fits usize");
        let run_t1 = t1_count >= p.max(1);
        if run_t1 {
            if let Some(idx) = self.sweep(set, T1, resident) {
                return idx;
            }
        }
        // The T1 sweep can drain (every member referenced, all migrated to
        // T2 with cleared bits); the T2 clock then has victims it did not
        // have on its first run, so it gets a second turn.
        self.sweep(set, T2, resident)
            .or_else(|| self.sweep(set, T1, resident))
            .or_else(|| self.sweep(set, T2, resident))
            .expect("every resident sits on one of the two clocks")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(slot: u8) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        }
    }

    fn incoming() -> PwDesc {
        PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn unreferenced_t1_is_evicted_first() {
        let mut p = CarPolicy::new();
        p.prepare(1, 4);
        let (a, b) = (meta(0), meta(1));
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a); // a referenced, b not
                         // Sweep clears a's bit, migrates a to T2, then evicts b.
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b]), 1);
        assert_eq!(*p.tag.get(0, 0), T2, "referenced T1 member migrated");
    }

    #[test]
    fn t2_clock_runs_when_t1_is_under_target() {
        let mut p = CarPolicy::new();
        p.prepare(1, 4);
        let (a, b) = (meta(0), meta(1));
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a);
        p.choose_victim(0, &incoming(), &[a, b]); // migrates a to T2
                                                  // Now T1 is empty: the T2 clock must supply the victim.
        let only = [a];
        assert_eq!(p.choose_victim(0, &incoming(), &only), 0);
    }

    #[test]
    fn fully_referenced_t1_under_target_still_yields_a_victim() {
        let mut p = CarPolicy::new();
        p.prepare(1, 4);
        let (a, b) = (meta(0), meta(1));
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a);
        p.on_hit(0, &b);
        // Target above T1's population: the T2 clock runs first, finds
        // nothing, and the T1 sweep drains both referenced members into T2 —
        // the victim must come from the re-run T2 clock, not a panic.
        *p.p.get_mut(0) = 3;
        let v = p.choose_victim(0, &incoming(), &[a, b]);
        assert!(v < 2);
        assert_eq!(*p.tag.get(0, 0), T2);
        assert_eq!(*p.tag.get(0, 1), T2);
    }

    #[test]
    fn ghost_round_trip_adapts_target() {
        let mut p = CarPolicy::new();
        p.prepare(1, 4);
        let a = meta(0);
        p.on_insert(0, &a);
        p.on_evict(0, &a); // T1 -> B1
        assert_eq!(p.ghost_lens(0), (1, 0));
        p.on_insert(0, &a);
        assert_eq!(p.target(0), 1);
        assert_eq!(*p.tag.get(0, 0), T2);
    }
}
