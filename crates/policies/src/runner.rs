//! A synchronous insert-on-miss trace driver for placement-only experiments.

use uopcache_cache::UopCache;
use uopcache_model::{LookupTrace, UopCacheStats};

/// Drives `trace` through `cache` with the simple synchronous protocol:
/// every full or partial miss is followed immediately by an insertion of the
/// (full) requested window. No decode-latency asynchrony, no L1i inclusion —
/// use `uopcache-sim` for the timed model.
///
/// Returns the cache statistics accumulated over this run.
///
/// # Examples
///
/// ```
/// use uopcache_cache::{LruPolicy, UopCache};
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::run_trace;
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let trace = build_trace(AppId::Postgres, InputVariant::default(), 2_000);
/// let mut cache = UopCache::new(UopCacheConfig::zen3(), Box::new(LruPolicy::new()));
/// let stats = run_trace(&mut cache, &trace);
/// assert_eq!(stats.lookups, 2_000);
/// ```
pub fn run_trace(cache: &mut UopCache, trace: &LookupTrace) -> UopCacheStats {
    let before = *cache.stats();
    for access in trace.iter() {
        let result = cache.lookup(&access.pw);
        if !result.is_full_hit() {
            cache.insert(&access.pw);
        }
    }
    *cache.stats() - before
}

/// As [`run_trace`], additionally returning per-access observations
/// `(start, hit_uops, total_uops)` — the raw material for hit-rate profiles.
pub fn run_trace_observed(
    cache: &mut UopCache,
    trace: &LookupTrace,
) -> (UopCacheStats, Vec<(uopcache_model::Addr, u32, u32)>) {
    let before = *cache.stats();
    let mut obs = Vec::with_capacity(trace.len());
    for access in trace.iter() {
        let result = cache.lookup(&access.pw);
        obs.push((access.pw.start, result.hit_uops(), access.pw.uops));
        if !result.is_full_hit() {
            cache.insert(&access.pw);
        }
    }
    (*cache.stats() - before, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        FifoPolicy, GhrpPolicy, MockingjayPolicy, RandomPolicy, ShipPlusPlusPolicy, SrripPolicy,
    };
    use uopcache_cache::LruPolicy;
    use uopcache_model::UopCacheConfig;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    #[test]
    fn all_policies_run_and_balance_their_books() {
        let trace = build_trace(AppId::Kafka, InputVariant(0), 8_000);
        let policies: Vec<Box<dyn uopcache_cache::PwReplacementPolicy>> = vec![
            Box::new(LruPolicy::new()),
            Box::new(SrripPolicy::new()),
            Box::new(ShipPlusPlusPolicy::new()),
            Box::new(GhrpPolicy::new()),
            Box::new(MockingjayPolicy::new()),
            Box::new(FifoPolicy::new()),
            Box::new(RandomPolicy::new(3)),
        ];
        for policy in policies {
            let name = policy.name();
            let mut cache = UopCache::new(UopCacheConfig::zen3(), policy);
            let s = run_trace(&mut cache, &trace);
            assert_eq!(s.lookups, 8_000, "{name}");
            assert_eq!(s.uops_hit + s.uops_missed, s.uops_requested, "{name}");
            assert_eq!(
                s.lookups,
                s.pw_hits + s.pw_partial_hits + s.pw_misses,
                "{name}"
            );
            assert!(s.uop_miss_rate() > 0.0 && s.uop_miss_rate() < 1.0, "{name}");
        }
    }

    #[test]
    fn stats_are_delta_not_cumulative() {
        let trace = build_trace(AppId::Postgres, InputVariant(0), 1_000);
        let mut cache = UopCache::new(UopCacheConfig::zen3(), Box::new(LruPolicy::new()));
        let first = run_trace(&mut cache, &trace);
        let second = run_trace(&mut cache, &trace);
        assert_eq!(first.lookups, 1_000);
        assert_eq!(second.lookups, 1_000);
        // Second pass hits more (warm cache).
        assert!(second.uops_missed <= first.uops_missed);
    }

    #[test]
    fn better_policies_beat_random_on_skewed_workloads() {
        let trace = build_trace(AppId::Python, InputVariant(0), 30_000);
        let run = |policy: Box<dyn uopcache_cache::PwReplacementPolicy>| {
            let mut cache = UopCache::new(UopCacheConfig::zen3(), policy);
            run_trace(&mut cache, &trace).uop_miss_rate()
        };
        let lru = run(Box::new(LruPolicy::new()));
        let random = run(Box::new(RandomPolicy::new(1)));
        assert!(
            lru < random * 1.05,
            "LRU {lru} should not lose badly to Random {random}"
        );
    }
}
