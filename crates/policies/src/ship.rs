//! SHiP++: signature-based hit prediction (Young et al., CRC-2 2017),
//! adapted to prediction windows.

use crate::slots::SlotTable;
use crate::srrip::{SrripPolicy, RRPV_INSERT, RRPV_MAX};
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::{Addr, PwDesc};

const SHCT_BITS: u32 = 14;
const SHCT_SIZE: usize = 1 << SHCT_BITS;
const SHCT_MAX: u8 = 7;
/// Initial counter value: weakly reused.
const SHCT_INIT: u8 = 1;

/// SHiP++ adapted to the micro-op cache: each PW's signature is a 14-bit hash
/// of its start address (the "miss-causing PC"); a signature history counter
/// table (SHCT) learns whether PWs with that signature get reused, steering
/// the insertion RRPV of an underlying SRRIP stack.
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::ShipPlusPlusPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(ShipPlusPlusPolicy::new()));
/// assert_eq!(cache.policy_name(), "SHiP++");
/// ```
#[derive(Clone, Debug)]
pub struct ShipPlusPlusPolicy {
    shct: Vec<u8>,
    rrpv: SlotTable<u8>,
    /// Per-slot: (signature, reused-since-insertion).
    tag: SlotTable<(u16, bool)>,
}

impl Default for ShipPlusPlusPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl ShipPlusPlusPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        ShipPlusPlusPolicy {
            shct: vec![SHCT_INIT; SHCT_SIZE],
            rrpv: SlotTable::new(),
            tag: SlotTable::new(),
        }
    }

    fn signature(start: Addr) -> u16 {
        // Fibonacci hash folded to 14 bits.
        let h = start.get().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // SHCT_SIZE is a small power of two, so the mask fits in u16.
        #[allow(clippy::cast_possible_truncation)]
        let mask = (SHCT_SIZE - 1) as u16;
        ((h >> 50) as u16) & mask
    }
}

impl PwReplacementPolicy for ShipPlusPlusPolicy {
    fn name(&self) -> &'static str {
        "SHiP++"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.rrpv.reserve(sets, ways);
        self.tag.reserve(sets, ways);
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        *self.rrpv.get_mut(set, meta.slot) = 0;
        let (sig, reused) = *self.tag.get(set, meta.slot);
        if !reused {
            // First reuse trains the signature as useful (SHiP++ trains on
            // the first hit only to avoid saturation by loops).
            let c = &mut self.shct[usize::from(sig)];
            *c = (*c + 1).min(SHCT_MAX);
            *self.tag.get_mut(set, meta.slot) = (sig, true);
        }
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        let sig = Self::signature(meta.desc.start);
        let counter = self.shct[usize::from(sig)];
        // Predicted-dead signatures are inserted with a distant RRPV so they
        // are evicted first; strongly-reused ones get an intermediate value.
        *self.rrpv.get_mut(set, meta.slot) = if counter == 0 {
            RRPV_MAX
        } else if counter >= SHCT_MAX - 1 {
            RRPV_INSERT - 1
        } else {
            RRPV_INSERT
        };
        *self.tag.get_mut(set, meta.slot) = (sig, false);
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        let (sig, reused) = *self.tag.get(set, meta.slot);
        if !reused {
            let c = &mut self.shct[usize::from(sig)];
            *c = c.saturating_sub(1);
        }
        *self.rrpv.get_mut(set, meta.slot) = 0;
        *self.tag.get_mut(set, meta.slot) = (0, false);
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        SrripPolicy::select_victim(&mut self.rrpv, set, resident)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn meta(slot: u8, start: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        }
    }

    #[test]
    fn dead_signature_inserted_distant() {
        let mut p = ShipPlusPlusPolicy::new();
        let m = meta(0, 0x1000);
        // Train the signature dead: insert + evict without reuse until 0.
        for _ in 0..4 {
            p.on_insert(0, &m);
            p.on_evict(0, &m);
        }
        p.on_insert(0, &m);
        assert_eq!(*p.rrpv.get(0, 0), RRPV_MAX);
    }

    #[test]
    fn reused_signature_inserted_close() {
        let mut p = ShipPlusPlusPolicy::new();
        let m = meta(0, 0x2000);
        for _ in 0..8 {
            p.on_insert(0, &m);
            p.on_hit(0, &m);
            p.on_evict(0, &m);
        }
        p.on_insert(0, &m);
        assert!(*p.rrpv.get(0, 0) < RRPV_INSERT);
    }

    #[test]
    fn first_hit_trains_once() {
        let mut p = ShipPlusPlusPolicy::new();
        let m = meta(0, 0x3000);
        let sig = ShipPlusPlusPolicy::signature(Addr::new(0x3000));
        p.on_insert(0, &m);
        let before = p.shct[usize::from(sig)];
        p.on_hit(0, &m);
        p.on_hit(0, &m);
        p.on_hit(0, &m);
        assert_eq!(p.shct[usize::from(sig)], before + 1);
    }

    #[test]
    fn victim_prefers_distant_insertions() {
        let mut p = ShipPlusPlusPolicy::new();
        let dead = meta(0, 0x1000);
        for _ in 0..4 {
            p.on_insert(0, &dead);
            p.on_evict(0, &dead);
        }
        let live = meta(1, 0x2000);
        p.on_insert(0, &live);
        p.on_insert(0, &dead);
        let incoming = PwDesc::new(Addr::new(0x9000), 4, 12, PwTermination::TakenBranch);
        let v = p.choose_victim(0, &incoming, &[dead, live]);
        assert_eq!(v, 0, "the dead-signature PW should be the victim");
    }
}
