//! Set-dueling dynamic policy selection, after Qureshi et al.'s DIP
//! (ISCA 2007), generalised to an N-candidate tournament.

use uopcache_cache::{LruPolicy, PwMeta, PwReplacementPolicy};
use uopcache_model::json::Json;
use uopcache_model::PwDesc;
use uopcache_obs::{CandidateDuel, DuelStats};

use crate::arc::ArcPolicy;
use crate::slru::SlruPolicy;
use crate::srrip::SrripPolicy;

/// PSEL saturation ceiling (10-bit counters, the classic DIP width).
pub const PSEL_MAX: u16 = 1023;

/// Default leader sets sampled per candidate.
pub const DEFAULT_K: usize = 2;

/// Default lookups per duel phase.
pub const DEFAULT_PHASE_LEN: u64 = 1024;

/// The leader/follower partition: a pure function of `(sets, k, candidates)`
/// and nothing else, so the same geometry always duels the same sets.
///
/// Leader sets are spaced evenly through the index range (stride
/// `sets / (candidates * k)`, floored at 1) and assigned to candidates
/// round-robin, giving each candidate `k` leaders interleaved across the
/// address space. When the cache has fewer than `candidates * k` sets, the
/// low-indexed candidates keep leaders and the rest follow unled — small
/// caches degrade gracefully rather than panicking.
///
/// # Examples
///
/// ```
/// use uopcache_policies::dueling::leader_map;
///
/// let map = leader_map(64, 2, 4);
/// assert_eq!(map.iter().flatten().filter(|&&c| c == 0).count(), 2);
/// assert_eq!(map[0], Some(0));
/// assert_eq!(map[1], None); // follower
/// ```
pub fn leader_map(sets: usize, k: usize, candidates: usize) -> Vec<Option<usize>> {
    let mut map = vec![None; sets];
    if candidates == 0 || k == 0 {
        return map;
    }
    let total = candidates * k;
    let stride = (sets / total).max(1);
    for (assigned, s) in (0..sets).step_by(stride).take(total).enumerate() {
        map[s] = Some(assigned % candidates);
    }
    map
}

/// A set-dueling meta-policy: `k` leader sets per candidate run that
/// candidate's replacement decisions and feed a saturating PSEL counter
/// (misses up, hits down, capped at [`PSEL_MAX`]); every other set follows
/// the candidate whose leaders showed the least miss pressure in the last
/// phase. Winners are re-evaluated every [`phase_len`] lookups; counters
/// reset at the boundary so the duel tracks phase behaviour instead of
/// accumulated history.
///
/// All candidates observe the full hook stream (their per-slot state always
/// reflects the actual cache contents); only the *decisions* — victim choice
/// and bypass — are routed to the set's active candidate. The policy is
/// fully deterministic: the partition is [`leader_map`], the counters are
/// integers, and ties at a phase boundary keep the incumbent.
///
/// [`phase_len`]: DEFAULT_PHASE_LEN
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::SetDuelingPolicy;
///
/// let cache = UopCache::new(
///     UopCacheConfig::zen3(),
///     Box::new(SetDuelingPolicy::default_zoo()),
/// );
/// assert_eq!(cache.policy_name(), "set-dueling");
/// ```
pub struct SetDuelingPolicy {
    candidates: Vec<Box<dyn PwReplacementPolicy>>,
    k: usize,
    phase_len: u64,
    leader_of: Vec<Option<usize>>,
    leader_counts: Vec<u32>,
    winner: usize,
    last_decider: usize,
    psel: Vec<u16>,
    lookups: u64,
    phases: u64,
    switches: u64,
    leader_hits: Vec<u64>,
    leader_misses: Vec<u64>,
    phases_won: Vec<u64>,
}

impl SetDuelingPolicy {
    /// Duels `candidates` with `k` leader sets each and a winner
    /// re-evaluation every `phase_len` lookups.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or `k`/`phase_len` is zero — a duel
    /// needs contestants and a cadence.
    pub fn new(candidates: Vec<Box<dyn PwReplacementPolicy>>, k: usize, phase_len: u64) -> Self {
        assert!(
            !candidates.is_empty(),
            "a duel needs at least one candidate"
        );
        assert!(k > 0, "each candidate needs at least one leader set");
        assert!(phase_len > 0, "the duel needs a phase cadence");
        let n = candidates.len();
        SetDuelingPolicy {
            candidates,
            k,
            phase_len,
            leader_of: Vec::new(),
            leader_counts: vec![0; n],
            winner: 0,
            last_decider: 0,
            psel: vec![0; n],
            lookups: 0,
            phases: 0,
            switches: 0,
            leader_hits: vec![0; n],
            leader_misses: vec![0; n],
            phases_won: vec![0; n],
        }
    }

    /// The default duel: LRU (recency), SRRIP (re-reference interval), SLRU
    /// (segmented) and ARC (adaptive) — four static-free candidates covering
    /// the zoo's main design axes, [`DEFAULT_K`] leaders each,
    /// [`DEFAULT_PHASE_LEN`]-lookup phases.
    pub fn default_zoo() -> Self {
        SetDuelingPolicy::new(
            vec![
                Box::new(LruPolicy::new()),
                Box::new(SrripPolicy::new()),
                Box::new(SlruPolicy::new()),
                Box::new(ArcPolicy::new()),
            ],
            DEFAULT_K,
            DEFAULT_PHASE_LEN,
        )
    }

    /// The candidate names, in duel order.
    pub fn candidate_names(&self) -> Vec<&'static str> {
        self.candidates.iter().map(|c| c.name()).collect()
    }

    /// The currently winning candidate's name.
    pub fn winner_name(&self) -> &'static str {
        self.candidates[self.winner].name()
    }

    /// The candidate leading `set`, or `None` for follower sets. Only
    /// meaningful after `prepare` (before it, every set follows).
    pub fn leader_of(&self, set: usize) -> Option<usize> {
        self.leader_of.get(set).copied().flatten()
    }

    /// Completed phases and winner switches so far.
    pub fn phase_counts(&self) -> (u64, u64) {
        (self.phases, self.switches)
    }

    /// The full duel snapshot.
    pub fn duel_stats(&self) -> DuelStats {
        DuelStats {
            k: u32::try_from(self.k).expect("k is small"),
            phase_len: self.phase_len,
            phases: self.phases,
            switches: self.switches,
            winner: self.winner_name().to_string(),
            candidates: self
                .candidates
                .iter()
                .enumerate()
                .map(|(i, c)| CandidateDuel {
                    name: c.name().to_string(),
                    leader_sets: self.leader_counts[i],
                    leader_hits: self.leader_hits[i],
                    leader_misses: self.leader_misses[i],
                    phases_won: self.phases_won[i],
                    psel: self.psel[i],
                })
                .collect(),
        }
    }

    /// The candidate whose decisions govern `set` right now.
    fn active(&self, set: usize) -> usize {
        self.leader_of(set).unwrap_or(self.winner)
    }

    /// Ends a phase: the candidate with the least PSEL pressure wins (ties
    /// keep the incumbent, then lowest index), counters reset.
    fn end_phase(&mut self) {
        self.phases += 1;
        let mut best = self.winner;
        for (i, &p) in self.psel.iter().enumerate() {
            if p < self.psel[best] {
                best = i;
            }
        }
        if best != self.winner {
            self.switches += 1;
            self.winner = best;
        }
        self.phases_won[self.winner] += 1;
        for p in &mut self.psel {
            *p = 0;
        }
    }
}

impl std::fmt::Debug for SetDuelingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetDuelingPolicy")
            .field("candidates", &self.candidate_names())
            .field("k", &self.k)
            .field("phase_len", &self.phase_len)
            .field("winner", &self.winner_name())
            .field("phases", &self.phases)
            .finish_non_exhaustive()
    }
}

impl PwReplacementPolicy for SetDuelingPolicy {
    fn name(&self) -> &'static str {
        "set-dueling"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        for c in &mut self.candidates {
            c.prepare(sets, ways);
        }
        self.leader_of = leader_map(sets, self.k, self.candidates.len());
        self.leader_counts = vec![0; self.candidates.len()];
        for c in self.leader_of.iter().flatten() {
            self.leader_counts[*c] += 1;
        }
    }

    fn on_lookup(&mut self, pw: &PwDesc) {
        self.lookups += 1;
        if self.lookups.is_multiple_of(self.phase_len) {
            self.end_phase();
        }
        for c in &mut self.candidates {
            c.on_lookup(pw);
        }
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        if let Some(c) = self.leader_of(set) {
            self.leader_hits[c] += 1;
            self.psel[c] = self.psel[c].saturating_sub(1);
        }
        for c in &mut self.candidates {
            c.on_hit(set, meta);
        }
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        for c in &mut self.candidates {
            c.on_insert(set, meta);
        }
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        for c in &mut self.candidates {
            c.on_evict(set, meta);
        }
    }

    fn on_invalidate(&mut self, set: usize, meta: &PwMeta) {
        for c in &mut self.candidates {
            c.on_invalidate(set, meta);
        }
    }

    fn should_bypass(
        &mut self,
        set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        // Every insert attempt is a miss (or a partial-hit upgrade): charge
        // the set's leader, if any.
        if let Some(c) = self.leader_of(set) {
            self.leader_misses[c] += 1;
            self.psel[c] = (self.psel[c] + 1).min(PSEL_MAX);
        }
        let active = self.active(set);
        self.candidates[active].should_bypass(set, incoming, needed_entries, free_entries, resident)
    }

    fn choose_victim(&mut self, set: usize, incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        let active = self.active(set);
        self.last_decider = active;
        self.candidates[active].choose_victim(set, incoming, resident)
    }

    fn last_selection_was_fallback(&self) -> bool {
        self.candidates[self.last_decider].last_selection_was_fallback()
    }

    fn introspect(&self) -> Option<Json> {
        Some(self.duel_stats().to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(slot: u8, last_access: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits: 0,
        }
    }

    fn pw(start: u64) -> PwDesc {
        PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn leader_map_is_a_pure_partition() {
        let a = leader_map(64, 2, 4);
        let b = leader_map(64, 2, 4);
        assert_eq!(a, b);
        for c in 0..4 {
            assert_eq!(a.iter().flatten().filter(|&&x| x == c).count(), 2);
        }
        assert_eq!(a.iter().flatten().count(), 8);
    }

    #[test]
    fn small_caches_degrade_gracefully() {
        let map = leader_map(3, 2, 4);
        assert_eq!(map.iter().flatten().count(), 3, "every set leads");
        assert!(leader_map(0, 2, 4).is_empty());
    }

    #[test]
    fn leaders_decide_with_their_own_candidate() {
        let mut p = SetDuelingPolicy::default_zoo();
        p.prepare(64, 4);
        // Set 0 leads candidate 0 (LRU); give it resident state where LRU
        // and SRRIP disagree: SRRIP would evict the un-hit b, LRU the older a.
        let lead = p.leader_of(0).expect("set 0 is a leader");
        assert_eq!(lead, 0);
        let a = meta(0, 1);
        let b = meta(1, 9);
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        p.on_hit(0, &a);
        assert_eq!(p.choose_victim(0, &pw(0x900), &[a, b]), 0, "LRU evicts a");
    }

    #[test]
    fn phase_boundary_recounts_and_resets() {
        let mut p = SetDuelingPolicy::new(
            vec![Box::new(LruPolicy::new()), Box::new(SrripPolicy::new())],
            1,
            4,
        );
        p.prepare(8, 4);
        // Candidate 0 leads set 0, candidate 1 leads set 4.
        assert_eq!(p.leader_of(0), Some(0));
        assert_eq!(p.leader_of(4), Some(1));
        // Charge misses against candidate 0's leader only.
        let m = meta(0, 1);
        p.should_bypass(0, &pw(0x900), 1, 0, &[m]);
        p.should_bypass(0, &pw(0x940), 1, 0, &[m]);
        for _ in 0..4 {
            p.on_lookup(&pw(0x900));
        }
        let (phases, switches) = p.phase_counts();
        assert_eq!(phases, 1);
        assert_eq!(switches, 1, "candidate 1 had less pressure and takes over");
        assert_eq!(p.winner_name(), "SRRIP");
        let stats = p.duel_stats();
        assert_eq!(stats.candidates[0].psel, 0, "counters reset at boundary");
        assert_eq!(stats.candidates[0].leader_misses, 2, "totals persist");
    }

    #[test]
    fn ties_keep_the_incumbent() {
        let mut p = SetDuelingPolicy::new(
            vec![Box::new(LruPolicy::new()), Box::new(SrripPolicy::new())],
            1,
            4,
        );
        p.prepare(8, 4);
        for _ in 0..4 {
            p.on_lookup(&pw(0x900));
        }
        assert_eq!(p.phase_counts(), (1, 0), "all-zero PSEL keeps candidate 0");
        assert_eq!(p.winner_name(), "LRU");
    }

    #[test]
    fn introspection_exposes_the_duel() {
        let mut p = SetDuelingPolicy::default_zoo();
        p.prepare(64, 4);
        let json = p.introspect().expect("dueling introspects").to_string();
        assert!(json.contains("\"winner\":\"LRU\""), "{json}");
        assert!(json.contains("\"leader_sets\":2"), "{json}");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_duel_is_rejected() {
        let _ = SetDuelingPolicy::new(Vec::new(), 1, 16);
    }
}
