//! Lazily-grown per-(set, slot) state storage shared by the policies.

/// A 2-D table of policy state indexed by `(set, slot)`, growing on demand.
///
/// # Examples
///
/// ```
/// use uopcache_policies::SlotTable;
///
/// let mut t: SlotTable<u8> = SlotTable::new();
/// *t.get_mut(3, 1) = 7;
/// assert_eq!(*t.get(3, 1), 7);
/// assert_eq!(*t.get(0, 0), 0); // untouched cells read as default
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlotTable<T: Default + Clone> {
    rows: Vec<Vec<T>>,
    default: T,
}

impl<T: Default + Clone> SlotTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        SlotTable {
            rows: Vec::new(),
            default: T::default(),
        }
    }

    /// Grows the table to cover `sets × ways` cells up front (all reading
    /// as default), so subsequent `get_mut` calls never allocate. Policies
    /// call this from [`prepare`] with the cache geometry; cells outside it
    /// still lazily grow if ever touched.
    ///
    /// [`prepare`]: uopcache_cache::PwReplacementPolicy::prepare
    pub fn reserve(&mut self, sets: usize, ways: u32) {
        if self.rows.len() < sets {
            self.rows.resize_with(sets, Vec::new);
        }
        let ways = ways as usize;
        for row in &mut self.rows {
            if row.len() < ways {
                row.resize_with(ways, T::default);
            }
        }
    }

    /// Mutable access to the cell, growing the table as needed.
    pub fn get_mut(&mut self, set: usize, slot: u8) -> &mut T {
        if self.rows.len() <= set {
            self.rows.resize_with(set + 1, Vec::new); // audit:allow(hot-path-alloc) — lazy growth to the geometry; warmed tables never regrow
        }
        let row = &mut self.rows[set];
        let slot = usize::from(slot);
        if row.len() <= slot {
            row.resize_with(slot + 1, T::default); // audit:allow(hot-path-alloc) — lazy growth to the geometry; warmed tables never regrow
        }
        &mut row[slot]
    }

    /// Read access; returns the default for untouched cells.
    pub fn get(&self, set: usize, slot: u8) -> &T {
        self.rows
            .get(set)
            .and_then(|row| row.get(usize::from(slot)))
            .unwrap_or(&self.default)
    }
}

/// A 1-D table of per-set policy state, growing on demand — the per-set
/// companion of [`SlotTable`] for scalars like a CLOCK hand, an ARC
/// adaptation target, or a set-dueling PSEL counter.
///
/// # Examples
///
/// ```
/// use uopcache_policies::SetTable;
///
/// let mut t: SetTable<u16> = SetTable::new();
/// *t.get_mut(5) = 300;
/// assert_eq!(*t.get(5), 300);
/// assert_eq!(*t.get(0), 0); // untouched cells read as default
/// ```
#[derive(Clone, Debug, Default)]
pub struct SetTable<T: Default + Clone> {
    cells: Vec<T>,
    default: T,
}

impl<T: Default + Clone> SetTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        SetTable {
            cells: Vec::new(),
            default: T::default(),
        }
    }

    /// Grows the table to cover `sets` cells up front (all reading as
    /// default), so subsequent `get_mut` calls never allocate. Policies call
    /// this from [`prepare`] with the cache geometry.
    ///
    /// [`prepare`]: uopcache_cache::PwReplacementPolicy::prepare
    pub fn reserve(&mut self, sets: usize) {
        if self.cells.len() < sets {
            self.cells.resize_with(sets, T::default);
        }
    }

    /// Mutable access to the cell, growing the table as needed.
    pub fn get_mut(&mut self, set: usize) -> &mut T {
        if self.cells.len() <= set {
            self.cells.resize_with(set + 1, T::default); // audit:allow(hot-path-alloc) — lazy growth to the geometry; warmed tables never regrow
        }
        &mut self.cells[set]
    }

    /// Read access; returns the default for untouched cells.
    pub fn get(&self, set: usize) -> &T {
        self.cells.get(set).unwrap_or(&self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_table_grows_and_reads_default() {
        let mut t: SetTable<u32> = SetTable::new();
        *t.get_mut(9) = 7;
        assert_eq!(*t.get(9), 7);
        assert_eq!(*t.get(8), 0);
        assert_eq!(*t.get(1000), 0);
        t.reserve(16);
        assert_eq!(*t.get(15), 0);
    }

    #[test]
    fn grows_independently_per_row() {
        let mut t: SlotTable<u32> = SlotTable::new();
        *t.get_mut(5, 7) = 42;
        assert_eq!(*t.get(5, 7), 42);
        assert_eq!(*t.get(5, 6), 0);
        assert_eq!(*t.get(4, 7), 0);
        assert_eq!(*t.get(100, 100), 0);
    }

    #[test]
    fn overwrites_persist() {
        let mut t: SlotTable<i64> = SlotTable::new();
        *t.get_mut(0, 0) = -1;
        *t.get_mut(0, 0) = 9;
        assert_eq!(*t.get(0, 0), 9);
    }
}
