//! Least-frequently-used eviction over the cache's own hit counters.

use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// Least-frequently-used replacement: evicts the resident PW with the fewest
/// hits since insertion (`PwMeta::hits`), so the counter resets naturally on
/// eviction and re-insertion — an in-cache LFU rather than a perfect-LFU
/// with external frequency history.
///
/// Ties are broken deterministically: equal hit counts fall back to the
/// least-recent `last_access`, and a full tie picks the lowest-slot resident
/// (the first element of the slice, which is ordered by slot).
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::LfuPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(LfuPolicy::new()));
/// assert_eq!(cache.policy_name(), "LFU");
/// ```
#[derive(Clone, Debug, Default)]
pub struct LfuPolicy {
    _private: (),
}

impl LfuPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        LfuPolicy { _private: () }
    }
}

impl PwReplacementPolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        "LFU"
    }

    fn on_hit(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_evict(&mut self, _set: usize, _meta: &PwMeta) {}

    fn choose_victim(&mut self, _set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        resident
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (m.hits, m.last_access))
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(slot: u8, hits: u32, last_access: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits,
        }
    }

    fn incoming() -> PwDesc {
        PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn picks_fewest_hits() {
        let mut p = LfuPolicy::new();
        let resident = [meta(0, 5, 1), meta(1, 2, 9), meta(2, 7, 3)];
        assert_eq!(p.choose_victim(0, &incoming(), &resident), 1);
    }

    #[test]
    fn frequency_ties_fall_back_to_recency() {
        let mut p = LfuPolicy::new();
        let resident = [meta(0, 2, 9), meta(1, 2, 4)];
        assert_eq!(p.choose_victim(0, &incoming(), &resident), 1);
    }

    #[test]
    fn full_ties_break_by_position() {
        let mut p = LfuPolicy::new();
        let resident = [meta(0, 2, 4), meta(1, 2, 4), meta(2, 2, 4)];
        assert_eq!(p.choose_victim(0, &incoming(), &resident), 0);
    }
}
