//! Thermometer: profile-guided hot/warm/cold replacement
//! (Song et al., ISCA 2022), adapted from the BTB to prediction windows.

use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, PwDesc};

/// Profile-derived temperature class of a PW.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum HotClass {
    /// Low profiled hit rate: evicted first, bypassed when the set is warm.
    Cold,
    /// Intermediate hit rate.
    Warm,
    /// High hit rate: protected.
    Hot,
}

/// Thermometer adapted to the micro-op cache: PWs are classified hot, warm or
/// cold from a profiling run's per-start hit rates; eviction prefers cold,
/// then warm, then hot (LRU within a class), and cold PWs are bypassed when
/// they would displace warmer residents. The paper's critique (§III-E): the
/// whole-execution average "lacks the mechanism to adjust to the transient
/// pattern" — exactly what FURBYS's pitfall detector adds.
///
/// # Examples
///
/// ```
/// use uopcache_model::hash::FastHashMap;
/// use uopcache_model::Addr;
/// use uopcache_policies::ThermometerPolicy;
///
/// let mut rates = FastHashMap::default();
/// rates.insert(Addr::new(0x100), 0.9);
/// rates.insert(Addr::new(0x200), 0.1);
/// let policy = ThermometerPolicy::from_hit_rates(&rates);
/// assert_eq!(policy.class_of(Addr::new(0x100)), uopcache_policies::HotClass::Hot);
/// ```
#[derive(Clone, Debug)]
pub struct ThermometerPolicy {
    /// Profiled classes, in a fast simulator-internal map: `class_of` runs
    /// per resident on every victim/bypass decision.
    classes: FastHashMap<Addr, HotClass>,
    hot_threshold: f64,
    warm_threshold: f64,
}

impl ThermometerPolicy {
    /// Default hot threshold on profiled hit rate.
    pub const HOT_THRESHOLD: f64 = 0.7;
    /// Default warm threshold on profiled hit rate.
    pub const WARM_THRESHOLD: f64 = 0.3;

    /// Builds the policy from profiled per-start hit rates with the default
    /// thresholds.
    pub fn from_hit_rates(rates: &FastHashMap<Addr, f64>) -> Self {
        Self::with_thresholds(rates, Self::HOT_THRESHOLD, Self::WARM_THRESHOLD)
    }

    /// Builds the policy with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `hot < warm` or either is outside `[0, 1]`.
    pub fn with_thresholds(rates: &FastHashMap<Addr, f64>, hot: f64, warm: f64) -> Self {
        assert!((0.0..=1.0).contains(&hot) && (0.0..=1.0).contains(&warm) && hot >= warm);
        let classes = rates
            .iter()
            .map(|(&a, &r)| {
                let class = if r >= hot {
                    HotClass::Hot
                } else if r >= warm {
                    HotClass::Warm
                } else {
                    HotClass::Cold
                };
                (a, class)
            })
            .collect();
        ThermometerPolicy {
            classes,
            hot_threshold: hot,
            warm_threshold: warm,
        }
    }

    /// The class assigned to a start address (unprofiled addresses are cold).
    pub fn class_of(&self, start: Addr) -> HotClass {
        self.classes.get(&start).copied().unwrap_or(HotClass::Cold)
    }

    /// The (hot, warm) thresholds in use.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.hot_threshold, self.warm_threshold)
    }
}

impl PwReplacementPolicy for ThermometerPolicy {
    fn name(&self) -> &'static str {
        "Thermometer"
    }

    fn on_hit(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_evict(&mut self, _set: usize, _meta: &PwMeta) {}

    fn should_bypass(
        &mut self,
        _set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        // A cold PW does not displace a set made entirely of warmer PWs.
        needed_entries > free_entries
            && self.class_of(incoming.start) == HotClass::Cold
            && !resident.is_empty()
            && resident
                .iter()
                .all(|m| self.class_of(m.desc.start) > HotClass::Cold)
    }

    fn choose_victim(&mut self, _set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        resident
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (self.class_of(m.desc.start), m.last_access))
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn meta(slot: u8, start: u64, last_access: u64) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits: 0,
        }
    }

    fn policy() -> ThermometerPolicy {
        let mut rates = FastHashMap::default();
        rates.insert(Addr::new(0x100), 0.95); // hot
        rates.insert(Addr::new(0x200), 0.5); // warm
        rates.insert(Addr::new(0x300), 0.05); // cold
        ThermometerPolicy::from_hit_rates(&rates)
    }

    #[test]
    fn classification() {
        let p = policy();
        assert_eq!(p.class_of(Addr::new(0x100)), HotClass::Hot);
        assert_eq!(p.class_of(Addr::new(0x200)), HotClass::Warm);
        assert_eq!(p.class_of(Addr::new(0x300)), HotClass::Cold);
        assert_eq!(
            p.class_of(Addr::new(0x999)),
            HotClass::Cold,
            "unprofiled = cold"
        );
    }

    #[test]
    fn evicts_cold_before_warm_before_hot() {
        let mut p = policy();
        let hot = meta(0, 0x100, 1);
        let warm = meta(1, 0x200, 9);
        let cold = meta(2, 0x300, 5);
        let incoming = PwDesc::new(Addr::new(0x400), 4, 12, PwTermination::TakenBranch);
        assert_eq!(p.choose_victim(0, &incoming, &[hot, warm, cold]), 2);
        assert_eq!(p.choose_victim(0, &incoming, &[hot, warm]), 1);
        assert_eq!(p.choose_victim(0, &incoming, &[hot]), 0);
    }

    #[test]
    fn cold_bypasses_warm_set() {
        let mut p = policy();
        let hot = meta(0, 0x100, 1);
        let warm = meta(1, 0x200, 2);
        let cold_pw = PwDesc::new(Addr::new(0x300), 4, 12, PwTermination::TakenBranch);
        assert!(p.should_bypass(0, &cold_pw, 1, 0, &[hot, warm]));
        // With free space it inserts regardless of class.
        assert!(!p.should_bypass(0, &cold_pw, 1, 2, &[hot, warm]));
        // But a warm PW is never bypassed.
        let warm_pw = PwDesc::new(Addr::new(0x200), 4, 12, PwTermination::TakenBranch);
        assert!(!p.should_bypass(0, &warm_pw, 1, 0, &[hot, warm]));
        // And a cold PW inserts into a set that already has cold PWs.
        let cold_res = meta(2, 0x300, 3);
        assert!(!p.should_bypass(0, &cold_pw, 1, 0, &[hot, cold_res]));
    }

    #[test]
    #[should_panic(expected = "hot >= warm")]
    fn inverted_thresholds_rejected() {
        let _ = ThermometerPolicy::with_thresholds(&FastHashMap::default(), 0.2, 0.8);
    }
}
