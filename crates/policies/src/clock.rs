//! CLOCK (second-chance) replacement, Corbató 1968.

use crate::slots::{SetTable, SlotTable};
use uopcache_cache::{PwMeta, PwReplacementPolicy};
use uopcache_model::PwDesc;

/// CLOCK replacement: one reference bit per resident PW and a per-set hand
/// sweeping the slots in circular order. A hit (and an insertion) sets the
/// bit; the victim scan clears bits as it passes and evicts the first PW
/// found with its bit already clear. The hand always stops just past the
/// victim's slot, so successive victims advance monotonically around the set
/// (modulo `ways`).
///
/// # Examples
///
/// ```
/// use uopcache_cache::UopCache;
/// use uopcache_model::UopCacheConfig;
/// use uopcache_policies::ClockPolicy;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(ClockPolicy::new()));
/// assert_eq!(cache.policy_name(), "CLOCK");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ClockPolicy {
    refbit: SlotTable<u8>,
    hand: SetTable<u8>,
    ways: u32,
}

impl ClockPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        ClockPolicy {
            refbit: SlotTable::new(),
            hand: SetTable::new(),
            ways: 0,
        }
    }

    /// The hand position for `set` — the slot the next victim scan starts
    /// from. Exposed for the property wall (hand monotonicity modulo ways).
    pub fn hand(&self, set: usize) -> u8 {
        *self.hand.get(set)
    }
}

impl PwReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "CLOCK"
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.refbit.reserve(sets, ways);
        self.hand.reserve(sets);
        self.ways = ways;
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        *self.refbit.get_mut(set, meta.slot) = 1;
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        // A fresh insertion was just referenced: it gets one full sweep of
        // grace before becoming a candidate.
        *self.refbit.get_mut(set, meta.slot) = 1;
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        *self.refbit.get_mut(set, meta.slot) = 0;
    }

    fn choose_victim(&mut self, set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        // `resident` is ordered by slot; rotate the scan so it starts at the
        // first occupied slot at or past the hand.
        let hand = *self.hand.get(set);
        let start = resident.iter().position(|m| m.slot >= hand).unwrap_or(0);
        // First full cycle clears set bits; the second cycle then finds a
        // clear bit at the latest on its first probe.
        for k in 0..=resident.len() {
            let idx = (start + k) % resident.len();
            let m = &resident[idx];
            let bit = self.refbit.get_mut(set, m.slot);
            if *bit == 0 {
                let next = m.slot.wrapping_add(1);
                *self.hand.get_mut(set) = if u32::from(next) >= self.ways.max(1) {
                    0
                } else {
                    next
                };
                return idx;
            }
            *bit = 0;
        }
        unreachable!("a cleared bit is found within one extra probe");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(slot: u8) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(
                Addr::new(0x100 + u64::from(slot) * 64),
                4,
                12,
                PwTermination::TakenBranch,
            ),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        }
    }

    fn incoming() -> PwDesc {
        PwDesc::new(Addr::new(0x900), 4, 12, PwTermination::TakenBranch)
    }

    #[test]
    fn second_chance_spares_referenced_pws() {
        let mut p = ClockPolicy::new();
        p.prepare(4, 4);
        let (a, b) = (meta(0), meta(1));
        p.on_insert(0, &a);
        p.on_insert(0, &b);
        // Both bits set: the sweep clears a then b, wraps, and evicts a.
        assert_eq!(p.choose_victim(0, &incoming(), &[a, b]), 0);
        assert_eq!(p.hand(0), 1);
        // b's bit was cleared by that sweep, the replacement c was just
        // referenced: the hand (at b) evicts the unreferenced b and spares c.
        let c = meta(0);
        p.on_insert(0, &c);
        assert_eq!(p.choose_victim(0, &incoming(), &[c, b]), 1);
        assert_eq!(p.hand(0), 2);
    }

    #[test]
    fn hand_advances_past_victim_and_wraps() {
        let mut p = ClockPolicy::new();
        p.prepare(1, 4);
        let all = [meta(0), meta(1), meta(2), meta(3)];
        for m in &all {
            p.on_insert(0, m);
        }
        let v = p.choose_victim(0, &incoming(), &all);
        assert_eq!(v, 0);
        assert_eq!(p.hand(0), 1);
        let v = p.choose_victim(0, &incoming(), &all[1..]);
        assert_eq!(all[1..][v].slot, 1);
        assert_eq!(p.hand(0), 2);
        // Evicting the PW in the last slot wraps the hand to 0.
        let last = [meta(3)];
        p.on_insert(0, &last[0]);
        let v = p.choose_victim(0, &incoming(), &last);
        assert_eq!(v, 0);
        assert_eq!(p.hand(0), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = ClockPolicy::new();
        p.prepare(2, 4);
        let a = meta(0);
        p.on_insert(0, &a);
        p.choose_victim(0, &incoming(), &[a]);
        p.choose_victim(0, &incoming(), &[a]);
        assert_eq!(p.hand(0), 1);
        assert_eq!(p.hand(1), 0);
    }
}
