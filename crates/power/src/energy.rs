//! Event energies, per-structure breakdown and performance-per-watt.

use uopcache_model::{FrontendConfig, SimResult};

/// Per-event energies in arbitrary consistent units (think pJ at 22 nm).
///
/// Use [`EnergyModel::zen3_22nm`] for the calibrated instance; all fields are
/// public so sensitivity studies can perturb them.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EnergyModel {
    /// Energy per micro-op through the legacy decoders.
    pub decode_per_uop: f64,
    /// Energy per decoder-active cycle (pipeline clocking while not gated).
    pub decoder_per_active_cycle: f64,
    /// Energy per L1i line read.
    pub icache_read: f64,
    /// Energy per L1i line fill.
    pub icache_fill: f64,
    /// Energy per micro-op cache set activation (lookup).
    pub uopc_lookup: f64,
    /// Energy per micro-op cache entry read on a hit.
    pub uopc_entry_read: f64,
    /// Energy per micro-op cache entry written on insertion.
    pub uopc_entry_write: f64,
    /// Energy per branch-predictor access.
    pub bp_access: f64,
    /// Energy per BTB access.
    pub btb_access: f64,
    /// Backend (rename/issue/execute/retire) energy per retired micro-op.
    pub backend_per_uop: f64,
    /// Static/leakage energy per cycle for the whole core.
    pub static_per_cycle: f64,
}

impl EnergyModel {
    /// The calibrated 22 nm / 3.2 GHz / 1.25 V model for `cfg`.
    ///
    /// Micro-op cache energies scale CACTI-style with geometry:
    /// sub-linearly in capacity (`(entries/512)^0.5`) and associativity
    /// (`(ways/8)^0.3`) relative to the Zen3 reference point.
    pub fn zen3_22nm(cfg: &FrontendConfig) -> Self {
        let size_scale = (f64::from(cfg.uop_cache.entries) / 512.0).powf(0.5);
        let assoc_scale = (f64::from(cfg.uop_cache.ways) / 8.0).powf(0.3);
        let uopc_scale = size_scale * assoc_scale;
        let icache_scale = (f64::from(cfg.icache.size_bytes) / (32.0 * 1024.0)).powf(0.5);
        EnergyModel {
            decode_per_uop: 0.115,
            decoder_per_active_cycle: 0.05,
            icache_read: 0.34 * icache_scale,
            icache_fill: 0.68 * icache_scale,
            uopc_lookup: 0.055 * uopc_scale,
            uopc_entry_read: 0.022 * uopc_scale,
            uopc_entry_write: 0.22 * uopc_scale,
            bp_access: 0.012,
            btb_access: 0.018,
            backend_per_uop: 0.58,
            static_per_cycle: 0.22,
        }
    }

    /// Evaluates the model on one simulation result.
    pub fn evaluate(&self, r: &SimResult) -> EnergyBreakdown {
        let e = &r.events;
        EnergyBreakdown {
            decoder: e.decoded_uops as f64 * self.decode_per_uop
                + e.decoder_active_cycles as f64 * self.decoder_per_active_cycle,
            icache: e.icache_reads as f64 * self.icache_read
                + e.icache_fills as f64 * self.icache_fill,
            uop_cache: e.uopc_lookups as f64 * self.uopc_lookup
                + e.uopc_entry_reads as f64 * self.uopc_entry_read
                + e.uopc_entry_writes as f64 * self.uopc_entry_write,
            bp_btb: e.bp_accesses as f64 * self.bp_access + e.btb_accesses as f64 * self.btb_access,
            backend: e.retired_uops as f64 * self.backend_per_uop,
            static_: e.cycles as f64 * self.static_per_cycle,
            retired_instructions: e.retired_instructions,
            cycles: e.cycles,
        }
    }
}

/// Per-structure energy of one run.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Legacy decode pipeline.
    pub decoder: f64,
    /// L1 instruction cache.
    pub icache: f64,
    /// Micro-op cache (lookups + reads + insertions).
    pub uop_cache: f64,
    /// Branch predictor and BTB.
    pub bp_btb: f64,
    /// Backend per-uop energy.
    pub backend: f64,
    /// Static/leakage energy.
    pub static_: f64,
    /// Instructions retired (for PPW).
    pub retired_instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
}

impl EnergyBreakdown {
    /// Total per-core energy.
    pub fn total(&self) -> f64 {
        self.decoder + self.icache + self.uop_cache + self.bp_btb + self.backend + self.static_
    }

    /// "Others" in the paper's Fig. 13 grouping: everything that is not the
    /// decoder, icache or micro-op cache.
    pub fn others(&self) -> f64 {
        self.bp_btb + self.backend + self.static_
    }

    /// Performance-per-watt: instructions retired per unit energy
    /// (equivalently instructions per Joule — the paper's energy-efficiency
    /// metric).
    pub fn ppw(&self) -> f64 {
        if self.total() <= 0.0 {
            0.0
        } else {
            self.retired_instructions as f64 / self.total()
        }
    }

    /// The fraction of total energy a component consumes, in percent.
    pub fn fraction_percent(&self, component: f64) -> f64 {
        if self.total() <= 0.0 {
            0.0
        } else {
            component / self.total() * 100.0
        }
    }
}

/// Performance-per-watt gain of `new` over `baseline`, in percent, under one
/// energy model (the Fig. 9 metric).
pub fn ppw_gain_percent(model: &EnergyModel, new: &SimResult, baseline: &SimResult) -> f64 {
    let n = model.evaluate(new).ppw();
    let b = model.evaluate(baseline).ppw();
    if b <= 0.0 {
        0.0
    } else {
        (n / b - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_cache::LruPolicy;
    use uopcache_model::FrontendConfig;
    use uopcache_sim::Frontend;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    fn run(cfg: FrontendConfig, app: AppId, n: usize) -> SimResult {
        let trace = build_trace(app, InputVariant(0), n);
        Frontend::builder(cfg)
            .policy(LruPolicy::new())
            .build()
            .run(&trace)
    }

    /// A configuration with an effectively disabled micro-op cache (everything
    /// misses through the legacy path), for baseline-without-uop-cache runs.
    fn no_uopc_cfg() -> FrontendConfig {
        let mut cfg = FrontendConfig::zen3();
        // Smallest legal geometry: 1 set x 1 way holding 1-uop windows only.
        cfg.uop_cache.entries = 1;
        cfg.uop_cache.ways = 1;
        cfg.uop_cache.max_entries_per_pw = 1;
        cfg.uop_cache.uops_per_entry = 1;
        cfg
    }

    #[test]
    fn fig13_anchor_fractions_without_uop_cache() {
        // Paper: baseline without micro-op cache spends ~12.5% on the decoder
        // and ~7.7% on the icache.
        let r = run(no_uopc_cfg(), AppId::Clang, 40_000);
        let model = EnergyModel::zen3_22nm(&no_uopc_cfg());
        let b = model.evaluate(&r);
        let decoder_pct = b.fraction_percent(b.decoder);
        let icache_pct = b.fraction_percent(b.icache);
        assert!(
            (9.0..=16.0).contains(&decoder_pct),
            "decoder fraction {decoder_pct:.1}% out of band"
        );
        assert!(
            (5.0..=11.0).contains(&icache_pct),
            "icache fraction {icache_pct:.1}% out of band"
        );
    }

    #[test]
    fn uop_cache_saves_energy_like_fig13() {
        // Adding a Zen3 micro-op cache with LRU should save roughly the
        // paper's 8.1% of per-core energy on Clang.
        let base = run(no_uopc_cfg(), AppId::Clang, 40_000);
        let with = run(FrontendConfig::zen3(), AppId::Clang, 40_000);
        let model = EnergyModel::zen3_22nm(&FrontendConfig::zen3());
        let eb = model.evaluate(&base).total();
        let ew = model.evaluate(&with).total();
        let saving = (1.0 - ew / eb) * 100.0;
        assert!(
            (2.0..=15.0).contains(&saving),
            "saving {saving:.1}% out of band"
        );
    }

    #[test]
    fn ppw_gain_positive_for_bigger_cache() {
        let small = run(FrontendConfig::zen3(), AppId::Kafka, 30_000);
        let mut big_cfg = FrontendConfig::zen3();
        big_cfg.uop_cache = big_cfg.uop_cache.with_entries(2048);
        let big = run(big_cfg, AppId::Kafka, 30_000);
        // Evaluate both under the Zen3 model (structure-identical comparison
        // of activity counts).
        let model = EnergyModel::zen3_22nm(&FrontendConfig::zen3());
        let gain = ppw_gain_percent(&model, &big, &small);
        assert!(gain > 0.0, "gain {gain:.2}%");
    }

    #[test]
    fn breakdown_sums() {
        let b = EnergyBreakdown {
            decoder: 1.0,
            icache: 2.0,
            uop_cache: 3.0,
            bp_btb: 4.0,
            backend: 5.0,
            static_: 6.0,
            retired_instructions: 42,
            cycles: 10,
        };
        assert!((b.total() - 21.0).abs() < 1e-12);
        assert!((b.others() - 15.0).abs() < 1e-12);
        assert!((b.fraction_percent(b.decoder) - 100.0 / 21.0).abs() < 1e-9);
        assert!((b.ppw() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_guards() {
        assert_eq!(EnergyBreakdown::default().ppw(), 0.0);
        assert_eq!(EnergyBreakdown::default().fraction_percent(1.0), 0.0);
        let model = EnergyModel::zen3_22nm(&FrontendConfig::zen3());
        assert_eq!(
            ppw_gain_percent(&model, &SimResult::default(), &SimResult::default()),
            0.0
        );
    }

    #[test]
    fn geometry_scaling_is_monotone() {
        let zen3 = EnergyModel::zen3_22nm(&FrontendConfig::zen3());
        let zen4 = EnergyModel::zen3_22nm(&FrontendConfig::zen4());
        assert!(
            zen4.uopc_lookup > zen3.uopc_lookup,
            "larger structure costs more per access"
        );
        assert_eq!(zen4.decode_per_uop, zen3.decode_per_uop);
    }
}
