//! # uopcache-power
//!
//! A McPAT/CACTI-style per-core energy model for the simulated frontend.
//!
//! Like the paper's flow (McPAT fed with Scarab activity counts at 22 nm,
//! 3.2 GHz, 1.25 V), the model combines static per-event access energies with
//! the dynamic activity counts produced by `uopcache-sim`, and reports both a
//! per-structure breakdown (Fig. 13) and performance-per-watt (Figs. 2/9/17).
//!
//! The constants are calibrated against the paper's Fig. 13 anchors for a
//! baseline core *without* a micro-op cache: the decoder consumes ≈12.5 % and
//! the L1i ≈7.7 % of per-core energy; micro-op cache access energies follow
//! a CACTI-style sub-linear scaling in size and associativity (the structure
//! is modelled "following the same structure of the icache but with micro-op
//! cache parameters", §VI-C).
//!
//! # Examples
//!
//! ```
//! use uopcache_cache::LruPolicy;
//! use uopcache_model::FrontendConfig;
//! use uopcache_power::EnergyModel;
//! use uopcache_sim::Frontend;
//! use uopcache_trace::{build_trace, AppId, InputVariant};
//!
//! let cfg = FrontendConfig::zen3();
//! let trace = build_trace(AppId::Clang, InputVariant::default(), 5_000);
//! let result = Frontend::builder(cfg).policy(LruPolicy::new()).build().run(&trace);
//! let model = EnergyModel::zen3_22nm(&cfg);
//! let breakdown = model.evaluate(&result);
//! assert!(breakdown.total() > 0.0);
//! assert!(breakdown.ppw() > 0.0);
//! ```

pub mod energy;

pub use energy::{ppw_gain_percent, EnergyBreakdown, EnergyModel};
