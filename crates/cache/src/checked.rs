//! Runtime conformance checking of the [`PwReplacementPolicy`] contract
//! (feature `strict-invariants`).
//!
//! [`CheckedPolicy`] wraps any policy and independently re-derives, from the
//! hook sequence alone, what the cache state must be. Every hook is validated
//! against that shadow state before being forwarded, so a policy (or a cache
//! bug) that violates the documented contract — a victim index outside the
//! `resident` slice, a slot reused without an intervening `on_evict` /
//! `on_invalidate`, a set filled past its way count, two resident windows
//! with the same start address — panics at the exact hook where the
//! violation happened, not thousands of accesses later when the corrupted
//! state is finally observed.
//!
//! Violations panic with a *replayable* diagnostic: each message carries the
//! policy name, a monotone hook sequence number, and the full event
//! (set / slot / start address / entry count). Because every workspace trace
//! is a pure function of its seed, re-running the same access stream and
//! breaking on the printed hook number reproduces the failure exactly.
//!
//! # Examples
//!
//! ```
//! use uopcache_cache::{CheckedPolicy, LruPolicy, UopCache};
//! use uopcache_model::{Addr, PwDesc, PwTermination, UopCacheConfig};
//!
//! let cfg = UopCacheConfig::zen3();
//! let policy = CheckedPolicy::new(LruPolicy::new(), cfg.ways);
//! let mut cache = UopCache::new(cfg, Box::new(policy));
//! let pw = PwDesc::new(Addr::new(0x40), 6, 18, PwTermination::TakenBranch);
//! cache.lookup(&pw);
//! cache.insert(&pw);
//! uopcache_cache::checked::verify_stats(cache.stats());
//! ```

use crate::meta::PwMeta;
use crate::policy::PwReplacementPolicy;
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, UopCacheStats};

/// Shadow record of one resident window, keyed by `(set, slot)`.
#[derive(Copy, Clone, Debug)]
struct Live {
    start: Addr,
    entries: u8,
}

/// A conformance-checking wrapper around a replacement policy.
///
/// See the [module documentation](self) for the invariants enforced. The
/// wrapper is transparent: it forwards every hook to the inner policy and
/// reports the inner policy's [`name`](PwReplacementPolicy::name), so cache
/// behaviour and statistics are identical to running the policy bare.
pub struct CheckedPolicy<P: PwReplacementPolicy> {
    inner: P,
    ways: u32,
    /// Per-set live windows implied by the hook sequence.
    sets: FastHashMap<usize, FastHashMap<u8, Live>>,
    /// Hooks observed so far (the replay coordinate printed on violation).
    ops: u64,
}

impl<P: PwReplacementPolicy> CheckedPolicy<P> {
    /// Wraps `inner` for a cache whose sets have `ways` entry slots.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(inner: P, ways: u32) -> Self {
        assert!(ways > 0, "ways must be nonzero");
        CheckedPolicy {
            inner,
            ways,
            sets: FastHashMap::default(),
            ops: 0,
        }
    }

    /// Hooks observed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Consumes the wrapper, returning the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Raises a conformance violation with the replay coordinate attached.
    #[track_caller]
    fn violation(&self, hook: &str, set: usize, detail: &str) -> ! {
        panic!(
            "strict-invariants violation in policy '{}' at hook #{} ({hook}, set {set}): \
             {detail} — replay the same seeded access stream and break at hook #{}",
            self.inner.name(),
            self.ops,
            self.ops,
        );
    }

    fn occupancy(&self, set: usize) -> u32 {
        self.sets
            .get(&set)
            .map_or(0, |s| s.values().map(|l| u32::from(l.entries)).sum())
    }

    /// Checks that `resident` is consistent with the shadow state: slot
    /// order, no ghosts (windows the hook sequence says were evicted), and
    /// no omissions (windows the hook sequence says are still resident).
    fn check_resident_slice(&self, hook: &str, set: usize, resident: &[PwMeta]) {
        let live = self.sets.get(&set);
        let live_count = live.map_or(0, FastHashMap::len);
        if resident.len() != live_count {
            self.violation(
                hook,
                set,
                &format!(
                    "resident slice has {} windows but the hook sequence implies {live_count}",
                    resident.len()
                ),
            );
        }
        let mut prev_slot: Option<u8> = None;
        for meta in resident {
            if prev_slot.is_some_and(|p| p >= meta.slot) {
                self.violation(hook, set, "resident slice is not in ascending slot order");
            }
            prev_slot = Some(meta.slot);
            match live.and_then(|s| s.get(&meta.slot)) {
                Some(l) if l.start == meta.desc.start => {}
                Some(l) => self.violation(
                    hook,
                    set,
                    &format!(
                        "slot {} holds start {:#x} but the hook sequence recorded {:#x}",
                        meta.slot,
                        meta.desc.start.get(),
                        l.start.get()
                    ),
                ),
                None => self.violation(
                    hook,
                    set,
                    &format!(
                        "slot {} (start {:#x}) appears resident but was never inserted \
                         (or already evicted)",
                        meta.slot,
                        meta.desc.start.get()
                    ),
                ),
            }
        }
    }

    fn remove(&mut self, hook: &str, set: usize, meta: &PwMeta) {
        let removed = self.sets.get_mut(&set).and_then(|s| s.remove(&meta.slot));
        match removed {
            Some(l) if l.start == meta.desc.start => {}
            Some(l) => self.violation(
                hook,
                set,
                &format!(
                    "slot {} evicted with start {:#x} but held {:#x}",
                    meta.slot,
                    meta.desc.start.get(),
                    l.start.get()
                ),
            ),
            None => self.violation(
                hook,
                set,
                &format!(
                    "slot {} (start {:#x}) evicted while not resident",
                    meta.slot,
                    meta.desc.start.get()
                ),
            ),
        }
    }
}

// audit:alloc-exempt — strict-invariants diagnostic wrapper: its whole job is
// building violation reports, so it allocates freely; the timed kernel and the
// alloc_budget wall never run with it enabled.
impl<P: PwReplacementPolicy> PwReplacementPolicy for CheckedPolicy<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        self.inner.prepare(sets, ways);
    }

    fn on_lookup(&mut self, pw: &uopcache_model::PwDesc) {
        self.ops += 1;
        self.inner.on_lookup(pw);
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        self.ops += 1;
        match self.sets.get(&set).and_then(|s| s.get(&meta.slot)) {
            Some(l) if l.start == meta.desc.start => {}
            _ => self.violation(
                "on_hit",
                set,
                &format!(
                    "hit reported on slot {} (start {:#x}) which is not resident",
                    meta.slot,
                    meta.desc.start.get()
                ),
            ),
        }
        self.inner.on_hit(set, meta);
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        self.ops += 1;
        let slots = self.sets.entry(set).or_default();
        if let Some(l) = slots.get(&meta.slot) {
            let held = l.start.get();
            self.violation(
                "on_insert",
                set,
                &format!(
                    "slot {} reused without an intervening on_evict/on_invalidate \
                     (held start {held:#x})",
                    meta.slot
                ),
            );
        }
        if slots.values().any(|l| l.start == meta.desc.start) {
            self.violation(
                "on_insert",
                set,
                &format!(
                    "duplicate start address {:#x} in set",
                    meta.desc.start.get()
                ),
            );
        }
        slots.insert(
            meta.slot,
            Live {
                start: meta.desc.start,
                entries: meta.entries,
            },
        );
        let occupied = self.occupancy(set);
        if occupied > self.ways {
            self.violation(
                "on_insert",
                set,
                &format!("set occupancy {occupied} exceeds {} ways", self.ways),
            );
        }
        self.inner.on_insert(set, meta);
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        self.ops += 1;
        self.remove("on_evict", set, meta);
        self.inner.on_evict(set, meta);
    }

    fn on_invalidate(&mut self, set: usize, meta: &PwMeta) {
        self.ops += 1;
        self.remove("on_invalidate", set, meta);
        self.inner.on_invalidate(set, meta);
    }

    fn should_bypass(
        &mut self,
        set: usize,
        incoming: &uopcache_model::PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        self.ops += 1;
        self.check_resident_slice("should_bypass", set, resident);
        let implied_free = self.ways - self.occupancy(set);
        if free_entries != implied_free {
            self.violation(
                "should_bypass",
                set,
                &format!(
                    "cache reports {free_entries} free entries but the hook sequence \
                     implies {implied_free}"
                ),
            );
        }
        self.inner
            .should_bypass(set, incoming, needed_entries, free_entries, resident)
    }

    fn choose_victim(
        &mut self,
        set: usize,
        incoming: &uopcache_model::PwDesc,
        resident: &[PwMeta],
    ) -> usize {
        self.ops += 1;
        if resident.is_empty() {
            self.violation("choose_victim", set, "called with an empty resident slice");
        }
        self.check_resident_slice("choose_victim", set, resident);
        let idx = self.inner.choose_victim(set, incoming, resident);
        if idx >= resident.len() {
            self.violation(
                "choose_victim",
                set,
                &format!(
                    "policy returned victim index {idx} for a resident slice of length {}",
                    resident.len()
                ),
            );
        }
        idx
    }

    fn last_selection_was_fallback(&self) -> bool {
        self.inner.last_selection_was_fallback()
    }

    fn introspect(&self) -> Option<uopcache_model::json::Json> {
        self.inner.introspect()
    }
}

impl<P: PwReplacementPolicy> std::fmt::Debug for CheckedPolicy<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckedPolicy")
            .field("inner", &self.inner.name())
            .field("ways", &self.ways)
            .field("ops", &self.ops)
            .finish()
    }
}

/// Panics unless the cache's books balance: micro-ops hit plus missed must
/// equal micro-ops requested, and PW-granularity outcomes (full hits, partial
/// hits, misses) must partition the lookups.
///
/// # Panics
///
/// Panics with the offending statistics if either conservation law fails.
pub fn verify_stats(stats: &UopCacheStats) {
    assert!(
        stats.uops_hit + stats.uops_missed == stats.uops_requested,
        "stats conservation violated: {} hit + {} missed != {} requested ({stats:?})",
        stats.uops_hit,
        stats.uops_missed,
        stats.uops_requested,
    );
    assert!(
        stats.pw_hits + stats.pw_partial_hits + stats.pw_misses == stats.lookups,
        "stats conservation violated: {} + {} + {} outcomes != {} lookups ({stats:?})",
        stats.pw_hits,
        stats.pw_partial_hits,
        stats.pw_misses,
        stats.lookups,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruPolicy;
    use crate::uopcache::UopCache;
    use uopcache_model::{PwDesc, PwTermination, UopCacheConfig};

    fn pw(start: u64, uops: u32) -> PwDesc {
        PwDesc::new(
            Addr::new(start),
            uops,
            (uops * 3).max(1),
            PwTermination::TakenBranch,
        )
    }

    fn small_cfg() -> UopCacheConfig {
        UopCacheConfig {
            entries: 8,
            ways: 4,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 4,
        }
    }

    fn meta(start: u64, slot: u8, entries: u8) -> PwMeta {
        PwMeta {
            desc: pw(start, 4),
            slot,
            entries,
            inserted_at: 0,
            last_access: 0,
            hits: 0,
        }
    }

    #[test]
    fn clean_run_through_the_real_cache_is_silent() {
        let cfg = small_cfg();
        let mut cache = UopCache::new(
            cfg,
            Box::new(CheckedPolicy::new(LruPolicy::new(), cfg.ways)),
        );
        for i in 0..200u64 {
            let w = pw(
                0x40 + (i % 9) * 64,
                u32::try_from(i % 20 + 1).expect("small"),
            );
            cache.lookup(&w);
            cache.insert(&w);
        }
        verify_stats(cache.stats());
    }

    #[test]
    fn invalidation_paths_are_tracked() {
        let cfg = small_cfg();
        let mut cache = UopCache::new(
            cfg,
            Box::new(CheckedPolicy::new(LruPolicy::new(), cfg.ways)),
        );
        let w = pw(0x40, 6);
        cache.insert(&w);
        assert_eq!(cache.invalidate_line(Addr::new(0x40).line(64)), 1);
        // The freed slot can be reused without tripping the checker.
        cache.insert(&pw(0x140, 6));
    }

    #[test]
    #[should_panic(expected = "reused without an intervening on_evict")]
    fn slot_reuse_without_evict_is_caught() {
        let mut p = CheckedPolicy::new(LruPolicy::new(), 4);
        p.on_insert(0, &meta(0x40, 0, 1));
        p.on_insert(0, &meta(0x80, 0, 1)); // same slot, no eviction first
    }

    #[test]
    #[should_panic(expected = "duplicate start address")]
    fn duplicate_start_is_caught() {
        let mut p = CheckedPolicy::new(LruPolicy::new(), 4);
        p.on_insert(0, &meta(0x40, 0, 1));
        p.on_insert(0, &meta(0x40, 1, 1));
    }

    #[test]
    #[should_panic(expected = "exceeds 2 ways")]
    fn overfull_set_is_caught() {
        let mut p = CheckedPolicy::new(LruPolicy::new(), 2);
        p.on_insert(0, &meta(0x40, 0, 2));
        p.on_insert(0, &meta(0x80, 1, 1));
    }

    #[test]
    #[should_panic(expected = "evicted while not resident")]
    fn evicting_a_ghost_is_caught() {
        let mut p = CheckedPolicy::new(LruPolicy::new(), 4);
        p.on_evict(0, &meta(0x40, 0, 1));
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn hit_on_absent_window_is_caught() {
        let mut p = CheckedPolicy::new(LruPolicy::new(), 4);
        p.on_hit(0, &meta(0x40, 0, 1));
    }

    #[test]
    #[should_panic(expected = "victim index 7")]
    fn out_of_range_victim_is_caught() {
        /// A deliberately broken policy for exercising the checker.
        struct Rogue;
        impl PwReplacementPolicy for Rogue {
            fn name(&self) -> &'static str {
                "Rogue"
            }
            fn on_hit(&mut self, _: usize, _: &PwMeta) {}
            fn on_insert(&mut self, _: usize, _: &PwMeta) {}
            fn on_evict(&mut self, _: usize, _: &PwMeta) {}
            fn choose_victim(&mut self, _: usize, _: &PwDesc, _: &[PwMeta]) -> usize {
                7
            }
        }
        let mut p = CheckedPolicy::new(Rogue, 4);
        p.on_insert(0, &meta(0x40, 0, 1));
        let _ = p.choose_victim(0, &pw(0x80, 4), &[meta(0x40, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "stats conservation violated")]
    fn verify_stats_rejects_unbalanced_books() {
        let stats = UopCacheStats {
            lookups: 3,
            pw_hits: 1,
            ..UopCacheStats::default()
        };
        verify_stats(&stats);
    }

    #[test]
    fn violation_message_carries_the_replay_coordinate() {
        let mut p = CheckedPolicy::new(LruPolicy::new(), 4);
        p.on_insert(0, &meta(0x40, 0, 1));
        p.on_hit(0, &meta(0x40, 0, 1));
        assert_eq!(p.ops(), 2);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_evict(1, &meta(0x40, 0, 1)); // wrong set
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("hook #3"), "{msg}");
        assert!(msg.contains("policy 'LRU'"), "{msg}");
        assert!(msg.contains("set 1"), "{msg}");
    }
}
