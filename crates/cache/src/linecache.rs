//! A conventional set-associative LRU line cache (L1 instruction cache, BTB).

use uopcache_model::{CacheStats, LineAddr};

/// Result of a line-cache access.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum LineOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; `evicted` is the line displaced, if any.
    Miss {
        /// Line evicted to make room (None if a way was free).
        evicted: Option<LineAddr>,
    },
}

#[derive(Copy, Clone, Debug)]
struct Way {
    line: LineAddr,
    last_access: u64,
}

/// Set-associative LRU cache of lines, used for the 32 KiB L1i (Table I) and
/// as a generic tagged structure for the BTB.
///
/// # Examples
///
/// ```
/// use uopcache_cache::{LineCache, LineOutcome};
/// use uopcache_model::Addr;
///
/// let mut l1i = LineCache::new(32 * 1024, 8, 64);
/// let line = Addr::new(0x1234).line(64);
/// assert!(matches!(l1i.access(line), LineOutcome::Miss { .. }));
/// assert_eq!(l1i.access(line), LineOutcome::Hit);
/// ```
#[derive(Clone, Debug)]
pub struct LineCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    line_bytes: u64,
    stats: CacheStats,
    now: u64,
}

impl LineCache {
    /// Creates a cache with `size_bytes` capacity, `ways` associativity and
    /// the given line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or the set count is not
    /// a power of two.
    pub fn new(size_bytes: u32, ways: u32, line_bytes: u32) -> Self {
        let lines = size_bytes / line_bytes;
        assert!(
            ways > 0 && lines.is_multiple_of(ways),
            "lines must divide into ways"
        );
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        LineCache {
            sets: vec![Vec::new(); sets as usize],
            ways: ways as usize,
            line_bytes: u64::from(line_bytes),
            stats: CacheStats::default(),
            now: 0,
        }
    }

    /// Creates a cache by entry count instead of byte size (for BTB-like
    /// structures where "line" is an entry tag).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`LineCache::new`]).
    pub fn with_entries(entries: u32, ways: u32, line_bytes: u32) -> Self {
        Self::new(entries * line_bytes, ways, line_bytes)
    }

    /// Accesses `line`, filling it on a miss. Returns what happened.
    pub fn access(&mut self, line: LineAddr) -> LineOutcome {
        self.now += 1;
        self.stats.accesses += 1;
        let set_count = self.sets.len() as u64;
        let idx = line.set_index(set_count, self.line_bytes);
        let set = &mut self.sets[idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_access = self.now;
            self.stats.hits += 1;
            return LineOutcome::Hit;
        }
        self.stats.misses += 1;
        self.stats.fills += 1;
        let evicted = if set.len() < self.ways {
            set.push(Way {
                line,
                last_access: self.now,
            });
            None
        } else {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_access)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let old = set[lru].line;
            set[lru] = Way {
                line,
                last_access: self.now,
            };
            self.stats.evictions += 1;
            Some(old)
        };
        LineOutcome::Miss { evicted }
    }

    /// Refreshes `line`'s recency without counting an access (used to keep
    /// the L1i's LRU state coupled to micro-op cache hits under inclusion).
    /// Returns whether the line was present.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        self.now += 1;
        let idx = line.set_index(self.sets.len() as u64, self.line_bytes);
        if let Some(way) = self.sets[idx].iter_mut().find(|w| w.line == line) {
            way.last_access = self.now;
            true
        } else {
            false
        }
    }

    /// Whether `line` is present (does not update recency).
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = line.set_index(self.sets.len() as u64, self.line_bytes);
        self.sets[idx].iter().any(|w| w.line == line)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::Addr;

    fn line(addr: u64) -> LineAddr {
        Addr::new(addr).line(64)
    }

    #[test]
    fn fill_then_hit() {
        let mut c = LineCache::new(4 * 64, 2, 64); // 2 sets x 2 ways
        assert!(matches!(
            c.access(line(0)),
            LineOutcome::Miss { evicted: None }
        ));
        assert_eq!(c.access(line(0)), LineOutcome::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = LineCache::new(4 * 64, 2, 64); // sets 0,1
                                                   // Lines 0, 128, 256 all map to set 0.
        c.access(line(0));
        c.access(line(128));
        c.access(line(0)); // refresh 0; 128 is now LRU
        match c.access(line(256)) {
            LineOutcome::Miss { evicted: Some(e) } => assert_eq!(e, line(128)),
            other => panic!("{other:?}"),
        }
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(128)));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = LineCache::new(4 * 64, 2, 64);
        c.access(line(0)); // set 0
        c.access(line(64)); // set 1
        assert!(c.contains(line(0)));
        assert!(c.contains(line(64)));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn entries_constructor() {
        let c = LineCache::with_entries(8192, 4, 64);
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = LineCache::new(3 * 64, 1, 64);
    }
}
