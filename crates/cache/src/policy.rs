//! The replacement-policy trait the micro-op cache consults.

use crate::meta::PwMeta;
use uopcache_model::PwDesc;

/// A micro-op cache replacement policy.
///
/// The cache calls these hooks as PWs are looked up, inserted and evicted.
/// `resident` slices are ordered by slot index and contain only occupied
/// slots. Victim selection returns an index **into the `resident` slice**
/// (not a slot number); the cache evicts that PW and, if more space is still
/// needed for a multi-entry insertion, asks again with the updated slice.
///
/// Implementations may key internal state by `(set, meta.slot)`: slot numbers
/// are stable while a PW is resident and are recycled after eviction
/// (`on_evict`/`on_invalidate` is always called before a slot is reused).
pub trait PwReplacementPolicy {
    /// Human-readable policy name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Called once when the cache is constructed, with its geometry.
    /// Policies that key state by `(set, slot)` preallocate it here so the
    /// simulation loop runs without heap allocation. The default does
    /// nothing (stateless policies need no arena).
    fn prepare(&mut self, _sets: usize, _ways: u32) {}

    /// Called at the start of every lookup, hit or miss. Offline (oracle)
    /// policies use this to advance their position in the trace; history
    /// based policies may update global state here.
    fn on_lookup(&mut self, _pw: &PwDesc) {}

    /// A lookup hit (full or partial) on a resident PW.
    fn on_hit(&mut self, set: usize, meta: &PwMeta);

    /// A PW was inserted into `set` at `meta.slot`.
    fn on_insert(&mut self, set: usize, meta: &PwMeta);

    /// A resident PW was evicted by replacement.
    fn on_evict(&mut self, set: usize, meta: &PwMeta);

    /// A resident PW was invalidated by L1i inclusion (not a policy decision).
    fn on_invalidate(&mut self, set: usize, meta: &PwMeta) {
        self.on_evict(set, meta);
    }

    /// Whether to bypass (not insert) `incoming`. Called before any victim
    /// selection; returning `true` leaves the set untouched. `needed_entries`
    /// is the space the incoming PW requires and `free_entries` what the set
    /// has available — policies typically only bypass when an eviction would
    /// be forced (`needed_entries > free_entries`).
    fn should_bypass(
        &mut self,
        _set: usize,
        _incoming: &PwDesc,
        _needed_entries: u32,
        _free_entries: u32,
        _resident: &[PwMeta],
    ) -> bool {
        false
    }

    /// Chooses a victim among `resident` for the insertion of `incoming`.
    /// Returns an index into `resident`.
    ///
    /// # Panics
    ///
    /// Implementations may assume `resident` is non-empty.
    fn choose_victim(&mut self, set: usize, incoming: &PwDesc, resident: &[PwMeta]) -> usize;

    /// Whether the most recent `choose_victim` fell back to a secondary
    /// policy (FURBYS's pitfall detector degrading to SRRIP). Used for the
    /// paper's *replacement coverage* statistic.
    fn last_selection_was_fallback(&self) -> bool {
        false
    }

    /// Optional structured self-description of internal policy state, for
    /// diagnostics surfaces (`uopcache inspect`). Meta-policies with
    /// interesting internals — set-dueling's per-candidate PSEL counters and
    /// phase winners — return a JSON object; plain policies return `None`.
    /// Never consulted on the simulation hot path.
    fn introspect(&self) -> Option<uopcache_model::json::Json> {
        None
    }
}

impl PwReplacementPolicy for Box<dyn PwReplacementPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn prepare(&mut self, sets: usize, ways: u32) {
        (**self).prepare(sets, ways);
    }

    fn on_lookup(&mut self, pw: &PwDesc) {
        (**self).on_lookup(pw);
    }

    fn on_hit(&mut self, set: usize, meta: &PwMeta) {
        (**self).on_hit(set, meta);
    }

    fn on_insert(&mut self, set: usize, meta: &PwMeta) {
        (**self).on_insert(set, meta);
    }

    fn on_evict(&mut self, set: usize, meta: &PwMeta) {
        (**self).on_evict(set, meta);
    }

    fn on_invalidate(&mut self, set: usize, meta: &PwMeta) {
        (**self).on_invalidate(set, meta);
    }

    fn should_bypass(
        &mut self,
        set: usize,
        incoming: &PwDesc,
        needed_entries: u32,
        free_entries: u32,
        resident: &[PwMeta],
    ) -> bool {
        (**self).should_bypass(set, incoming, needed_entries, free_entries, resident)
    }

    fn choose_victim(&mut self, set: usize, incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        (**self).choose_victim(set, incoming, resident)
    }

    fn last_selection_was_fallback(&self) -> bool {
        (**self).last_selection_was_fallback()
    }

    fn introspect(&self) -> Option<uopcache_model::json::Json> {
        (**self).introspect()
    }
}

#[cfg(test)]
mod tests {
    use super::PwReplacementPolicy;
    use crate::lru::LruPolicy;

    #[test]
    fn default_hooks_are_benign() {
        // The default should_bypass never bypasses and fallback is false.
        let p = LruPolicy::new();
        assert!(!p.last_selection_was_fallback());
        assert_eq!(p.name(), "LRU");
    }
}
