//! # uopcache-cache
//!
//! Cache substrates for the `uopcache` workspace:
//!
//! * [`UopCache`] — the micro-op cache storage structure: set-associative at
//!   *entry* granularity, managed at *prediction-window* granularity, with
//!   partial hits between overlapping PWs and strict inclusion in L1i.
//! * [`PwReplacementPolicy`] — the trait every replacement policy (online and
//!   offline-replay) implements.
//! * [`LineCache`] — a conventional set-associative LRU line cache used for
//!   the L1 instruction cache and the BTB.
//! * [`ShadowFaCache`] — a fully-associative LRU shadow used to split misses
//!   into cold / capacity / conflict (the §III-B study).
//!
//! With the default `obs` feature, [`UopCache::set_recorder`] installs a
//! `uopcache_obs::Recorder` that receives one structured event per lookup /
//! insert / evict / bypass / invalidate; build with `--no-default-features`
//! to compile the emission paths out entirely.
//!
//! # Examples
//!
//! ```
//! use uopcache_cache::{LruPolicy, LookupResult, UopCache};
//! use uopcache_model::{Addr, PwDesc, PwTermination, UopCacheConfig};
//!
//! let mut cache = UopCache::new(UopCacheConfig::zen3(), Box::new(LruPolicy::new()));
//! let pw = PwDesc::new(Addr::new(0x100), 6, 18, PwTermination::TakenBranch);
//! assert_eq!(cache.lookup(&pw), LookupResult::Miss);
//! cache.insert(&pw);
//! assert_eq!(cache.lookup(&pw), LookupResult::Hit { uops: 6 });
//! ```

#[cfg(feature = "strict-invariants")]
pub mod checked;
pub mod classify;
pub mod linecache;
pub mod lru;
pub mod meta;
pub mod policy;
pub mod pwset;
pub mod shadow;
pub mod uopcache;

#[cfg(feature = "strict-invariants")]
pub use checked::CheckedPolicy;
pub use classify::{MissClass, MissClassifier};
pub use linecache::{LineCache, LineOutcome};
pub use lru::LruPolicy;
pub use meta::PwMeta;
pub use policy::PwReplacementPolicy;
pub use pwset::PwSet;
pub use shadow::ShadowFaCache;
pub use uopcache::{InsertOutcome, LookupResult, UopCache};
