//! One micro-op cache set: a pool of entry slots shared by whole prediction
//! windows.
//!
//! Storage is a struct-of-arrays arena sized at construction: a `live`
//! bitmask of occupied slots, a dense array of start addresses (the lookup
//! key — one cache line covers eight ways), and a parallel array of
//! [`PwMeta`] records. Nothing allocates after [`PwSet::new`]; the hot
//! [`find`](PwSet::find) walks the start-address array guided by the bitmask
//! instead of chasing per-way heap cells.

use crate::meta::PwMeta;
use uopcache_model::{Addr, PwDesc, PwTermination};

/// A single set of the micro-op cache.
///
/// The set owns `ways` entry slots. Each resident PW occupies `entries`
/// (1..=ways) of them and is tracked as a unit: all of its entries are
/// allocated and reclaimed together, mirroring the hardware organisation in
/// which a multi-entry PW's entries live in one set and are fetched/evicted
/// as a whole (§II-C).
#[derive(Clone, Debug)]
pub struct PwSet {
    ways: u8,
    /// Entry slots currently in use.
    used_entries: u8,
    /// Bit `i` set ⇔ slot `i` holds a resident PW.
    live: u64,
    /// All `ways` low bits set — the universe `live` lives in.
    mask: u64,
    /// Start address per slot (valid only where `live` has the bit set).
    starts: Box<[Addr]>,
    /// Full metadata per slot (valid only where `live` has the bit set).
    metas: Box<[PwMeta]>,
}

/// Filler for dead arena cells; never observable through the public API.
const DEAD: PwMeta = PwMeta {
    desc: PwDesc {
        start: Addr::new(0),
        uops: 0,
        bytes: 0,
        term: PwTermination::TakenBranch,
    },
    slot: 0,
    entries: 0,
    inserted_at: 0,
    last_access: 0,
    hits: 0,
};

impl PwSet {
    /// Creates an empty set with `ways` entry slots, preallocating the whole
    /// arena.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or greater than 64.
    pub fn new(ways: u32) -> Self {
        assert!((1..=64).contains(&ways), "ways must be in 1..=64");
        let ways = u8::try_from(ways).expect("ways checked to be in 1..=64");
        PwSet {
            ways,
            used_entries: 0,
            live: 0,
            mask: u64::MAX >> (64 - u32::from(ways)),
            starts: vec![Addr::new(0); usize::from(ways)].into_boxed_slice(),
            metas: vec![DEAD; usize::from(ways)].into_boxed_slice(),
        }
    }

    /// Entry slots in use.
    pub fn used_entries(&self) -> u32 {
        u32::from(self.used_entries)
    }

    /// Entry slots free.
    pub fn free_entries(&self) -> u32 {
        u32::from(self.ways - self.used_entries)
    }

    /// Number of resident PWs.
    pub fn resident_count(&self) -> usize {
        self.live.count_ones() as usize
    }

    /// The resident PWs, ordered by slot.
    pub fn residents(&self) -> impl Iterator<Item = &PwMeta> {
        let live = self.live;
        self.metas
            .iter()
            .enumerate()
            .filter(move |(i, _)| live & (1 << i) != 0)
            .map(|(_, m)| m)
    }

    /// Collects the residents into a vector (slot order) — the slice handed
    /// to replacement policies.
    pub fn resident_metas(&self) -> Vec<PwMeta> {
        self.residents().copied().collect()
    }

    /// Refills `out` with the residents in slot order. Allocation-free as
    /// long as `out` has capacity for `ways` elements — the cache keeps one
    /// such scratch buffer for its policy calls.
    // audit:hot-path — per-victim-choice resident snapshot
    pub fn fill_residents(&self, out: &mut Vec<PwMeta>) {
        out.clear();
        let mut live = self.live;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            out.push(self.metas[i]); // audit:allow(hot-path-alloc) — caller-owned scratch, pre-sized to `ways`
            live &= live - 1;
        }
    }

    /// Finds the resident PW starting at `start`, if any. At most one PW per
    /// start address is resident (the cache keeps the larger of two
    /// overlapping windows).
    // audit:hot-path — per-lookup probe
    pub fn find(&self, start: Addr) -> Option<&PwMeta> {
        let mut live = self.live;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            if self.starts[i] == start {
                return Some(&self.metas[i]);
            }
            live &= live - 1;
        }
        None
    }

    /// Mutable variant of [`PwSet::find`].
    // audit:hot-path — per-hit recency update
    pub fn find_mut(&mut self, start: Addr) -> Option<&mut PwMeta> {
        let mut live = self.live;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            if self.starts[i] == start {
                return Some(&mut self.metas[i]);
            }
            live &= live - 1;
        }
        None
    }

    /// Inserts a PW occupying `entries` slots, returning its metadata.
    /// The PW takes the lowest free slot id.
    ///
    /// # Panics
    ///
    /// Panics if there is not enough free space (the caller must evict first)
    /// or if a PW with the same start address is already resident.
    // audit:hot-path — per-fill slot claim
    pub fn insert(&mut self, desc: PwDesc, entries: u32, now: u64) -> PwMeta {
        assert!(
            entries >= 1 && entries <= u32::from(self.ways),
            "PW entries out of range"
        );
        assert!(
            entries <= self.free_entries(),
            "set overflow: inserting {entries} entries with {} free",
            self.free_entries()
        );
        assert!(
            self.find(desc.start).is_none(),
            "duplicate start address in set"
        );
        let slot = (!self.live & self.mask).trailing_zeros() as usize;
        let meta = PwMeta {
            desc,
            slot: u8::try_from(slot).expect("at most `ways` slots in the arena"),
            entries: u8::try_from(entries).expect("entries checked against ways <= 64"),
            inserted_at: now,
            last_access: now,
            hits: 0,
        };
        self.live |= 1 << slot;
        self.starts[slot] = desc.start;
        self.metas[slot] = meta;
        self.used_entries += u8::try_from(entries).expect("entries checked against ways <= 64");
        meta
    }

    /// Removes the resident PW at `slot`, returning its metadata.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or out of range.
    // audit:hot-path — per-eviction slot release
    pub fn remove_slot(&mut self, slot: u8) -> PwMeta {
        let bit = 1u64 << slot;
        assert!(self.live & bit != 0, "slot occupied");
        self.live &= !bit;
        let meta = self.metas[usize::from(slot)];
        self.used_entries -= meta.entries;
        meta
    }

    /// Removes the resident PW starting at `start`, if present.
    // audit:hot-path — per-invalidate removal
    pub fn remove_start(&mut self, start: Addr) -> Option<PwMeta> {
        let slot = self.find(start)?.slot;
        Some(self.remove_slot(slot))
    }

    /// Records a hit on the PW at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    // audit:hot-path — per-hit timestamp bump
    pub fn touch(&mut self, slot: u8, now: u64) -> PwMeta {
        assert!(self.live & (1 << slot) != 0, "slot occupied");
        let meta = &mut self.metas[usize::from(slot)];
        meta.last_access = now;
        meta.hits += 1;
        *meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn pw(start: u64, uops: u32) -> PwDesc {
        PwDesc::new(Addr::new(start), uops, uops * 3, PwTermination::TakenBranch)
    }

    #[test]
    fn insert_and_find() {
        let mut set = PwSet::new(8);
        set.insert(pw(0x10, 4), 1, 0);
        set.insert(pw(0x20, 20), 3, 1);
        assert_eq!(set.used_entries(), 4);
        assert_eq!(set.free_entries(), 4);
        assert_eq!(set.resident_count(), 2);
        assert_eq!(set.find(Addr::new(0x20)).unwrap().entries, 3);
        assert!(set.find(Addr::new(0x30)).is_none());
    }

    #[test]
    fn slots_are_recycled() {
        let mut set = PwSet::new(4);
        let a = set.insert(pw(0x10, 4), 1, 0);
        set.insert(pw(0x20, 4), 1, 0);
        set.remove_slot(a.slot);
        let c = set.insert(pw(0x30, 4), 1, 0);
        assert_eq!(c.slot, a.slot, "freed slot should be reused");
    }

    #[test]
    fn lowest_free_slot_wins() {
        let mut set = PwSet::new(8);
        let a = set.insert(pw(0x10, 1), 1, 0);
        let b = set.insert(pw(0x20, 1), 1, 0);
        let c = set.insert(pw(0x30, 1), 1, 0);
        assert_eq!((a.slot, b.slot, c.slot), (0, 1, 2));
        set.remove_slot(b.slot);
        assert_eq!(set.insert(pw(0x40, 1), 1, 0).slot, 1);
        assert_eq!(set.insert(pw(0x50, 1), 1, 0).slot, 3);
    }

    #[test]
    #[should_panic(expected = "set overflow")]
    fn overflow_panics() {
        let mut set = PwSet::new(2);
        set.insert(pw(0x10, 16), 2, 0);
        set.insert(pw(0x20, 1), 1, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate start")]
    fn duplicate_start_panics() {
        let mut set = PwSet::new(4);
        set.insert(pw(0x10, 1), 1, 0);
        set.insert(pw(0x10, 9), 2, 0);
    }

    #[test]
    fn touch_updates_recency_and_hits() {
        let mut set = PwSet::new(4);
        let m = set.insert(pw(0x10, 1), 1, 5);
        let touched = set.touch(m.slot, 9);
        assert_eq!(touched.last_access, 9);
        assert_eq!(touched.hits, 1);
        assert_eq!(touched.inserted_at, 5);
    }

    #[test]
    fn remove_start_returns_meta() {
        let mut set = PwSet::new(4);
        set.insert(pw(0x10, 10), 2, 0);
        let removed = set.remove_start(Addr::new(0x10)).unwrap();
        assert_eq!(removed.entries, 2);
        assert_eq!(set.used_entries(), 0);
        assert!(set.remove_start(Addr::new(0x10)).is_none());
    }

    #[test]
    fn resident_metas_in_slot_order() {
        let mut set = PwSet::new(8);
        set.insert(pw(0x10, 1), 1, 0);
        set.insert(pw(0x20, 1), 1, 0);
        set.insert(pw(0x30, 1), 1, 0);
        set.remove_start(Addr::new(0x20));
        let metas = set.resident_metas();
        assert_eq!(metas.len(), 2);
        assert!(metas[0].slot < metas[1].slot);
    }

    #[test]
    fn fill_residents_matches_resident_metas_without_growing() {
        let mut set = PwSet::new(8);
        set.insert(pw(0x10, 1), 1, 0);
        set.insert(pw(0x20, 20), 3, 0);
        set.insert(pw(0x30, 1), 1, 0);
        set.remove_start(Addr::new(0x20));
        let mut buf = Vec::with_capacity(8);
        buf.push(DEAD); // stale contents must be cleared by the refill
        set.fill_residents(&mut buf);
        assert_eq!(buf, set.resident_metas());
        assert_eq!(buf.capacity(), 8, "refill must not grow the buffer");
    }

    #[test]
    fn sixty_four_ways_round_trip() {
        let mut set = PwSet::new(64);
        for i in 0..64u64 {
            set.insert(pw(0x1000 + i * 64, 1), 1, i);
        }
        assert_eq!(set.free_entries(), 0);
        assert_eq!(set.resident_count(), 64);
        let m = set.remove_start(Addr::new(0x1000 + 63 * 64)).unwrap();
        assert_eq!(m.slot, 63);
        assert_eq!(set.insert(pw(0x9000, 1), 1, 99).slot, 63);
    }
}
