//! One micro-op cache set: a pool of entry slots shared by whole prediction
//! windows.

use crate::meta::PwMeta;
use uopcache_model::{Addr, PwDesc};

/// A single set of the micro-op cache.
///
/// The set owns `ways` entry slots. Each resident PW occupies `entries`
/// (1..=ways) of them and is tracked as a unit: all of its entries are
/// allocated and reclaimed together, mirroring the hardware organisation in
/// which a multi-entry PW's entries live in one set and are fetched/evicted
/// as a whole (§II-C).
#[derive(Clone, Debug)]
pub struct PwSet {
    ways: u8,
    /// Residents indexed by stable slot id; `None` slots are free ids.
    residents: Vec<Option<PwMeta>>,
    /// Entry slots currently in use.
    used_entries: u8,
}

impl PwSet {
    /// Creates an empty set with `ways` entry slots.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or greater than 64.
    pub fn new(ways: u32) -> Self {
        assert!((1..=64).contains(&ways), "ways must be in 1..=64");
        let ways = u8::try_from(ways).expect("ways checked to be in 1..=64");
        PwSet {
            ways,
            residents: Vec::new(),
            used_entries: 0,
        }
    }

    /// Entry slots in use.
    pub fn used_entries(&self) -> u32 {
        u32::from(self.used_entries)
    }

    /// Entry slots free.
    pub fn free_entries(&self) -> u32 {
        u32::from(self.ways - self.used_entries)
    }

    /// Number of resident PWs.
    pub fn resident_count(&self) -> usize {
        self.residents.iter().flatten().count()
    }

    /// The resident PWs, ordered by slot.
    pub fn residents(&self) -> impl Iterator<Item = &PwMeta> {
        self.residents.iter().flatten()
    }

    /// Collects the residents into a vector (slot order) — the slice handed
    /// to replacement policies.
    pub fn resident_metas(&self) -> Vec<PwMeta> {
        self.residents.iter().flatten().copied().collect()
    }

    /// Finds the resident PW starting at `start`, if any. At most one PW per
    /// start address is resident (the cache keeps the larger of two
    /// overlapping windows).
    pub fn find(&self, start: Addr) -> Option<&PwMeta> {
        self.residents
            .iter()
            .flatten()
            .find(|m| m.desc.start == start)
    }

    /// Mutable variant of [`PwSet::find`].
    pub fn find_mut(&mut self, start: Addr) -> Option<&mut PwMeta> {
        self.residents
            .iter_mut()
            .flatten()
            .find(|m| m.desc.start == start)
    }

    /// Inserts a PW occupying `entries` slots, returning its metadata.
    ///
    /// # Panics
    ///
    /// Panics if there is not enough free space (the caller must evict first)
    /// or if a PW with the same start address is already resident.
    pub fn insert(&mut self, desc: PwDesc, entries: u32, now: u64) -> PwMeta {
        assert!(
            entries >= 1 && entries <= u32::from(self.ways),
            "PW entries out of range"
        );
        assert!(
            entries <= self.free_entries(),
            "set overflow: inserting {entries} entries with {} free",
            self.free_entries()
        );
        assert!(
            self.find(desc.start).is_none(),
            "duplicate start address in set"
        );
        let slot = match self.residents.iter().position(Option::is_none) {
            Some(i) => i,
            None => {
                self.residents.push(None);
                self.residents.len() - 1
            }
        };
        let meta = PwMeta {
            desc,
            slot: u8::try_from(slot).expect("at most `ways` slots ever allocated"),
            entries: u8::try_from(entries).expect("entries checked against ways <= 64"),
            inserted_at: now,
            last_access: now,
            hits: 0,
        };
        self.residents[slot] = Some(meta);
        self.used_entries += u8::try_from(entries).expect("entries checked against ways <= 64");
        meta
    }

    /// Removes the resident PW at `slot`, returning its metadata.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or out of range.
    pub fn remove_slot(&mut self, slot: u8) -> PwMeta {
        let meta = self.residents[usize::from(slot)]
            .take()
            .expect("slot occupied");
        self.used_entries -= meta.entries;
        meta
    }

    /// Removes the resident PW starting at `start`, if present.
    pub fn remove_start(&mut self, start: Addr) -> Option<PwMeta> {
        let slot = self.find(start)?.slot;
        Some(self.remove_slot(slot))
    }

    /// Records a hit on the PW at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn touch(&mut self, slot: u8, now: u64) -> PwMeta {
        let meta = self.residents[usize::from(slot)]
            .as_mut()
            .expect("slot occupied");
        meta.last_access = now;
        meta.hits += 1;
        *meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn pw(start: u64, uops: u32) -> PwDesc {
        PwDesc::new(Addr::new(start), uops, uops * 3, PwTermination::TakenBranch)
    }

    #[test]
    fn insert_and_find() {
        let mut set = PwSet::new(8);
        set.insert(pw(0x10, 4), 1, 0);
        set.insert(pw(0x20, 20), 3, 1);
        assert_eq!(set.used_entries(), 4);
        assert_eq!(set.free_entries(), 4);
        assert_eq!(set.resident_count(), 2);
        assert_eq!(set.find(Addr::new(0x20)).unwrap().entries, 3);
        assert!(set.find(Addr::new(0x30)).is_none());
    }

    #[test]
    fn slots_are_recycled() {
        let mut set = PwSet::new(4);
        let a = set.insert(pw(0x10, 4), 1, 0);
        set.insert(pw(0x20, 4), 1, 0);
        set.remove_slot(a.slot);
        let c = set.insert(pw(0x30, 4), 1, 0);
        assert_eq!(c.slot, a.slot, "freed slot should be reused");
    }

    #[test]
    #[should_panic(expected = "set overflow")]
    fn overflow_panics() {
        let mut set = PwSet::new(2);
        set.insert(pw(0x10, 16), 2, 0);
        set.insert(pw(0x20, 1), 1, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate start")]
    fn duplicate_start_panics() {
        let mut set = PwSet::new(4);
        set.insert(pw(0x10, 1), 1, 0);
        set.insert(pw(0x10, 9), 2, 0);
    }

    #[test]
    fn touch_updates_recency_and_hits() {
        let mut set = PwSet::new(4);
        let m = set.insert(pw(0x10, 1), 1, 5);
        let touched = set.touch(m.slot, 9);
        assert_eq!(touched.last_access, 9);
        assert_eq!(touched.hits, 1);
        assert_eq!(touched.inserted_at, 5);
    }

    #[test]
    fn remove_start_returns_meta() {
        let mut set = PwSet::new(4);
        set.insert(pw(0x10, 10), 2, 0);
        let removed = set.remove_start(Addr::new(0x10)).unwrap();
        assert_eq!(removed.entries, 2);
        assert_eq!(set.used_entries(), 0);
        assert!(set.remove_start(Addr::new(0x10)).is_none());
    }

    #[test]
    fn resident_metas_in_slot_order() {
        let mut set = PwSet::new(8);
        set.insert(pw(0x10, 1), 1, 0);
        set.insert(pw(0x20, 1), 1, 0);
        set.insert(pw(0x30, 1), 1, 0);
        set.remove_start(Addr::new(0x20));
        let metas = set.resident_metas();
        assert_eq!(metas.len(), 2);
        assert!(metas[0].slot < metas[1].slot);
    }
}
