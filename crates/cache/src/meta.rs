//! Metadata the cache keeps for each resident prediction window, visible to
//! replacement policies.

use uopcache_model::PwDesc;

/// Per-resident-PW bookkeeping passed to [`PwReplacementPolicy`] callbacks.
///
/// [`PwReplacementPolicy`]: crate::PwReplacementPolicy
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PwMeta {
    /// The stored window.
    pub desc: PwDesc,
    /// Stable slot index within the set while the PW is resident (policies
    /// may key internal state by `(set, slot)`).
    pub slot: u8,
    /// Number of micro-op cache entries the PW occupies.
    pub entries: u8,
    /// Global access-counter value at insertion.
    pub inserted_at: u64,
    /// Global access-counter value of the most recent hit (or insertion).
    pub last_access: u64,
    /// Hits the PW has received since insertion.
    pub hits: u32,
}

impl PwMeta {
    /// The PW's cost: micro-ops supplied on a hit.
    pub fn cost(&self) -> u32 {
        self.desc.uops
    }
}
