//! The least-recently-used baseline policy.

use crate::meta::PwMeta;
use crate::policy::PwReplacementPolicy;
use uopcache_model::PwDesc;

/// Least-recently-used replacement: evicts the resident PW with the oldest
/// `last_access`. The paper's baseline policy.
///
/// # Examples
///
/// ```
/// use uopcache_cache::{LruPolicy, UopCache};
/// use uopcache_model::UopCacheConfig;
///
/// let cache = UopCache::new(UopCacheConfig::zen3(), Box::new(LruPolicy::new()));
/// assert_eq!(cache.policy_name(), "LRU");
/// ```
#[derive(Clone, Debug, Default)]
pub struct LruPolicy {
    _private: (),
}

impl LruPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        LruPolicy { _private: () }
    }
}

impl PwReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_hit(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_insert(&mut self, _set: usize, _meta: &PwMeta) {}

    fn on_evict(&mut self, _set: usize, _meta: &PwMeta) {}

    fn choose_victim(&mut self, _set: usize, _incoming: &PwDesc, resident: &[PwMeta]) -> usize {
        resident
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.last_access)
            .map(|(i, _)| i)
            .expect("resident slice is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::{Addr, PwTermination};

    fn meta(start: u64, last_access: u64, slot: u8) -> PwMeta {
        PwMeta {
            desc: PwDesc::new(Addr::new(start), 4, 12, PwTermination::TakenBranch),
            slot,
            entries: 1,
            inserted_at: 0,
            last_access,
            hits: 0,
        }
    }

    #[test]
    fn picks_oldest() {
        let mut p = LruPolicy::new();
        let resident = [meta(0x10, 9, 0), meta(0x20, 3, 1), meta(0x30, 7, 2)];
        let incoming = PwDesc::new(Addr::new(0x40), 4, 12, PwTermination::TakenBranch);
        assert_eq!(p.choose_victim(0, &incoming, &resident), 1);
    }

    #[test]
    fn ties_break_by_position() {
        let mut p = LruPolicy::new();
        let resident = [meta(0x10, 5, 0), meta(0x20, 5, 1)];
        let incoming = PwDesc::new(Addr::new(0x40), 4, 12, PwTermination::TakenBranch);
        assert_eq!(p.choose_victim(0, &incoming, &resident), 0);
    }
}
