//! Fully-associative LRU shadow cache used for miss classification.

use std::collections::BTreeMap;
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, PwDesc};

/// A fully-associative LRU cache of prediction windows with a capacity
/// measured in micro-op cache *entries*.
///
/// Used as the reference for splitting misses into capacity vs. conflict: a
/// miss that would have hit in a fully-associative cache of equal capacity is
/// a conflict miss.
///
/// # Examples
///
/// ```
/// use uopcache_cache::ShadowFaCache;
/// use uopcache_model::{Addr, PwDesc, PwTermination};
///
/// let mut shadow = ShadowFaCache::new(4, 8);
/// let pw = PwDesc::new(Addr::new(0x10), 6, 18, PwTermination::TakenBranch);
/// assert!(!shadow.access(&pw));
/// assert!(shadow.access(&pw));
/// ```
#[derive(Clone, Debug)]
pub struct ShadowFaCache {
    capacity_entries: u32,
    uops_per_entry: u32,
    used_entries: u32,
    /// start -> (entries, uops, last_use)
    resident: FastHashMap<Addr, (u32, u32, u64)>,
    /// last_use -> start, for O(log n) LRU selection.
    order: BTreeMap<u64, Addr>,
    now: u64,
}

impl ShadowFaCache {
    /// Creates a shadow cache with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(capacity_entries: u32, uops_per_entry: u32) -> Self {
        assert!(
            capacity_entries > 0 && uops_per_entry > 0,
            "capacity must be positive"
        );
        ShadowFaCache {
            capacity_entries,
            uops_per_entry,
            used_entries: 0,
            resident: FastHashMap::default(),
            order: BTreeMap::new(),
            now: 0,
        }
    }

    /// Accesses `pw`: returns `true` on a hit (a resident window with the
    /// same start covering at least as many micro-ops), then inserts/updates
    /// it, evicting LRU windows as needed.
    pub fn access(&mut self, pw: &PwDesc) -> bool {
        self.now += 1;
        let entries = pw
            .uops
            .div_ceil(self.uops_per_entry)
            .min(self.capacity_entries);
        let hit = match self.resident.get(&pw.start) {
            Some(&(old_entries, old_uops, old_use)) => {
                self.order.remove(&old_use);
                let keep_uops = old_uops.max(pw.uops);
                let keep_entries = old_entries.max(entries);
                self.used_entries = self.used_entries - old_entries + keep_entries;
                self.resident
                    .insert(pw.start, (keep_entries, keep_uops, self.now));
                self.order.insert(self.now, pw.start);
                old_uops >= pw.uops
            }
            None => {
                self.used_entries += entries;
                self.resident.insert(pw.start, (entries, pw.uops, self.now));
                self.order.insert(self.now, pw.start);
                false
            }
        };
        while self.used_entries > self.capacity_entries {
            let (&lru_use, &lru_start) = self.order.iter().next().expect("resident not empty");
            // Never evict the window we just touched, even if over capacity.
            if lru_start == pw.start {
                break;
            }
            self.order.remove(&lru_use);
            let (e, _, _) = self.resident.remove(&lru_start).expect("consistent maps");
            self.used_entries -= e;
        }
        hit
    }

    /// Whether a window starting at `start` is resident.
    pub fn contains(&self, start: Addr) -> bool {
        self.resident.contains_key(&start)
    }

    /// Whether a resident window fully covers `pw` (same start, at least as
    /// many micro-ops) — i.e. the lookup would fully hit here.
    pub fn covers(&self, pw: &PwDesc) -> bool {
        self.resident
            .get(&pw.start)
            .is_some_and(|&(_, uops, _)| uops >= pw.uops)
    }

    /// Entries currently used.
    pub fn used_entries(&self) -> u32 {
        self.used_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn pw(start: u64, uops: u32) -> PwDesc {
        PwDesc::new(Addr::new(start), uops, uops * 3, PwTermination::TakenBranch)
    }

    #[test]
    fn evicts_lru_when_full() {
        let mut s = ShadowFaCache::new(2, 8);
        assert!(!s.access(&pw(0x10, 8)));
        assert!(!s.access(&pw(0x20, 8)));
        assert!(s.access(&pw(0x10, 8))); // refresh 0x10; 0x20 is LRU
        assert!(!s.access(&pw(0x30, 8))); // evicts 0x20
        assert!(!s.contains(Addr::new(0x20)));
        assert!(s.contains(Addr::new(0x10)));
    }

    #[test]
    fn shorter_lookup_hits_longer_resident() {
        let mut s = ShadowFaCache::new(4, 8);
        s.access(&pw(0x10, 16));
        assert!(s.access(&pw(0x10, 4)));
    }

    #[test]
    fn longer_lookup_misses_shorter_resident_but_upgrades() {
        let mut s = ShadowFaCache::new(4, 8);
        s.access(&pw(0x10, 4));
        assert!(!s.access(&pw(0x10, 16)));
        assert!(s.access(&pw(0x10, 16)));
    }

    #[test]
    fn oversized_window_does_not_wedge() {
        let mut s = ShadowFaCache::new(2, 8);
        // 5 entries clamped to capacity; must not underflow or loop forever.
        assert!(!s.access(&pw(0x10, 40)));
        assert!(s.access(&pw(0x10, 40)));
        assert!(s.used_entries() <= 2);
    }

    #[test]
    fn capacity_respected_across_many_inserts() {
        let mut s = ShadowFaCache::new(8, 8);
        for i in 0..100u64 {
            s.access(&pw(i * 64, u32::try_from((i % 3 + 1) * 8).expect("small")));
            assert!(
                s.used_entries() <= 8 + 3,
                "transient overshoot only for current pw"
            );
        }
    }
}
