//! Cold / capacity / conflict miss classification (the paper's §III-B study).

use crate::shadow::ShadowFaCache;
use uopcache_model::hash::FastHashSet;
use uopcache_model::{Addr, PwDesc};

/// The classic 3C class of a miss.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum MissClass {
    /// First touch of this start address.
    Cold,
    /// Would also miss in a fully-associative cache of equal capacity.
    Capacity,
    /// Would hit in a fully-associative cache of equal capacity — the miss is
    /// due to set conflicts.
    Conflict,
}

impl std::fmt::Display for MissClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MissClass::Cold => f.write_str("cold"),
            MissClass::Capacity => f.write_str("capacity"),
            MissClass::Conflict => f.write_str("conflict"),
        }
    }
}

/// Classifies micro-op cache misses by maintaining a fully-associative LRU
/// shadow cache of the same entry capacity plus a first-touch set.
///
/// Call [`MissClassifier::classify`] *before* recording the access in the
/// shadow via [`MissClassifier::record_access`], for every lookup (hit or
/// miss) so the shadow tracks the reference stream faithfully.
#[derive(Clone, Debug)]
pub struct MissClassifier {
    shadow: ShadowFaCache,
    touched: FastHashSet<Addr>,
}

impl MissClassifier {
    /// Creates a classifier for a cache with the given total entry capacity.
    pub fn new(capacity_entries: u32, uops_per_entry: u32) -> Self {
        MissClassifier {
            shadow: ShadowFaCache::new(capacity_entries, uops_per_entry),
            touched: FastHashSet::default(),
        }
    }

    /// Classifies a miss on `pw` (do not call for hits).
    pub fn classify(&self, pw: &PwDesc) -> MissClass {
        if !self.touched.contains(&pw.start) {
            MissClass::Cold
        } else if self.shadow.covers(pw) {
            // A fully-associative cache of equal capacity would have served
            // the whole window: the miss is due to set conflicts.
            MissClass::Conflict
        } else {
            MissClass::Capacity
        }
    }

    /// Records the access in the shadow structures (call for every lookup).
    pub fn record_access(&mut self, pw: &PwDesc) {
        self.touched.insert(pw.start);
        self.shadow.access(pw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::PwTermination;

    fn pw(start: u64, uops: u32) -> PwDesc {
        PwDesc::new(Addr::new(start), uops, uops * 3, PwTermination::TakenBranch)
    }

    #[test]
    fn first_touch_is_cold() {
        let c = MissClassifier::new(4, 8);
        assert_eq!(c.classify(&pw(0x10, 4)), MissClass::Cold);
    }

    #[test]
    fn resident_in_shadow_means_conflict() {
        let mut c = MissClassifier::new(4, 8);
        c.record_access(&pw(0x10, 4));
        assert_eq!(c.classify(&pw(0x10, 4)), MissClass::Conflict);
    }

    #[test]
    fn evicted_from_shadow_means_capacity() {
        let mut c = MissClassifier::new(1, 8);
        c.record_access(&pw(0x10, 4));
        c.record_access(&pw(0x20, 4)); // evicts 0x10 from the 1-entry shadow
        assert_eq!(c.classify(&pw(0x10, 4)), MissClass::Capacity);
    }

    #[test]
    fn display_names() {
        assert_eq!(MissClass::Cold.to_string(), "cold");
        assert_eq!(MissClass::Capacity.to_string(), "capacity");
        assert_eq!(MissClass::Conflict.to_string(), "conflict");
    }
}
