//! The micro-op cache storage structure.

use crate::classify::{MissClass, MissClassifier};
use crate::meta::PwMeta;
use crate::policy::PwReplacementPolicy;
use crate::pwset::PwSet;
use uopcache_model::{Addr, LineAddr, PwDesc, UopCacheConfig, UopCacheStats};
#[cfg(feature = "obs")]
use uopcache_obs::{Event, EventKind, Recorder, Verdict};

/// Outcome of a micro-op cache lookup, at micro-op granularity.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum LookupResult {
    /// All requested micro-ops were served from the cache (the stored PW
    /// covers the request, possibly via an intermediate exit point).
    Hit {
        /// Micro-ops served.
        uops: u32,
    },
    /// A shorter PW with the same start address served the front of the
    /// request; the remainder must come from the legacy decode path, which
    /// will then form and insert the larger window (§II-D).
    PartialHit {
        /// Micro-ops served from the cache.
        hit_uops: u32,
        /// Micro-ops that missed.
        miss_uops: u32,
    },
    /// Nothing with this start address is resident.
    Miss,
}

impl LookupResult {
    /// Micro-ops served from the cache.
    pub fn hit_uops(&self) -> u32 {
        match *self {
            LookupResult::Hit { uops } => uops,
            LookupResult::PartialHit { hit_uops, .. } => hit_uops,
            LookupResult::Miss => 0,
        }
    }

    /// Micro-ops that must come from the legacy decode path.
    pub fn miss_uops(&self, requested: u32) -> u32 {
        requested - self.hit_uops()
    }

    /// Whether the lookup fully hit.
    pub fn is_full_hit(&self) -> bool {
        matches!(self, LookupResult::Hit { .. })
    }
}

/// Outcome of a micro-op cache insertion attempt.
///
/// Kept `Copy` so the hot insertion path allocates nothing; the descriptors
/// of the windows an insertion displaced are readable until the next
/// insertion via [`UopCache::last_evicted`].
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum InsertOutcome {
    /// The PW was written into the cache.
    Inserted {
        /// Number of whole PWs evicted by the replacement policy to make
        /// room (their descriptors are in [`UopCache::last_evicted`]).
        evicted: u32,
    },
    /// The policy chose to bypass the insertion.
    Bypassed,
    /// A window with the same start address and at least this many micro-ops
    /// was already resident — nothing to do (its recency is refreshed by the
    /// lookup path, not by insertion).
    AlreadyPresent,
    /// The PW needs more entries than the configuration allows a single PW to
    /// occupy (`max_entries_per_pw`) — it streams from the decoder instead.
    TooLarge,
}

/// The micro-op cache: `sets × ways` entries, each holding up to
/// `uops_per_entry` micro-ops, managed at PW granularity by a pluggable
/// replacement policy.
///
/// This structure models *placement* semantics only (who is resident, partial
/// hits, inclusion). Timing — the asynchronous insertion delay, the switch
/// penalty — is layered on by `uopcache-sim`.
///
/// # Examples
///
/// ```
/// use uopcache_cache::{LookupResult, LruPolicy, UopCache};
/// use uopcache_model::{Addr, PwDesc, PwTermination, UopCacheConfig};
///
/// let mut c = UopCache::new(UopCacheConfig::zen3(), Box::new(LruPolicy::new()));
/// // A long window serves a shorter overlapping one (partial-hit coverage).
/// let long = PwDesc::new(Addr::new(0x40), 10, 30, PwTermination::TakenBranch);
/// let short = PwDesc::new(Addr::new(0x40), 4, 12, PwTermination::TakenBranch);
/// c.insert(&long);
/// assert_eq!(c.lookup(&short), LookupResult::Hit { uops: 4 });
/// ```
pub struct UopCache {
    cfg: UopCacheConfig,
    line_bytes: u64,
    sets: Vec<PwSet>,
    policy: Box<dyn PwReplacementPolicy>,
    stats: UopCacheStats,
    classifier: Option<MissClassifier>,
    /// Global access counter (advances on every lookup).
    now: u64,
    /// `log2(line_bytes)` — set indexing is a shift, not a division.
    set_shift: u32,
    /// `sets - 1` when the set count is a power of two (the common
    /// geometries); `None` falls back to a modulo.
    set_mask: Option<u64>,
    /// Scratch buffer for the slot-ordered resident slice handed to the
    /// policy (capacity `ways`, reused across insertions — never grows).
    resident_scratch: Vec<PwMeta>,
    /// Descriptors evicted by the most recent insertion (capacity `ways`,
    /// reused across insertions — never grows).
    evicted_scratch: Vec<PwDesc>,
    /// Optional event sink (`None` — the default — skips all emission work).
    #[cfg(feature = "obs")]
    recorder: Option<Box<dyn Recorder>>,
    /// Externally supplied event timestamp (the frontend's cycle counter);
    /// falls back to the access counter when the cache is driven standalone.
    #[cfg(feature = "obs")]
    obs_cycle: Option<u64>,
}

impl UopCache {
    /// Creates a micro-op cache with the given geometry and replacement
    /// policy. Uses 64-byte i-cache lines for set indexing.
    pub fn new(cfg: UopCacheConfig, policy: Box<dyn PwReplacementPolicy>) -> Self {
        Self::with_line_bytes(cfg, policy, 64)
    }

    /// As [`UopCache::new`] with an explicit i-cache line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`UopCacheConfig::sets`]) or `line_bytes` is not a power of two.
    pub fn with_line_bytes(
        cfg: UopCacheConfig,
        mut policy: Box<dyn PwReplacementPolicy>,
        line_bytes: u64,
    ) -> Self {
        let set_count = cfg.sets();
        let sets = (0..set_count).map(|_| PwSet::new(cfg.ways)).collect();
        policy.prepare(set_count as usize, cfg.ways);
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        UopCache {
            cfg,
            line_bytes,
            sets,
            policy,
            stats: UopCacheStats::default(),
            classifier: None,
            now: 0,
            set_shift: line_bytes.trailing_zeros(),
            set_mask: u64::from(set_count)
                .is_power_of_two()
                .then(|| u64::from(set_count) - 1),
            resident_scratch: Vec::with_capacity(cfg.ways as usize),
            evicted_scratch: Vec::with_capacity(cfg.ways as usize),
            #[cfg(feature = "obs")]
            recorder: None,
            #[cfg(feature = "obs")]
            obs_cycle: None,
        }
    }

    /// Installs an event sink; every subsequent lookup/insert/evict/bypass/
    /// invalidate emits one [`Event`] into it.
    #[cfg(feature = "obs")]
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
    }

    /// The installed event sink, if any.
    #[cfg(feature = "obs")]
    pub fn recorder(&self) -> Option<&dyn Recorder> {
        self.recorder.as_deref()
    }

    /// Removes and returns the installed event sink.
    #[cfg(feature = "obs")]
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.recorder.take()
    }

    /// Sets the timestamp stamped onto subsequent events (the frontend
    /// forwards its cycle counter here once per access). Without it, events
    /// carry the cache's own access counter.
    #[cfg(feature = "obs")]
    pub fn set_cycle(&mut self, cycle: u64) {
        self.obs_cycle = Some(cycle);
    }

    /// Builds and emits one event, if a recorder is installed.
    #[cfg(feature = "obs")]
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        kind: EventKind,
        set_idx: usize,
        slot: Option<u8>,
        start: Addr,
        uops: u32,
        entries: u32,
        verdict: Verdict,
    ) {
        if let Some(rec) = &mut self.recorder {
            rec.record(&Event {
                cycle: self.obs_cycle.unwrap_or(self.now),
                kind,
                set: u32::try_from(set_idx).expect("set index fits in u32"),
                slot,
                start: start.get(),
                uops,
                entries,
                verdict,
            });
        }
    }

    /// Enables cold/capacity/conflict miss classification (adds a
    /// fully-associative LRU shadow of equal entry capacity).
    pub fn enable_classification(&mut self) {
        self.classifier = Some(MissClassifier::new(
            self.cfg.entries,
            self.cfg.uops_per_entry,
        ));
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &UopCacheConfig {
        &self.cfg
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The installed replacement policy (for post-run introspection —
    /// diagnostics surfaces read [`PwReplacementPolicy::introspect`] through
    /// this).
    pub fn policy(&self) -> &dyn PwReplacementPolicy {
        self.policy.as_ref()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &UopCacheStats {
        &self.stats
    }

    /// Total entries currently occupied.
    pub fn occupied_entries(&self) -> u32 {
        self.sets.iter().map(PwSet::used_entries).sum()
    }

    /// Whether a window starting at `start` is resident, and with how many
    /// micro-ops.
    pub fn resident_uops(&self, start: Addr) -> Option<u32> {
        let set = self.set_index(start);
        self.sets[set].find(start).map(|m| m.desc.uops)
    }

    /// Looks up a prediction window and updates statistics and policy
    /// recency state.
    // audit:hot-path — per-access entry point; must stay allocation-free warmed
    pub fn lookup(&mut self, pw: &PwDesc) -> LookupResult {
        self.now += 1;
        self.stats.lookups += 1;
        self.stats.uops_requested += u64::from(pw.uops);
        self.policy.on_lookup(pw);
        let set_idx = self.set_index(pw.start);
        let found = self.sets[set_idx]
            .find(pw.start)
            .map(|m| (m.slot, m.desc.uops));
        let result = match found {
            Some((slot, stored_uops)) => {
                let meta = self.sets[set_idx].touch(slot, self.now);
                self.policy.on_hit(set_idx, &meta);
                if stored_uops >= pw.uops {
                    LookupResult::Hit { uops: pw.uops }
                } else {
                    LookupResult::PartialHit {
                        hit_uops: stored_uops,
                        miss_uops: pw.uops - stored_uops,
                    }
                }
            }
            None => LookupResult::Miss,
        };
        match result {
            LookupResult::Hit { uops } => {
                self.stats.pw_hits += 1;
                self.stats.uops_hit += u64::from(uops);
            }
            LookupResult::PartialHit {
                hit_uops,
                miss_uops,
            } => {
                self.stats.pw_partial_hits += 1;
                self.stats.uops_hit += u64::from(hit_uops);
                self.stats.uops_missed += u64::from(miss_uops);
            }
            LookupResult::Miss => {
                self.stats.pw_misses += 1;
                self.stats.uops_missed += u64::from(pw.uops);
            }
        }
        #[cfg(feature = "obs")]
        {
            let kind = match result {
                LookupResult::Hit { .. } => EventKind::Hit,
                LookupResult::PartialHit { .. } => EventKind::PartialHit,
                LookupResult::Miss => EventKind::Miss,
            };
            self.emit(
                kind,
                set_idx,
                found.map(|(slot, _)| slot),
                pw.start,
                pw.uops,
                pw.entries(self.cfg.uops_per_entry),
                Verdict::None,
            );
        }
        if let Some(cls) = &mut self.classifier {
            let missed = result.miss_uops(pw.uops);
            if missed > 0 {
                match cls.classify(pw) {
                    MissClass::Cold => self.stats.cold_miss_uops += u64::from(missed),
                    MissClass::Capacity => self.stats.capacity_miss_uops += u64::from(missed),
                    MissClass::Conflict => self.stats.conflict_miss_uops += u64::from(missed),
                }
            }
            cls.record_access(pw);
        }
        result
    }

    /// Inserts a decoded prediction window, consulting the replacement policy
    /// for bypass and victim decisions.
    ///
    /// If a *shorter* window with the same start address is resident, it is
    /// upgraded in place to the larger window (the paper keeps the larger
    /// window, §IV). If an equal-or-longer window is resident the insertion
    /// is a no-op.
    // audit:hot-path — per-miss fill path; must stay allocation-free warmed
    pub fn insert(&mut self, pw: &PwDesc) -> InsertOutcome {
        self.evicted_scratch.clear();
        let entries = pw.entries(self.cfg.uops_per_entry);
        let set_idx = self.set_index(pw.start);
        if entries > self.cfg.max_entries_per_pw || entries > self.cfg.ways {
            self.stats.bypasses += 1;
            #[cfg(feature = "obs")]
            self.emit(
                EventKind::Bypass,
                set_idx,
                None,
                pw.start,
                pw.uops,
                entries,
                Verdict::TooLarge,
            );
            return InsertOutcome::TooLarge;
        }

        // Overlapping-window upgrade path.
        if let Some(existing) = self.sets[set_idx].find(pw.start).copied() {
            if existing.desc.uops >= pw.uops {
                return InsertOutcome::AlreadyPresent;
            }
            // Upgrade: remove the shorter window, then fall through to a
            // regular insertion of the larger one (which may need to evict).
            let old = self.sets[set_idx].remove_slot(existing.slot);
            self.policy.on_evict(set_idx, &old);
            #[cfg(feature = "obs")]
            self.emit(
                EventKind::Evict,
                set_idx,
                Some(old.slot),
                old.desc.start,
                old.desc.uops,
                u32::from(old.entries),
                Verdict::Upgrade,
            );
        }

        self.sets[set_idx].fill_residents(&mut self.resident_scratch);
        let free = self.sets[set_idx].free_entries();
        if self
            .policy
            .should_bypass(set_idx, pw, entries, free, &self.resident_scratch)
        {
            self.stats.bypasses += 1;
            #[cfg(feature = "obs")]
            self.emit(
                EventKind::Bypass,
                set_idx,
                None,
                pw.start,
                pw.uops,
                entries,
                Verdict::PolicyBypass,
            );
            return InsertOutcome::Bypassed;
        }

        while self.sets[set_idx].free_entries() < entries {
            self.sets[set_idx].fill_residents(&mut self.resident_scratch);
            debug_assert!(
                !self.resident_scratch.is_empty(),
                "no residents but set is full"
            );
            let victim_idx = self
                .policy
                .choose_victim(set_idx, pw, &self.resident_scratch);
            let fallback = self.policy.last_selection_was_fallback();
            if fallback {
                self.stats.fallback_victim_selections += 1;
            } else {
                self.stats.primary_victim_selections += 1;
            }
            let victim = self.resident_scratch[victim_idx];
            let removed = self.sets[set_idx].remove_slot(victim.slot);
            self.policy.on_evict(set_idx, &removed);
            self.stats.evicted_pws += 1;
            self.stats.evicted_entries += u64::from(removed.entries);
            #[cfg(feature = "obs")]
            self.emit(
                EventKind::Evict,
                set_idx,
                Some(removed.slot),
                removed.desc.start,
                removed.desc.uops,
                u32::from(removed.entries),
                if fallback {
                    Verdict::Fallback
                } else {
                    Verdict::Primary
                },
            );
            self.evicted_scratch.push(removed.desc); // audit:allow(hot-path-alloc) — scratch is cleared, never shrunk: warmed capacity absorbs every push
        }
        let meta = self.sets[set_idx].insert(*pw, entries, self.now);
        self.policy.on_insert(set_idx, &meta);
        self.stats.insertions += 1;
        self.stats.entries_written += u64::from(entries);
        #[cfg(feature = "obs")]
        self.emit(
            EventKind::Insert,
            set_idx,
            Some(meta.slot),
            pw.start,
            pw.uops,
            entries,
            Verdict::None,
        );
        #[allow(clippy::cast_possible_truncation)]
        InsertOutcome::Inserted {
            evicted: self.evicted_scratch.len() as u32,
        }
    }

    /// Descriptors of the PWs displaced by the most recent [`insert`]
    /// call (replacement evictions only — upgrades and invalidations are
    /// not listed; an insertion that evicted nothing leaves this empty).
    ///
    /// [`insert`]: UopCache::insert
    pub fn last_evicted(&self) -> &[PwDesc] {
        &self.evicted_scratch
    }

    /// Invalidates every resident PW that touches the given i-cache line
    /// (called on L1i evictions when the micro-op cache is inclusive).
    /// Returns the number of PWs invalidated.
    pub fn invalidate_line(&mut self, line: LineAddr) -> u32 {
        let mut invalidated = 0;
        for set_idx in 0..self.sets.len() {
            // At most `ways` (≤ 64) victims per set: a stack buffer keeps
            // the inclusion path allocation-free.
            let mut victims = [0u8; 64];
            let mut n = 0;
            for m in self.sets[set_idx]
                .residents()
                .filter(|m| m.desc.lines(self.line_bytes).any(|l| l == line))
            {
                victims[n] = m.slot;
                n += 1;
            }
            for &slot in &victims[..n] {
                let removed = self.sets[set_idx].remove_slot(slot);
                self.policy.on_invalidate(set_idx, &removed);
                self.stats.inclusion_invalidations += 1;
                invalidated += 1;
                #[cfg(feature = "obs")]
                self.emit(
                    EventKind::Invalidate,
                    set_idx,
                    Some(removed.slot),
                    removed.desc.start,
                    removed.desc.uops,
                    u32::from(removed.entries),
                    Verdict::None,
                );
            }
        }
        invalidated
    }

    /// Removes a specific resident window (used by offline decision replay
    /// for late/lazy evictions). Returns `true` if it was resident.
    pub fn evict_start(&mut self, start: Addr) -> bool {
        let set_idx = self.set_index(start);
        match self.sets[set_idx].remove_start(start) {
            Some(meta) => {
                self.policy.on_evict(set_idx, &meta);
                self.stats.evicted_pws += 1;
                self.stats.evicted_entries += u64::from(meta.entries);
                #[cfg(feature = "obs")]
                self.emit(
                    EventKind::Evict,
                    set_idx,
                    Some(meta.slot),
                    meta.desc.start,
                    meta.desc.uops,
                    u32::from(meta.entries),
                    Verdict::None,
                );
                true
            }
            None => false,
        }
    }

    /// Free entries in the set that `start` maps to.
    pub fn free_entries_for(&self, start: Addr) -> u32 {
        self.sets[self.set_index(start)].free_entries()
    }

    /// Set index for `start`, via the shift/mask precomputed at
    /// construction (the per-lookup division in
    /// [`UopCacheConfig::set_index_for`] is measurable on the hot path).
    /// Produces identical indices to that method.
    #[inline]
    fn set_index(&self, start: Addr) -> usize {
        let line = start.get() >> self.set_shift;
        #[allow(clippy::cast_possible_truncation)]
        match self.set_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % u64::from(self.cfg.sets())) as usize,
        }
    }
}

impl std::fmt::Debug for UopCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UopCache")
            .field("cfg", &self.cfg)
            .field("policy", &self.policy.name())
            .field("occupied_entries", &self.occupied_entries())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruPolicy;
    use uopcache_model::PwTermination;

    fn pw(start: u64, uops: u32) -> PwDesc {
        PwDesc::new(
            Addr::new(start),
            uops,
            (uops * 3).max(1),
            PwTermination::TakenBranch,
        )
    }

    fn small_cache() -> UopCache {
        // 2 sets x 4 ways = 8 entries, 8 uops/entry, up to 4 entries per PW.
        let cfg = UopCacheConfig {
            entries: 8,
            ways: 4,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 4,
        };
        UopCache::new(cfg, Box::new(LruPolicy::new()))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        let w = pw(0x40, 6);
        assert_eq!(c.lookup(&w), LookupResult::Miss);
        assert!(matches!(c.insert(&w), InsertOutcome::Inserted { .. }));
        assert_eq!(c.lookup(&w), LookupResult::Hit { uops: 6 });
        let s = c.stats();
        assert_eq!(s.pw_misses, 1);
        assert_eq!(s.pw_hits, 1);
        assert_eq!(s.uops_missed, 6);
        assert_eq!(s.uops_hit, 6);
    }

    #[test]
    fn partial_hit_when_stored_window_is_shorter() {
        let mut c = small_cache();
        let short = pw(0x40, 4);
        let long = pw(0x40, 10);
        c.insert(&short);
        assert_eq!(
            c.lookup(&long),
            LookupResult::PartialHit {
                hit_uops: 4,
                miss_uops: 6
            }
        );
        assert_eq!(c.stats().pw_partial_hits, 1);
    }

    #[test]
    fn larger_window_serves_shorter_lookup() {
        let mut c = small_cache();
        c.insert(&pw(0x40, 10));
        assert_eq!(c.lookup(&pw(0x40, 4)), LookupResult::Hit { uops: 4 });
    }

    #[test]
    fn upgrade_keeps_larger_window() {
        let mut c = small_cache();
        c.insert(&pw(0x40, 4));
        assert_eq!(c.resident_uops(Addr::new(0x40)), Some(4));
        assert!(matches!(
            c.insert(&pw(0x40, 12)),
            InsertOutcome::Inserted { .. }
        ));
        assert_eq!(c.resident_uops(Addr::new(0x40)), Some(12));
        // Re-inserting the short window does nothing.
        assert_eq!(c.insert(&pw(0x40, 4)), InsertOutcome::AlreadyPresent);
        assert_eq!(c.resident_uops(Addr::new(0x40)), Some(12));
    }

    #[test]
    fn eviction_frees_enough_entries_for_multi_entry_pw() {
        let mut c = small_cache();
        // Fill one set (addresses in the same set: stride = sets*line = 2*64).
        for i in 0..4 {
            c.insert(&pw(0x40 + i * 128, 8)); // 1 entry each, set 1
        }
        assert_eq!(c.free_entries_for(Addr::new(0x40)), 0);
        // Inserting a 3-entry PW must evict 3 LRU PWs.
        let out = c.insert(&pw(0x40 + 4 * 128, 24));
        match out {
            InsertOutcome::Inserted { evicted } => assert_eq!(evicted, 3),
            other => panic!("expected insertion, got {other:?}"),
        }
        assert_eq!(c.last_evicted().len(), 3);
        // 4 ways: one surviving 1-entry PW + the new 3-entry PW.
        assert_eq!(c.free_entries_for(Addr::new(0x40)), 0);
    }

    #[test]
    fn too_large_pw_is_not_cached() {
        let mut c = small_cache();
        assert_eq!(c.insert(&pw(0x40, 33)), InsertOutcome::TooLarge); // 5 entries > max 4
        assert_eq!(c.stats().bypasses, 1);
    }

    #[test]
    fn invalidate_line_honours_inclusion() {
        let mut c = small_cache();
        let w = pw(0x40, 6); // line 0x40
        c.insert(&w);
        assert_eq!(c.invalidate_line(Addr::new(0x47).line(64)), 1);
        assert_eq!(c.lookup(&w), LookupResult::Miss);
        assert_eq!(c.stats().inclusion_invalidations, 1);
        // Invalidating again is a no-op.
        assert_eq!(c.invalidate_line(Addr::new(0x47).line(64)), 0);
    }

    #[test]
    fn invalidate_hits_multi_line_pws() {
        let mut c = small_cache();
        // Window spanning lines 0x40 and 0x80.
        let w = PwDesc::new(Addr::new(0x70), 6, 0x20, PwTermination::TakenBranch);
        c.insert(&w);
        assert_eq!(c.invalidate_line(Addr::new(0x80).line(64)), 1);
    }

    #[test]
    fn evict_start_supports_offline_replay() {
        let mut c = small_cache();
        c.insert(&pw(0x40, 6));
        assert!(c.evict_start(Addr::new(0x40)));
        assert!(!c.evict_start(Addr::new(0x40)));
    }

    #[test]
    fn classification_splits_cold_capacity_conflict() {
        // 2 sets x 2 ways: tiny cache to force conflicts.
        let cfg = UopCacheConfig {
            entries: 4,
            ways: 2,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 2,
        };
        let mut c = UopCache::new(cfg, Box::new(LruPolicy::new()));
        c.enable_classification();
        // First touches are cold.
        for i in 0..2 {
            let w = pw(0x40 + i * 128, 4);
            c.lookup(&w);
            c.insert(&w);
        }
        assert_eq!(c.stats().cold_miss_uops, 8);
        // Re-access: hits, no new misses.
        for i in 0..2 {
            c.lookup(&pw(0x40 + i * 128, 4));
        }
        assert_eq!(c.stats().uops_missed, 8);
        // Conflict: hammer 3 PWs mapping to one set while the other set is
        // idle — a fully-associative cache of the same size would hold them.
        for round in 0..3 {
            for i in 0..3 {
                let w = pw(0x40 + i * 128, 4);
                c.lookup(&w);
                c.insert(&w);
            }
            let _ = round;
        }
        let s = c.stats();
        assert!(s.conflict_miss_uops > 0, "expected conflict misses: {s:?}");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        let a = pw(0x40, 8);
        let b = pw(0x40 + 128, 8);
        let d = pw(0x40 + 256, 8);
        let e = pw(0x40 + 384, 8);
        for w in [&a, &b, &d, &e] {
            c.lookup(w);
            c.insert(w);
        }
        // Touch `a` so `b` becomes LRU.
        c.lookup(&a);
        let out = c.insert(&pw(0x40 + 512, 8));
        match out {
            InsertOutcome::Inserted { evicted } => assert_eq!(evicted, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.last_evicted(), &[b]);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn recorder_sees_the_full_decision_stream() {
        use uopcache_obs::{EventKind, RingRecorder, Verdict};
        let mut c = small_cache();
        c.set_recorder(Box::new(RingRecorder::new(64)));
        let w = pw(0x40, 6);
        c.lookup(&w); // miss
        c.insert(&w); // insert
        c.lookup(&w); // hit
        c.insert(&pw(0x40, 33)); // too large -> bypass
        c.invalidate_line(Addr::new(0x40).line(64)); // invalidate
        let events = c.recorder().expect("installed").events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Miss,
                EventKind::Insert,
                EventKind::Hit,
                EventKind::Bypass,
                EventKind::Invalidate,
            ]
        );
        assert_eq!(events[3].verdict, Verdict::TooLarge);
        assert_eq!(events[1].slot, events[4].slot, "same resident window");
        let taken = c.take_recorder().expect("still installed");
        assert_eq!(taken.offered(), 5);
        assert!(c.recorder().is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn recorder_tags_upgrade_and_replacement_evictions() {
        use uopcache_obs::{EventKind, RingRecorder, Verdict};
        let mut c = small_cache();
        c.set_recorder(Box::new(RingRecorder::new(64)));
        c.insert(&pw(0x40, 4));
        c.insert(&pw(0x40, 12)); // upgrade: evict(upgrade) + insert
        for i in 1..4 {
            c.insert(&pw(0x40 + i * 128, 8)); // fill the set
        }
        c.insert(&pw(0x40 + 4 * 128, 8)); // forces a replacement eviction
        let events = c.recorder().expect("installed").events();
        let upgrades: Vec<_> = events
            .iter()
            .filter(|e| e.verdict == Verdict::Upgrade)
            .collect();
        assert_eq!(upgrades.len(), 1);
        assert_eq!(upgrades[0].kind, EventKind::Evict);
        assert_eq!(upgrades[0].uops, 4, "the shorter window was upgraded away");
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Evict && e.verdict == Verdict::Primary),
            "LRU victim selection is a primary verdict: {events:?}"
        );
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache();
        for i in 0..100u64 {
            let w = pw(i * 64, u32::try_from(i % 20 + 1).expect("small"));
            c.lookup(&w);
            c.insert(&w);
            assert!(c.occupied_entries() <= 8);
        }
    }
}
