//! # uopcache-sim
//!
//! A trace-driven x86-style CPU frontend simulator centred on the micro-op
//! cache, in the spirit of the paper's customised Scarab setup. It models
//! exactly the structures the paper's numbers depend on (§VII):
//!
//! * the micro-op cache with **partial hits** and **asynchronous insertion**
//!   through the 5-cycle decode pipeline (insertions commit several cycles
//!   after the miss that produced them, so later lookups can miss on windows
//!   that are "in flight" — the asynchrony FLACK's lazy eviction targets);
//! * the L1 instruction cache with **strict inclusion** (an L1i eviction
//!   invalidates the overlapping PWs);
//! * a BTB and branch-misprediction penalties calibrated by the per-app
//!   Table II MPKI (carried on the trace);
//! * the 1-cycle switch penalty between the micro-op cache path and the
//!   legacy decode path, and decode-pipeline refill on each switch;
//! * a backend abstraction that absorbs micro-ops at a configurable IPC
//!   ceiling, so lower miss rates translate only *partially* into IPC — the
//!   effect the paper highlights for its 0.5 %-scale IPC gains.
//!
//! Every structure can be made *perfect* via
//! [`uopcache_model::PerfectStructures`] for the Figure 2 limit study.
//!
//! Frontends are constructed through [`Frontend::builder`]; with the default
//! `obs` feature a `uopcache_obs::Recorder` can be attached there to stream
//! every replacement decision out of the run.
//!
//! # Examples
//!
//! ```
//! use uopcache_cache::LruPolicy;
//! use uopcache_model::FrontendConfig;
//! use uopcache_sim::Frontend;
//! use uopcache_trace::{build_trace, AppId, InputVariant};
//!
//! let trace = build_trace(AppId::Kafka, InputVariant::default(), 5_000);
//! let mut frontend = Frontend::builder(FrontendConfig::zen3())
//!     .policy(LruPolicy::new())
//!     .build();
//! let result = frontend.run(&trace);
//! assert!(result.ipc() > 0.0);
//! assert!(result.uopc.uops_hit > 0);
//! ```

pub mod frontend;

pub use frontend::{Frontend, FrontendBuilder, SimOptions};
