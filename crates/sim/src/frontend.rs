//! The frontend simulation loop.

use std::collections::VecDeque;
use uopcache_cache::{LineCache, LineOutcome, LookupResult, PwReplacementPolicy, UopCache};
use uopcache_model::{FrontendConfig, LookupTrace, PwDesc, SimResult};
#[cfg(feature = "obs")]
use uopcache_obs::Recorder;

/// Exposed L2 latency charged on an L1i miss. Table I's L2 is 16 cycles, but
/// decoupled frontends hide roughly half of it with fetch-ahead (the paper
/// leaves FDIP unmodelled, §VII); we charge the exposed portion.
const L2_LATENCY: u64 = 8;
/// Re-steer penalty on a BTB miss for a taken branch.
const BTB_MISS_PENALTY: u64 = 2;
/// Micro-ops the micro-op cache path can deliver per cycle (8 per entry, one
/// entry per cycle — the paper notes only one PW is released per cycle).
const UOPC_DELIVERY_PER_CYCLE: u64 = 8;
/// Assumed micro-ops per x86 instruction for instruction-count reporting.
const UOPS_PER_INST: f64 = 1.12;
/// Initial capacity of the asynchronous-insertion queue and its drain batch
/// buffer. In-flight insertions are bounded by the insertion latency (a few
/// tens of cycles) times one insertion per access, so this comfortably
/// covers steady state; pathological bursts merely grow the buffers once.
const INSERT_QUEUE_CAPACITY: usize = 256;

/// Non-architectural simulation switches.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct SimOptions {
    /// Classify micro-op cache misses into cold/capacity/conflict
    /// (adds a fully-associative shadow; slows simulation slightly).
    pub classify_misses: bool,
}

/// Configures and constructs a [`Frontend`].
///
/// Obtained from [`Frontend::builder`]; every knob is optional except the
/// configuration:
///
/// ```
/// use uopcache_cache::LruPolicy;
/// use uopcache_model::FrontendConfig;
/// use uopcache_sim::Frontend;
///
/// let fe = Frontend::builder(FrontendConfig::zen3())
///     .policy(LruPolicy::new())
///     .classify_misses(true)
///     .build();
/// assert_eq!(fe.uop_cache().policy_name(), "LRU");
/// ```
pub struct FrontendBuilder {
    cfg: FrontendConfig,
    policy: Option<Box<dyn PwReplacementPolicy>>,
    opts: SimOptions,
    #[cfg(feature = "obs")]
    recorder: Option<Box<dyn Recorder>>,
}

impl FrontendBuilder {
    fn new(cfg: FrontendConfig) -> Self {
        FrontendBuilder {
            cfg,
            policy: None,
            opts: SimOptions::default(),
            #[cfg(feature = "obs")]
            recorder: None,
        }
    }

    /// Sets the micro-op cache replacement policy (default: LRU). Accepts
    /// both unboxed policies and `Box<dyn PwReplacementPolicy>`.
    #[must_use]
    pub fn policy(mut self, policy: impl PwReplacementPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Replaces the whole option block.
    #[must_use]
    pub fn options(mut self, opts: SimOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Toggles cold/capacity/conflict miss classification.
    #[must_use]
    pub fn classify_misses(mut self, classify: bool) -> Self {
        self.opts.classify_misses = classify;
        self
    }

    /// Installs an event sink on the micro-op cache; the run loop stamps
    /// each event with the frontend cycle it occurred on.
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.recorder = Some(Box::new(recorder));
        self
    }

    /// Constructs the frontend.
    ///
    /// # Panics
    ///
    /// Panics if the cache geometries are inconsistent.
    pub fn build(self) -> Frontend {
        let cfg = self.cfg;
        let policy = self
            .policy
            .unwrap_or_else(|| Box::new(uopcache_cache::LruPolicy::new()));
        let mut uopc =
            UopCache::with_line_bytes(cfg.uop_cache, policy, u64::from(cfg.icache.line_bytes));
        if self.opts.classify_misses {
            uopc.enable_classification();
        }
        #[cfg(feature = "obs")]
        if let Some(recorder) = self.recorder {
            uopc.set_recorder(recorder);
        }
        let l1i = LineCache::new(
            cfg.icache.size_bytes,
            cfg.icache.ways,
            cfg.icache.line_bytes,
        );
        // BTB: tagged at 4-byte granularity.
        let btb = LineCache::with_entries(cfg.bpu.btb_entries, cfg.bpu.btb_ways, 4);
        Frontend {
            cfg,
            uopc,
            l1i,
            btb,
            insert_queue: VecDeque::with_capacity(INSERT_QUEUE_CAPACITY),
            insert_batch: Vec::with_capacity(INSERT_QUEUE_CAPACITY),
            uopc_mode: false,
            cycle: 0,
            backend_debt: 0.0,
        }
    }
}

impl std::fmt::Debug for FrontendBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendBuilder")
            .field("cfg", &self.cfg)
            .field("policy", &self.policy.as_ref().map(|p| p.name()))
            .field("opts", &self.opts)
            .finish()
    }
}

/// The trace-driven frontend simulator.
///
/// Construct via [`Frontend::builder`], then [`run`] a lookup trace. The
/// simulator may be run repeatedly; statistics accumulate on the underlying
/// structures while [`run`] returns per-run deltas.
///
/// [`run`]: Frontend::run
pub struct Frontend {
    cfg: FrontendConfig,
    uopc: UopCache,
    l1i: LineCache,
    btb: LineCache,
    /// Pending asynchronous insertions: (ready_cycle, window).
    insert_queue: VecDeque<(u64, PwDesc)>,
    /// Reusable batch buffer: insertions due this cycle are staged here
    /// before being driven into the cache, so the per-access drain never
    /// allocates (both buffers are preallocated and only ever refilled).
    insert_batch: Vec<PwDesc>,
    /// Whether the previous window was served by the micro-op cache.
    uopc_mode: bool,
    /// Frontend cycle counter.
    cycle: u64,
    /// Fractional backend-absorption accumulator.
    backend_debt: f64,
}

impl Frontend {
    /// Starts building a frontend for the given configuration.
    pub fn builder(cfg: FrontendConfig) -> FrontendBuilder {
        FrontendBuilder::new(cfg)
    }

    /// The configuration in use.
    pub fn config(&self) -> &FrontendConfig {
        &self.cfg
    }

    /// The micro-op cache (for inspection in tests and experiments).
    pub fn uop_cache(&self) -> &UopCache {
        &self.uopc
    }

    /// The event sink installed via [`FrontendBuilder::recorder`], if any.
    #[cfg(feature = "obs")]
    pub fn recorder(&self) -> Option<&dyn Recorder> {
        self.uopc.recorder()
    }

    /// Removes and returns the installed event sink (to read out events and
    /// metrics after a run).
    #[cfg(feature = "obs")]
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.uopc.take_recorder()
    }

    /// Drives the lookup trace through the frontend and returns the
    /// statistics of this run.
    pub fn run(&mut self, trace: &LookupTrace) -> SimResult {
        let uopc_before = *self.uopc.stats();
        let l1i_before = *self.l1i.stats();
        let btb_before = *self.btb.stats();
        let cycle_before = self.cycle;
        let mut result = SimResult::default();

        for access in trace.iter() {
            let pw = access.pw;
            let mut add: u64 = 0;

            // Stamp this access's events with the frontend cycle.
            #[cfg(feature = "obs")]
            self.uopc.set_cycle(self.cycle);

            // Retire pending asynchronous insertions that are now ready.
            self.drain_insertions();

            // Branch prediction for the branch that produced this window.
            result.events.bp_accesses += 1;
            result.events.btb_accesses += 1;
            if !self.cfg.perfect.btb {
                if let LineOutcome::Miss { .. } = self
                    .btb
                    .access(uopcache_model::Addr::new(pw.start.get()).line(4))
                {
                    add += BTB_MISS_PENALTY;
                }
            }
            if access.mispredicted && !self.cfg.perfect.branch_predictor {
                result.mispredictions += 1;
                add += u64::from(self.cfg.bpu.mispredict_penalty);
            }

            // Micro-op cache lookup.
            result.events.uopc_lookups += 1;
            let lookup = if self.cfg.perfect.uop_cache {
                LookupResult::Hit { uops: pw.uops }
            } else {
                self.uopc.lookup(&pw)
            };
            let hit_uops = u64::from(lookup.hit_uops());
            let miss_uops = u64::from(lookup.miss_uops(pw.uops));
            result.events.uopc_entry_reads +=
                hit_uops.div_ceil(u64::from(self.cfg.uop_cache.uops_per_entry));

            if miss_uops == 0 {
                // Served entirely by the micro-op cache.
                if !self.uopc_mode {
                    add += u64::from(self.cfg.uop_cache.switch_penalty);
                    self.uopc_mode = true;
                }
                add += hit_uops.div_ceil(UOPC_DELIVERY_PER_CYCLE).max(1);
                // Inclusion keeps the window's lines in L1i; their recency
                // tracks micro-op cache hits (no energy is spent — the L1i
                // array is clock-gated on this path).
                if !self.cfg.perfect.icache && self.cfg.uop_cache.inclusive_with_l1i {
                    let line_bytes = u64::from(self.cfg.icache.line_bytes);
                    for line in pw.lines(line_bytes) {
                        self.l1i.touch(line);
                    }
                }
            } else {
                // Deliver any partial-hit prefix from the micro-op cache.
                if hit_uops > 0 {
                    add += hit_uops.div_ceil(UOPC_DELIVERY_PER_CYCLE);
                }
                // Switch to the legacy path and refill the decode pipeline.
                if self.uopc_mode {
                    add += u64::from(self.cfg.uop_cache.switch_penalty);
                    self.uopc_mode = false;
                    add += u64::from(self.cfg.decoder.latency);
                }
                // Fetch the window's lines through L1i.
                let line_bytes = u64::from(self.cfg.icache.line_bytes);
                for line in pw.lines(line_bytes) {
                    result.events.icache_reads += 1;
                    if self.cfg.perfect.icache {
                        continue;
                    }
                    match self.l1i.access(line) {
                        LineOutcome::Hit => {}
                        LineOutcome::Miss { evicted } => {
                            add += L2_LATENCY;
                            result.events.icache_fills += 1;
                            if let Some(victim) = evicted {
                                if self.cfg.uop_cache.inclusive_with_l1i
                                    && !self.cfg.perfect.uop_cache
                                {
                                    self.uopc.invalidate_line(victim);
                                }
                            }
                        }
                    }
                }
                // Decode the missed micro-ops.
                let decode_cycles = miss_uops.div_ceil(u64::from(self.cfg.decoder.width)).max(1);
                add += decode_cycles;
                result.events.decoded_uops += miss_uops;
                result.events.decoder_active_cycles += decode_cycles;
                // Schedule the asynchronous insertion of the full window.
                if !self.cfg.perfect.uop_cache {
                    let ready = self.cycle + add + u64::from(self.cfg.decoder.latency);
                    self.insert_queue.push_back((ready, pw));
                }
            }

            // The backend absorbs micro-ops at its IPC ceiling; the frontend
            // only dents IPC when it under-supplies.
            self.backend_debt += f64::from(pw.uops) / self.cfg.backend.uop_ipc_ceiling;
            // Debt is non-negative and bounded by one window's worth of
            // micro-ops, so the floored value fits in u64.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let backend_cycles = self.backend_debt.floor() as u64;
            self.backend_debt -= backend_cycles as f64;
            self.cycle += add.max(backend_cycles);

            result.events.retired_uops += u64::from(pw.uops);
        }
        // Flush remaining insertions so repeated runs start clean.
        self.flush_insertions();

        result.uopc = *self.uopc.stats() - uopc_before;
        if self.cfg.perfect.uop_cache {
            // The perfect micro-op cache bypasses the real structure: credit
            // its hits directly.
            result.uopc.lookups = trace.len() as u64;
            result.uopc.pw_hits = trace.len() as u64;
            result.uopc.uops_requested = trace.total_uops();
            result.uopc.uops_hit = trace.total_uops();
        }
        let mut l1i_stats = *self.l1i.stats();
        l1i_stats.accesses -= l1i_before.accesses;
        l1i_stats.hits -= l1i_before.hits;
        l1i_stats.misses -= l1i_before.misses;
        l1i_stats.evictions -= l1i_before.evictions;
        l1i_stats.fills -= l1i_before.fills;
        result.icache = l1i_stats;
        let mut btb_stats = *self.btb.stats();
        btb_stats.accesses -= btb_before.accesses;
        btb_stats.hits -= btb_before.hits;
        btb_stats.misses -= btb_before.misses;
        btb_stats.evictions -= btb_before.evictions;
        btb_stats.fills -= btb_before.fills;
        result.btb = btb_stats;
        result.events.cycles = self.cycle - cycle_before;
        result.events.uopc_entry_writes = result.uopc.entries_written;
        // Retired-uop counts are far below 2^53, so the f64 round-trip and
        // the cast back to u64 are exact.
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        {
            result.events.retired_instructions =
                (result.events.retired_uops as f64 / UOPS_PER_INST).round() as u64;
        }
        result
    }

    fn drain_insertions(&mut self) {
        self.insert_batch.clear();
        while let Some(&(ready, pw)) = self.insert_queue.front() {
            if ready > self.cycle {
                break;
            }
            self.insert_queue.pop_front();
            self.insert_batch.push(pw);
        }
        for i in 0..self.insert_batch.len() {
            let pw = self.insert_batch[i];
            self.uopc.insert(&pw);
        }
    }

    fn flush_insertions(&mut self) {
        self.insert_batch.clear();
        while let Some((_, pw)) = self.insert_queue.pop_front() {
            self.insert_batch.push(pw);
        }
        for i in 0..self.insert_batch.len() {
            let pw = self.insert_batch[i];
            self.uopc.insert(&pw);
        }
    }
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend")
            .field("cfg", &self.cfg)
            .field("cycle", &self.cycle)
            .field("uopc_mode", &self.uopc_mode)
            .field("pending_insertions", &self.insert_queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_cache::LruPolicy;
    use uopcache_model::{Addr, PwAccess, PwTermination};
    use uopcache_trace::{build_trace, AppId, InputVariant};

    fn frontend(cfg: FrontendConfig) -> Frontend {
        Frontend::builder(cfg).policy(LruPolicy::new()).build()
    }

    #[test]
    fn runs_and_accounts() {
        let trace = build_trace(AppId::Kafka, InputVariant(0), 10_000);
        let mut fe = frontend(FrontendConfig::zen3());
        let r = fe.run(&trace);
        assert_eq!(r.uopc.lookups, 10_000);
        assert_eq!(r.uopc.uops_hit + r.uopc.uops_missed, r.uopc.uops_requested);
        assert!(r.events.cycles > 0);
        assert!(r.ipc() > 0.1 && r.ipc() < 6.0, "ipc = {}", r.ipc());
    }

    #[test]
    fn perfect_uop_cache_never_misses() {
        let trace = build_trace(AppId::Python, InputVariant(0), 5_000);
        let mut cfg = FrontendConfig::zen3();
        cfg.perfect.uop_cache = true;
        let mut fe = frontend(cfg);
        let r = fe.run(&trace);
        assert_eq!(r.uopc.uops_missed, 0);
        assert_eq!(r.events.decoded_uops, 0);
        assert_eq!(r.events.icache_reads, 0);
    }

    #[test]
    fn perfect_structures_improve_ipc() {
        let trace = build_trace(AppId::Wordpress, InputVariant(0), 20_000);
        let base = frontend(FrontendConfig::zen3()).run(&trace);
        for which in ["uopc", "icache", "btb", "bp"] {
            let mut cfg = FrontendConfig::zen3();
            match which {
                "uopc" => cfg.perfect.uop_cache = true,
                "icache" => cfg.perfect.icache = true,
                "btb" => cfg.perfect.btb = true,
                _ => cfg.perfect.branch_predictor = true,
            }
            let r = frontend(cfg).run(&trace);
            assert!(
                r.ipc() >= base.ipc(),
                "{which}: perfect {} < base {}",
                r.ipc(),
                base.ipc()
            );
        }
    }

    #[test]
    fn asynchronous_insertion_is_delayed() {
        // Two back-to-back lookups of the same window: the second arrives
        // before the insertion from the first miss completes, so it also
        // misses (the asynchrony of §II-B).
        let pw = PwDesc::new(Addr::new(0x1000), 4, 12, PwTermination::TakenBranch);
        let t: LookupTrace = [PwAccess::new(pw), PwAccess::new(pw)].into_iter().collect();
        let mut fe = frontend(FrontendConfig::zen3());
        let r = fe.run(&t);
        assert_eq!(
            r.uopc.pw_misses, 2,
            "second lookup races the in-flight insertion"
        );
    }

    #[test]
    fn spaced_reaccess_hits_after_insertion_completes() {
        let pw = PwDesc::new(Addr::new(0x1000), 4, 12, PwTermination::TakenBranch);
        let filler = PwDesc::new(Addr::new(0x8000), 8, 24, PwTermination::TakenBranch);
        let mut accs = vec![PwAccess::new(pw)];
        for _ in 0..6 {
            accs.push(PwAccess::new(filler));
        }
        accs.push(PwAccess::new(pw));
        let t: LookupTrace = accs.into_iter().collect();
        let mut fe = frontend(FrontendConfig::zen3());
        let r = fe.run(&t);
        assert!(
            r.uopc.pw_hits >= 1,
            "spaced re-access should hit: {:?}",
            r.uopc
        );
    }

    #[test]
    fn inclusion_invalidations_occur_under_icache_pressure() {
        let trace = build_trace(AppId::Clang, InputVariant(0), 60_000);
        let mut fe = frontend(FrontendConfig::zen3());
        let r = fe.run(&trace);
        assert!(
            r.uopc.inclusion_invalidations > 0,
            "L1i evictions must invalidate PWs: {:?}",
            r.uopc
        );
    }

    #[test]
    fn better_policy_means_better_or_equal_ipc() {
        let trace = build_trace(AppId::Postgres, InputVariant(0), 30_000);
        let lru_r = frontend(FrontendConfig::zen3()).run(&trace);
        let mut big = FrontendConfig::zen3();
        big.uop_cache = big.uop_cache.with_entries(4096);
        let big_r = frontend(big).run(&trace);
        assert!(big_r.uopc.uops_missed <= lru_r.uopc.uops_missed);
        assert!(big_r.ipc() >= lru_r.ipc());
    }

    #[test]
    fn misprediction_penalty_costs_cycles() {
        let trace = build_trace(AppId::Wordpress, InputVariant(0), 10_000);
        let base = frontend(FrontendConfig::zen3()).run(&trace);
        let mut cfg = FrontendConfig::zen3();
        cfg.perfect.branch_predictor = true;
        let perfect = frontend(cfg).run(&trace);
        assert!(perfect.events.cycles < base.events.cycles);
        assert_eq!(perfect.mispredictions, 0);
    }

    #[test]
    fn classification_option_populates_3c_breakdown() {
        let trace = build_trace(AppId::Kafka, InputVariant(0), 20_000);
        let mut fe = Frontend::builder(FrontendConfig::zen3())
            .policy(LruPolicy::new())
            .classify_misses(true)
            .build();
        let r = fe.run(&trace);
        let classified =
            r.uopc.cold_miss_uops + r.uopc.capacity_miss_uops + r.uopc.conflict_miss_uops;
        assert_eq!(classified, r.uopc.uops_missed);
        // Data-center shape: capacity misses dominate, cold misses are rare.
        assert!(r.uopc.capacity_miss_uops > r.uopc.cold_miss_uops);
    }
}
