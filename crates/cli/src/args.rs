//! Minimal flag parsing: `--key value` pairs plus positionals.

use std::fmt;
use uopcache_model::hash::FastHashMap;

/// A parsed command line.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: FastHashMap<String, String>,
    switches: Vec<String>,
}

/// A missing or malformed argument.
#[derive(Debug)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// A command that found problems and already reported them: the caller
/// should exit nonzero with the message but skip the usage text.
#[derive(Debug)]
pub struct CheckFailed(pub String);

impl fmt::Display for CheckFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CheckFailed {}

impl Args {
    /// Parses `argv`. `--key value` becomes a flag, a bare `--key` followed
    /// by another flag (or nothing) becomes a switch, everything else a
    /// positional. `-i`/`-o` are aliases for `--input`/`--output`.
    pub fn parse(argv: &[String]) -> Args {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(stripped) = token.strip_prefix("--") {
                let key = stripped.to_string();
                if i + 1 < argv.len() && !argv[i + 1].starts_with('-') {
                    args.flags.insert(key, argv[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key);
                    i += 1;
                }
            } else if token == "-i" || token == "-o" {
                let key = if token == "-i" { "input" } else { "output" };
                if i + 1 < argv.len() {
                    args.flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                args.positionals.push(token.clone());
                i += 1;
            }
        }
        args
    }

    /// The n-th positional argument.
    pub fn positional(&self, n: usize) -> Option<&str> {
        self.positionals.get(n).map(String::as_str)
    }

    /// A string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing --{key}")))
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} {v:?} is not a valid value"))),
        }
    }

    /// Whether a bare `--switch` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn flags_positionals_switches() {
        let a = parse("gen --app kafka --len 100 --quick -o out.trc");
        assert_eq!(a.positional(0), Some("gen"));
        assert_eq!(a.get("app"), Some("kafka"));
        assert_eq!(a.get_parse::<usize>("len", 5).unwrap(), 100);
        assert!(a.has("quick"));
        assert_eq!(a.get("output"), Some("out.trc"));
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("simulate");
        assert_eq!(a.get_parse::<u32>("variant", 7).unwrap(), 7);
        assert!(a.require("input").is_err());
        let a = parse("x --len abc");
        assert!(a.get_parse::<usize>("len", 1).is_err());
    }
}
