//! Subcommand implementations.

use crate::args::{ArgError, Args, CheckFailed};
use std::error::Error;
use std::path::Path;
use uopcache_bench::policies::{PolicyId, PolicyRegistry, ProfileInputs};
use uopcache_bench::sweep::{self, run_sweep, SweepSpec, SAMPLE_EVERY, SCHEMA_VERSION};
use uopcache_bench::Table;
use uopcache_core::{Flack, FurbysPipeline, OracleKind};
use uopcache_exec::TaskKey;
use uopcache_model::json::Json;
use uopcache_model::{FrontendConfig, LookupTrace};
use uopcache_obs::{Event, MetricsRecorder, SamplingRecorder, StreamDigest};
use uopcache_power::EnergyModel;
use uopcache_serve::{Client, Router, RouterConfig, Server, ServerConfig};
use uopcache_sim::Frontend;
use uopcache_trace::{
    build_trace, build_trace_scaled, io as trace_io, AppId, InputVariant, TraceStats,
};

/// Top-level usage text.
pub const USAGE: &str = "\
usage: uopcache <command> [options]

commands:
  apps                              list the Table II applications
  gen        --app A [--variant N] [--len N] [--scale N] -o FILE
                                    generate a trace (--scale stretches it
                                    by phase-structured repetition + drift)
  stats      -i FILE                trace statistics
  simulate   -i FILE [--policy P] [--config zen3|zen4] [--entries N] [--ways N]
                                    run one policy through the timed frontend
  profile    -i FILE [--oracle flack|belady|foo] -o HINTS.json
                                    produce FURBYS weight hints (steps 2-6)
  compare    -i FILE [--config ...] compare every policy (incl. offline bounds)
  sweep      [--apps A,B] [--policies P,Q] [--config zen3|zen4] [--entries N]
             [--ways N] [--variant N] [--len N] [--scale N] [--sample N]
             [--jobs N] [--json FILE] [--metrics]
                                    run an (app x policy) sweep through the
                                    parallel engine; deterministic for any
                                    --jobs value, canonical JSON via --json;
                                    --metrics adds sampled events, histograms
                                    and merged totals to every cell;
                                    --sample N switches every cell to
                                    representative-interval sampling with
                                    N-uop intervals (see `sample`)
  sample     [sweep flags] [--interval N] [--scale N] [--check] [--gate X]
             [--jobs N] [--json FILE]
                                    run a representative-interval (SimPoint
                                    style) sampled sweep: slice the trace
                                    into N-uop intervals, cluster their BBV
                                    fingerprints, simulate one interval per
                                    cluster and reconstruct every cell with
                                    a reported error bound; --check reruns
                                    the full simulation and gates the true
                                    error against the bound and --gate
                                    (default 0.02); --scale stretches the
                                    trace by phase-structured repetition
  inspect    --app A [--policy P] [--config zen3|zen4] [--entries N] [--ways N]
             [--variant N] [--len N] [--sample K] [--events N] [--json FILE]
                                    replay one sweep cell with full
                                    observability: decision events, counters
                                    and histograms (ASCII tables or JSON)
  identify   --app A [--variant N] [--len N] [--config zen3|zen4] [--entries N]
             [--ways N] [--digest HEX] [--json FILE]
                                    replay one probe trace through every
                                    registered policy and print each
                                    decision-stream digest; with --digest,
                                    name the policy that produced the
                                    captured stream (ambiguity is reported,
                                    never guessed away)
  bench-hotpath [--quick] [--config zen3|zen4] [--entries N] [--ways N]
             [--apps A,B] [--policies P,Q] [--variant N] [--len N]
             [--warmup N] [--passes N] [--json FILE] [--baseline FILE]
             [--gate X]
                                    measure kernel throughput (lookups/sec)
                                    and allocations-per-lookup per app x
                                    policy; --baseline gates against a
                                    committed BENCH_hotpath.json (default
                                    gate 3x); UPDATE_BENCH=1 rewrites the
                                    baseline instead of gating
  experiment ID [--quick] [--jobs N]
                                    regenerate one paper table/figure
  list-experiments                  show all experiment ids
  audit      [--root DIR] [--allowlist FILE] [--lint-only] [--json] [--graph]
                                    run the workspace lint pass (token rules
                                    plus call-graph alloc-reachability,
                                    determinism, and concurrency analyses)
                                    and the policy-conformance checks;
                                    --json emits canonical diagnostics,
                                    --graph dumps the call graph
  serve      [--addr H:P] [--queue N] [--shards N] [--jobs N]
             [--job-timeout-ms N] [--retention N]
                                    run the simulation daemon: a nonblocking
                                    event loop in front of N worker shards
                                    (bounded queues, 429-style backpressure,
                                    panic isolation, graceful drain);
                                    results are byte-identical to `sweep`
  route      --backends H:P,H:P[,..] [--addr H:P] [--queue N] [--replicas N]
             [--health-interval-ms N] [--retry-rounds N] [--retention N]
                                    run a consistent-hash router in front of
                                    several daemons: same client protocol,
                                    health-checked backends, busy-aware
                                    spillover and drain-aware failover
  submit     --addr H:P [sweep flags] [--id ID] [--timeout-ms N] [--no-wait]
             [--json FILE]          submit a sweep job to a daemon; waits and
                                    writes the canonical report by default
  status     --addr H:P --job ID    query one job's state on a daemon
  stats      --addr H:P             fetch a daemon's stats frame (counters,
                                    queue gauges, latency histograms)
  shutdown   --addr H:P             ask a daemon to drain and exit

policies: lru srrip ship++ mockingjay ghrp thermometer furbys  (online roster)
          fifo mru lfu clock slru 2q arc car set-dueling random (zoo + controls,
                                    sweep/inspect/identify only)";

/// Runs the command line. Returns an error message for the user on failure.
///
/// # Errors
///
/// Any argument, I/O or lookup failure, formatted for display.
pub fn dispatch(argv: &[String]) -> Result<(), Box<dyn Error>> {
    let args = Args::parse(argv);
    match args.positional(0) {
        Some("apps") => cmd_apps(),
        Some("gen") => cmd_gen(&args),
        Some("stats") => {
            if args.get("addr").is_some() {
                cmd_server_stats(&args)
            } else {
                cmd_stats(&args)
            }
        }
        Some("simulate") => cmd_simulate(&args),
        Some("profile") => cmd_profile(&args),
        Some("compare") => cmd_compare(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("sample") => cmd_sample(&args),
        Some("inspect") => cmd_inspect(&args),
        Some("identify") => cmd_identify(&args),
        Some("bench-hotpath") => cmd_bench_hotpath(&args),
        Some("experiment") => cmd_experiment(&args),
        Some("list-experiments") => cmd_list_experiments(),
        Some("audit") => cmd_audit(&args),
        Some("serve") => cmd_serve(&args),
        Some("route") => cmd_route(&args),
        Some("submit") => cmd_submit(&args),
        Some("status") => cmd_status(&args),
        Some("shutdown") => cmd_shutdown(&args),
        Some(other) => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
        None => Err(Box::new(ArgError("no command given".into()))),
    }
}

fn parse_app(name: &str) -> Result<AppId, ArgError> {
    AppId::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| ArgError(format!("unknown app {name:?} (try `uopcache apps`)")))
}

fn parse_config(args: &Args) -> Result<FrontendConfig, ArgError> {
    let mut cfg = match args.get("config").unwrap_or("zen3") {
        "zen3" => FrontendConfig::zen3(),
        "zen4" => FrontendConfig::zen4(),
        other => return Err(ArgError(format!("unknown config {other:?}"))),
    };
    cfg.uop_cache = cfg
        .uop_cache
        .with_entries(args.get_parse("entries", cfg.uop_cache.entries)?)
        .with_ways(args.get_parse("ways", cfg.uop_cache.ways)?);
    Ok(cfg)
}

fn load_trace(args: &Args) -> Result<LookupTrace, Box<dyn Error>> {
    let path = args.require("input")?;
    Ok(trace_io::load(Path::new(path))?)
}

fn cmd_apps() -> Result<(), Box<dyn Error>> {
    let mut t = Table::new(
        "Table II applications",
        &["app", "branch MPKI", "description"],
    );
    for app in AppId::ALL {
        t.row(&[
            app.name().to_string(),
            format!("{:.2}", app.branch_mpki()),
            app.description().to_string(),
        ]);
    }
    t.print();
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), Box<dyn Error>> {
    let app = parse_app(args.require("app")?)?;
    let variant = InputVariant::new(args.get_parse("variant", 0u32)?);
    let len = args.get_parse("len", 100_000usize)?;
    let scale = args.get_parse("scale", 1u64)?;
    if scale == 0 {
        return Err(Box::new(ArgError("--scale must be at least 1".into())));
    }
    let out = args.require("output")?;
    let trace = build_trace_scaled(app, variant, len, scale);
    trace_io::save(Path::new(out), &trace)?;
    println!(
        "wrote {} accesses ({} uops) for {app} {variant} to {out}",
        trace.len(),
        trace.total_uops()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), Box<dyn Error>> {
    let trace = load_trace(args)?;
    let s = TraceStats::from_trace(&trace, 8);
    let mut t = Table::new("trace statistics", &["metric", "value"]);
    t.row(&["accesses".into(), format!("{}", s.accesses)]);
    t.row(&["micro-ops".into(), format!("{}", s.total_uops)]);
    t.row(&["mean uops per PW".into(), format!("{:.2}", s.mean_pw_uops)]);
    t.row(&[
        "distinct start addresses".into(),
        format!("{}", s.unique_starts),
    ]);
    t.row(&[
        "footprint (entries)".into(),
        format!("{}", s.footprint_entries),
    ]);
    t.row(&[
        "reuse distance > 30".into(),
        format!("{:.1}%", s.reuse_gt_30 * 100.0),
    ]);
    t.row(&[
        "implied branch MPKI".into(),
        format!("{:.2}", s.implied_mpki),
    ]);
    for (i, count) in s.entry_histogram.iter().enumerate() {
        if *count > 0 {
            t.row(&[
                format!("PWs of {} entr{}", i + 1, if i == 0 { "y" } else { "ies" }),
                format!("{count}"),
            ]);
        }
    }
    t.print();
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), Box<dyn Error>> {
    let trace = load_trace(args)?;
    let cfg = parse_config(args)?;
    let id = PolicyRegistry::online()
        .resolve(args.get("policy").unwrap_or("lru"))
        .map_err(ArgError)?;
    let profiles = ProfileInputs::build(&cfg, &trace);
    let result = Frontend::builder(cfg)
        .policy(id.build(&cfg, &profiles, 0))
        .build()
        .run(&trace);
    let model = EnergyModel::zen3_22nm(&cfg);
    let b = model.evaluate(&result);

    let mut t = Table::new(
        &format!("{} on {} accesses", id.name(), trace.len()),
        &["metric", "value"],
    );
    t.row(&[
        "uop miss rate".into(),
        format!("{:.2}%", result.uopc.uop_miss_rate() * 100.0),
    ]);
    t.row(&[
        "PW hits / partial / misses".into(),
        format!(
            "{} / {} / {}",
            result.uopc.pw_hits, result.uopc.pw_partial_hits, result.uopc.pw_misses
        ),
    ]);
    t.row(&[
        "insertions (bypassed)".into(),
        format!(
            "{} ({:.1}%)",
            result.uopc.insertions,
            result.uopc.bypass_rate() * 100.0
        ),
    ]);
    t.row(&["IPC".into(), format!("{:.3}", result.ipc())]);
    t.row(&["cycles".into(), format!("{}", result.events.cycles)]);
    t.row(&["energy (arb.)".into(), format!("{:.1}", b.total())]);
    t.row(&["PPW (insts/energy)".into(), format!("{:.3}", b.ppw())]);
    t.print();
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), Box<dyn Error>> {
    let trace = load_trace(args)?;
    let out = args.require("output")?;
    let mut pipeline = FurbysPipeline::new(parse_config(args)?);
    pipeline.oracle = match args.get("oracle").unwrap_or("flack") {
        "flack" => OracleKind::Flack,
        "belady" => OracleKind::Belady,
        "foo" => OracleKind::Foo,
        other => return Err(Box::new(ArgError(format!("unknown oracle {other:?}")))),
    };
    let profile = pipeline.profile(&trace);
    std::fs::write(out, profile.hints.to_json()?)?;
    println!(
        "profiled {} start addresses with the {} oracle into {} weight groups -> {out}",
        profile.hints.len(),
        pipeline.oracle.label(),
        profile.hints.groups()
    );
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), Box<dyn Error>> {
    let trace = load_trace(args)?;
    let cfg = parse_config(args)?;
    let profiles = ProfileInputs::build(&cfg, &trace);
    let mut t = Table::new(
        "policy comparison",
        &["policy", "miss rate", "vs LRU", "IPC", "bypassed"],
    );
    let lru = Frontend::builder(cfg)
        .policy(PolicyId::Lru.build(&cfg, &profiles, 0))
        .build()
        .run(&trace);
    for id in PolicyId::ONLINE {
        let r = Frontend::builder(cfg)
            .policy(id.build(&cfg, &profiles, 0))
            .build()
            .run(&trace);
        t.row(&[
            id.to_string(),
            format!("{:.2}%", r.uopc.uop_miss_rate() * 100.0),
            format!("{:+.2}%", r.uopc.miss_reduction_vs(&lru.uopc)),
            format!("{:.3}", r.ipc()),
            format!("{:.1}%", r.uopc.bypass_rate() * 100.0),
        ]);
    }
    // Offline bounds.
    let mut sync_lru =
        uopcache_cache::UopCache::new(cfg.uop_cache, Box::new(uopcache_cache::LruPolicy::new()));
    let sync_stats = uopcache_policies::run_trace(&mut sync_lru, &trace);
    for variant in [Flack::ablation(false, false, false), Flack::new()] {
        let s = variant.run(&trace, &cfg.uop_cache).stats;
        t.row(&[
            format!("{} (offline)", variant.label()),
            format!("{:.2}%", s.uop_miss_rate() * 100.0),
            format!("{:+.2}%", s.miss_reduction_vs(&sync_stats)),
            "-".into(),
            format!("{:.1}%", s.bypass_rate() * 100.0),
        ]);
    }
    t.print();
    Ok(())
}

/// Builds a [`SweepSpec`] from the shared sweep flags (`--apps`,
/// `--policies`, `--config`, `--entries`, `--ways`, `--variant`, `--len`,
/// `--metrics`) — the same parsing for `sweep` (offline) and `submit`
/// (served), so both paths describe identical work.
fn spec_from_args(args: &Args) -> Result<SweepSpec, Box<dyn Error>> {
    let cfg = parse_config(args)?;
    let config_name = args.get("config").unwrap_or("zen3").to_string();
    let apps = match args.get("apps") {
        None => AppId::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_app)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let registry = PolicyRegistry::all();
    let policies = match args.get("policies") {
        None => PolicyId::ONLINE
            .iter()
            .map(|p| p.name().to_string())
            .collect(),
        Some(list) => list
            .split(',')
            .map(|p| {
                registry
                    .resolve(p)
                    .map(|id| id.name().to_string())
                    .map_err(ArgError)
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let sample = match args.get("sample") {
        None => None,
        Some(_) => {
            let v = args.get_parse("sample", 0u64)?;
            if v == 0 {
                return Err(Box::new(ArgError(
                    "--sample must be at least 1 micro-op".into(),
                )));
            }
            Some(v)
        }
    };
    let scale = args.get_parse("scale", 1u64)?;
    if scale == 0 {
        return Err(Box::new(ArgError("--scale must be at least 1".into())));
    }
    Ok(SweepSpec {
        cfg,
        config_name,
        apps,
        policies,
        variant: args.get_parse("variant", 0u32)?,
        len: args.get_parse("len", 100_000usize)?,
        metrics: args.has("metrics"),
        sample,
        scale,
    })
}

fn cmd_sweep(args: &Args) -> Result<(), Box<dyn Error>> {
    let spec = spec_from_args(args)?;
    if let Some(jobs) = args.get("jobs") {
        sweep::set_jobs(
            jobs.parse()
                .map_err(|_| ArgError(format!("--jobs {jobs:?} is not a valid value")))?,
        );
    }
    let report = run_sweep(&spec, &sweep::engine());

    let mut t = Table::new(
        &format!(
            "sweep: {} apps x {} policies on {} ({} jobs, {:.1?})",
            spec.apps.len(),
            spec.policies.len(),
            spec.config_name,
            sweep::current_jobs(),
            report.elapsed,
        ),
        &["app", "policy", "hit rate", "MPKI", "IPC", "evictions"],
    );
    for c in &report.cells {
        t.row(&[
            c.app.name().to_string(),
            c.policy.clone(),
            format!("{:.2}%", c.hit_rate() * 100.0),
            format!("{:.3}", c.mpki()),
            format!("{:.3}", c.result.ipc()),
            format!("{}", c.result.uopc.evicted_pws),
        ]);
    }
    t.print();

    // When the set-dueling meta-policy is in the roster, summarise where it
    // lands per app: against the worst and best static policy in this sweep
    // and against the FLACK offline bound. FLACK replays synchronously
    // (insert-on-miss), so its bound is indicative rather than cycle-exact
    // against the timed cells. Plaintext only — the canonical JSON report is
    // unchanged.
    let duel_name = PolicyId::SetDueling.name();
    if spec.policies.iter().any(|p| p == duel_name) {
        let mut d = Table::new(
            "set-dueling placement (uop hit rate; FLACK is the offline bound)",
            &[
                "app",
                "set-dueling",
                "worst static",
                "best static",
                "FLACK",
                "gap to FLACK",
            ],
        );
        for app in &spec.apps {
            let Some(duel) = report
                .cells
                .iter()
                .find(|c| c.app == *app && c.policy == duel_name)
            else {
                continue;
            };
            let statics: Vec<f64> = report
                .cells
                .iter()
                .filter(|c| c.app == *app && c.policy != duel_name)
                .map(|c| c.hit_rate())
                .collect();
            let worst = statics.iter().copied().fold(f64::INFINITY, f64::min);
            let best = statics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let trace = build_trace(*app, InputVariant::new(spec.variant), spec.len);
            let flack = Flack::new().run(&trace, &spec.cfg.uop_cache).stats;
            let flack_hit = 1.0 - flack.uop_miss_rate();
            let duel_hit = duel.hit_rate();
            let pct = |r: f64| format!("{:.2}%", r * 100.0);
            d.row(&[
                app.name().to_string(),
                pct(duel_hit),
                if statics.is_empty() {
                    "-".into()
                } else {
                    pct(worst)
                },
                if statics.is_empty() {
                    "-".into()
                } else {
                    pct(best)
                },
                pct(flack_hit),
                format!("{:+.2}pp", (flack_hit - duel_hit) * 100.0),
            ]);
        }
        d.print();
    }

    for f in &report.failures {
        eprintln!("{f}");
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json())?;
        println!("wrote canonical JSON to {path}");
    }
    if report.failures.is_empty() {
        Ok(())
    } else {
        Err(Box::new(ArgError(format!(
            "{} sweep task(s) failed",
            report.failures.len()
        ))))
    }
}

/// Runs a representative-interval sampled sweep and renders the plan and
/// the reconstructed cells. With `--check`, also runs the *full* simulation
/// of the same spec and gates the true per-cell hit-rate error against both
/// the cell's reported `est_error` bound and `--gate` (default 0.02
/// absolute), reporting the wall-clock speedup alongside.
fn cmd_sample(args: &Args) -> Result<(), Box<dyn Error>> {
    let mut spec = spec_from_args(args)?;
    let interval = match args.get("interval") {
        Some(_) => args.get_parse("interval", 0u64)?,
        None => spec.sample.unwrap_or(20_000),
    };
    if interval == 0 {
        return Err(Box::new(ArgError(
            "--interval must be at least 1 micro-op".into(),
        )));
    }
    spec.sample = Some(interval);
    if let Some(jobs) = args.get("jobs") {
        sweep::set_jobs(
            jobs.parse()
                .map_err(|_| ArgError(format!("--jobs {jobs:?} is not a valid value")))?,
        );
    }
    let report = run_sweep(&spec, &sweep::engine());

    let mut t = Table::new(
        &format!(
            "sampled sweep: {} apps x {} policies, {interval}-uop intervals ({:.1?})",
            spec.apps.len(),
            spec.policies.len(),
            report.elapsed,
        ),
        &[
            "app",
            "policy",
            "intervals",
            "k",
            "hit rate",
            "MPKI",
            "est error",
        ],
    );
    for c in &report.cells {
        let s = c.sampled.as_ref().expect("sampled sweep fills sampled");
        t.row(&[
            c.app.name().to_string(),
            c.policy.clone(),
            format!("{}", s.intervals),
            format!("{}", s.k),
            format!("{:.2}%", c.hit_rate() * 100.0),
            format!("{:.3}", c.mpki()),
            format!("{:.2}pp", s.est_error * 100.0),
        ]);
    }
    t.print();
    for f in &report.failures {
        eprintln!("{f}");
    }

    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json())?;
        println!("wrote canonical JSON to {path}");
    }

    if args.has("check") {
        let gate: f64 = args.get_parse("gate", 0.02f64)?;
        let mut full_spec = spec.clone();
        full_spec.sample = None;
        let full = run_sweep(&full_spec, &sweep::engine());
        let mut violations = 0usize;
        let mut t = Table::new(
            "sampled vs full simulation (uop hit rate)",
            &[
                "app", "policy", "full", "sampled", "true err", "bound", "ok",
            ],
        );
        for c in &report.cells {
            // Cell keys do not encode the sampling mode, so the full run's
            // cell for the same (app, policy) carries the identical key.
            let Some(f) = full.cells.iter().find(|f| f.key == c.key) else {
                violations += 1;
                continue;
            };
            let err = (c.hit_rate() - f.hit_rate()).abs();
            let bound = c.sampled.as_ref().map_or(0.0, |s| s.est_error);
            let ok = err <= bound && err <= gate;
            if !ok {
                violations += 1;
            }
            t.row(&[
                c.app.name().to_string(),
                c.policy.clone(),
                format!("{:.2}%", f.hit_rate() * 100.0),
                format!("{:.2}%", c.hit_rate() * 100.0),
                format!("{:.2}pp", err * 100.0),
                format!("{:.2}pp", bound * 100.0),
                if ok { "yes" } else { "NO" }.to_string(),
            ]);
        }
        t.print();
        let speedup = full.elapsed.as_secs_f64() / report.elapsed.as_secs_f64().max(1e-9);
        println!(
            "full {:.1?} vs sampled {:.1?}: {speedup:.1}x speedup",
            full.elapsed, report.elapsed
        );
        if violations > 0 {
            return Err(Box::new(CheckFailed(format!(
                "{violations} cell(s) exceeded the error bound or the {gate} gate"
            ))));
        }
        println!("check passed: every cell within its bound and the {gate} gate");
    }

    if report.failures.is_empty() {
        Ok(())
    } else {
        Err(Box::new(ArgError(format!(
            "{} sampled task(s) failed",
            report.failures.len()
        ))))
    }
}

/// Runs the hot-path benchmark harness: kernel throughput (lookups/sec) and
/// allocations-per-lookup per `(app, policy)` cell, with warmup and variance
/// reporting. With `--baseline FILE` the run gates against a committed
/// baseline (generously — default 3x — since timing is machine-dependent);
/// with `UPDATE_BENCH=1` in the environment it rewrites that baseline
/// instead.
fn cmd_bench_hotpath(args: &Args) -> Result<(), Box<dyn Error>> {
    use uopcache_bench::hotpath::{self, HotpathSpec};

    let mut spec = if args.has("quick") {
        HotpathSpec::quick()
    } else {
        HotpathSpec::full()
    };
    spec.cfg = parse_config(args)?;
    spec.config_name = args.get("config").unwrap_or("zen3").to_string();
    if let Some(list) = args.get("apps") {
        spec.apps = list
            .split(',')
            .map(parse_app)
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(list) = args.get("policies") {
        let registry = PolicyRegistry::all();
        spec.policies = list
            .split(',')
            .map(|p| {
                registry
                    .resolve(p)
                    .map(|id| id.name().to_string())
                    .map_err(ArgError)
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    spec.variant = args.get_parse("variant", spec.variant)?;
    spec.len = args.get_parse("len", spec.len)?;
    spec.warmup_passes = args.get_parse("warmup", spec.warmup_passes)?;
    spec.measured_passes = args.get_parse("passes", spec.measured_passes)?;
    if spec.measured_passes == 0 {
        return Err(Box::new(ArgError("--passes must be at least 1".into())));
    }

    let report = hotpath::run_hotpath(&spec);
    report.table().print();
    if !report.alloc_counting {
        eprintln!("note: counting allocator not installed; allocs/lookup unavailable");
    }
    let json = report.to_json();
    if let Some(path) = args.get("json") {
        std::fs::write(path, &json)?;
        println!("wrote canonical JSON to {path}");
    }

    if let Some(path) = args.get("baseline") {
        if std::env::var("UPDATE_BENCH").is_ok() {
            std::fs::write(path, &json)?;
            println!("updated baseline {path}");
            return Ok(());
        }
        let gate: f64 = args.get_parse("gate", 3.0f64)?;
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read baseline {path}: {e}")))?;
        let regressions =
            hotpath::gate_against_baseline(&json, &baseline, gate).map_err(ArgError)?;
        if regressions.is_empty() {
            println!("baseline gate passed ({gate}x, {path})");
        } else {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            return Err(Box::new(ArgError(format!(
                "{} cell(s) regressed past the {gate}x gate",
                regressions.len()
            ))));
        }
    }
    Ok(())
}

/// Replays exactly one sweep cell — same task key, same seed — with a
/// metrics recorder attached, and renders the decision stream and derived
/// metrics as ASCII tables or canonical JSON. Output is a pure function of
/// the flags (the worker count plays no part), so two invocations always
/// produce byte-identical JSON.
fn cmd_inspect(args: &Args) -> Result<(), Box<dyn Error>> {
    let app = parse_app(args.require("app")?)?;
    let cfg = parse_config(args)?;
    let config_name = args.get("config").unwrap_or("zen3").to_string();
    let id = PolicyRegistry::all()
        .resolve(args.get("policy").unwrap_or("lru"))
        .map_err(ArgError)?;
    let variant = args.get_parse("variant", 0u32)?;
    let len = args.get_parse("len", 20_000usize)?;
    let sample = args.get_parse("sample", SAMPLE_EVERY)?;
    let max_events = args.get_parse("events", 32usize)?;

    // The exact key `sweep` would give this cell, so the seed (and with it a
    // seeded policy and the sampled event subset) matches the sweep's.
    let key = TaskKey::new([
        config_name.as_str(),
        &format!("v{variant}"),
        &format!("len{len}"),
        app.name(),
        id.name(),
    ]);
    let seed = key.seed();
    let trace = build_trace(app, InputVariant::new(variant), len);
    let profiles = ProfileInputs::build(&cfg, &trace);
    let mut frontend = Frontend::builder(cfg)
        .policy(id.build(&cfg, &profiles, seed))
        .recorder(MetricsRecorder::new(Box::new(SamplingRecorder::new(
            seed, sample,
        ))))
        .build();
    let result = frontend.run(&trace);
    let policy_state = frontend.uop_cache().policy().introspect();
    let recorder = frontend
        .take_recorder()
        .expect("inspect installs a recorder");
    let metrics = recorder.metrics().cloned().unwrap_or_default();
    let offered = recorder.offered();
    let mut events = recorder.events();
    events.truncate(max_events);

    if let Some(path) = args.get("json") {
        let json = Json::Obj(vec![
            ("schema_version".to_string(), Json::U64(SCHEMA_VERSION)),
            ("kind".to_string(), Json::Str("inspect".to_string())),
            ("key".to_string(), Json::Str(key.to_string())),
            ("seed".to_string(), Json::U64(seed)),
            ("app".to_string(), Json::Str(app.name().to_string())),
            ("policy".to_string(), Json::Str(id.name().to_string())),
            ("sample_every".to_string(), Json::U64(sample)),
            ("events_offered".to_string(), Json::U64(offered)),
            (
                "summary".to_string(),
                Json::Obj(vec![
                    (
                        "uops_requested".to_string(),
                        Json::U64(result.uopc.uops_requested),
                    ),
                    ("uops_hit".to_string(), Json::U64(result.uopc.uops_hit)),
                    (
                        "uops_missed".to_string(),
                        Json::U64(result.uopc.uops_missed),
                    ),
                    ("insertions".to_string(), Json::U64(result.uopc.insertions)),
                    ("bypasses".to_string(), Json::U64(result.uopc.bypasses)),
                    ("evictions".to_string(), Json::U64(result.uopc.evicted_pws)),
                    ("cycles".to_string(), Json::U64(result.events.cycles)),
                    (
                        "retired_instructions".to_string(),
                        Json::U64(result.events.retired_instructions),
                    ),
                ]),
            ),
            (
                "events".to_string(),
                Json::Arr(events.iter().map(Event::to_json).collect()),
            ),
            ("metrics".to_string(), metrics.to_json()),
            (
                "policy_state".to_string(),
                policy_state.clone().unwrap_or(Json::Null),
            ),
        ]);
        std::fs::write(path, json.to_string())?;
        println!("wrote inspect JSON to {path}");
        return Ok(());
    }

    let mut t = Table::new(
        &format!("inspect: {} under {} ({key})", app.name(), id.name()),
        &["metric", "value"],
    );
    t.row(&["seed".into(), format!("{seed:#018x}")]);
    t.row(&[
        "uop miss rate".into(),
        format!("{:.2}%", result.uopc.uop_miss_rate() * 100.0),
    ]);
    t.row(&["insertions".into(), format!("{}", result.uopc.insertions)]);
    t.row(&["evictions".into(), format!("{}", result.uopc.evicted_pws)]);
    t.row(&["events offered".into(), format!("{offered}")]);
    t.row(&[
        format!("events sampled (1 in {sample})"),
        format!("{}", recorder.events().len()),
    ]);
    t.print();

    let mut c = Table::new("derived counters", &["counter", "value"]);
    for (name, v) in metrics.counters() {
        c.row(&[name.to_string(), format!("{v}")]);
    }
    c.print();

    let mut h = Table::new(
        "derived histograms",
        &["histogram", "samples", "sum", "mean"],
    );
    for (name, hist) in metrics.histograms() {
        h.row(&[
            name.to_string(),
            format!("{}", hist.total()),
            format!("{}", hist.sum()),
            format!("{:.2}", hist.mean()),
        ]);
    }
    h.print();

    let mut e = Table::new(
        &format!("first {} sampled events", events.len()),
        &[
            "cycle", "kind", "set", "slot", "start", "uops", "entries", "verdict",
        ],
    );
    for ev in &events {
        e.row(&[
            format!("{}", ev.cycle),
            ev.kind.as_str().to_string(),
            format!("{}", ev.set),
            ev.slot.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            format!("{:#x}", ev.start),
            format!("{}", ev.uops),
            format!("{}", ev.entries),
            ev.verdict.as_str().to_string(),
        ]);
    }
    e.print();

    if let Some(state) = policy_state {
        println!("policy state ({}):", id.name());
        println!("{state}");
    }
    Ok(())
}

/// Replays one probe trace through every registered policy, digesting each
/// full decision stream (victim sequence included), and — when `--digest`
/// supplies a captured fingerprint — names the policy that produced it.
/// Collisions are reported as ambiguous rather than resolved by guesswork;
/// streams matching no registered policy come back unknown. Seeded policies
/// (Random) are digested under seed 0, so only runs captured under that
/// convention can match them.
fn cmd_identify(args: &Args) -> Result<(), Box<dyn Error>> {
    use uopcache_offline::identify::{digest_table, identify};

    let app = parse_app(args.require("app")?)?;
    let cfg = parse_config(args)?;
    let variant = args.get_parse("variant", 0u32)?;
    let len = args.get_parse("len", 4_000usize)?;
    let trace = build_trace(app, InputVariant::new(variant), len);
    let profiles = ProfileInputs::build(&cfg, &trace);
    let candidates: Vec<(String, Box<dyn uopcache_cache::PwReplacementPolicy>)> =
        PolicyRegistry::all()
            .ids()
            .iter()
            .map(|id| (id.name().to_string(), id.build(&cfg, &profiles, 0)))
            .collect();
    let table = digest_table(cfg.uop_cache, candidates, &trace);

    if let Some(hex) = args.get("digest") {
        let target: StreamDigest = hex.parse().map_err(ArgError)?;
        let verdict = identify(target, &table);
        println!("{verdict}");
        return Ok(());
    }

    if let Some(path) = args.get("json") {
        let json = Json::Obj(vec![
            ("schema_version".to_string(), Json::U64(SCHEMA_VERSION)),
            ("kind".to_string(), Json::Str("identify".to_string())),
            ("app".to_string(), Json::Str(app.name().to_string())),
            ("variant".to_string(), Json::U64(u64::from(variant))),
            ("len".to_string(), Json::U64(len as u64)),
            (
                "digests".to_string(),
                Json::Arr(
                    table
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("policy".to_string(), Json::Str(c.name.clone())),
                                ("digest".to_string(), Json::Str(c.digest.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(path, json.to_string())?;
        println!("wrote identify JSON to {path}");
        return Ok(());
    }

    let mut t = Table::new(
        &format!(
            "decision-stream digests: {} variant {variant}, {len} accesses",
            app.name()
        ),
        &["policy", "digest"],
    );
    for c in &table {
        t.row(&[c.name.clone(), c.digest.to_string()]);
    }
    t.print();
    Ok(())
}

fn cmd_experiment(args: &Args) -> Result<(), Box<dyn Error>> {
    if let Some(jobs) = args.get("jobs") {
        sweep::set_jobs(
            jobs.parse()
                .map_err(|_| ArgError(format!("--jobs {jobs:?} is not a valid value")))?,
        );
    }
    let id = args
        .positional(1)
        .ok_or_else(|| ArgError("experiment needs an id (see list-experiments)".into()))?;
    let exp = uopcache_bench::experiments::by_id(id)
        .ok_or_else(|| ArgError(format!("unknown experiment {id:?}")))?;
    println!("{} — {}\n", exp.id, exp.caption);
    for table in (exp.run)(args.has("quick")) {
        table.print();
    }
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), Box<dyn Error>> {
    let root = args.get("root").unwrap_or(".").to_string();

    // `--graph`: dump the workspace call graph as canonical JSON and exit.
    if args.has("graph") {
        let graph = uopcache_audit::callgraph_json(Path::new(&root)).map_err(ArgError)?;
        print!("{graph}");
        return Ok(());
    }

    let allowlist_path = args
        .get("allowlist")
        .unwrap_or("audit.allowlist")
        .to_string();
    let allowlist =
        uopcache_audit::Allowlist::load(Path::new(&allowlist_path)).map_err(ArgError)?;
    let today = uopcache_audit::today_utc();
    let report =
        uopcache_audit::run_lint(Path::new(&root), &allowlist, &today).map_err(ArgError)?;
    let diags = report.diagnostics;

    // `--json`: canonical machine output (lint only), byte-stable for CI
    // diffing; the exit code still reflects the findings.
    if args.has("json") {
        print!("{}", uopcache_audit::diagnostics_json(&diags));
        if diags.is_empty() {
            return Ok(());
        }
        return Err(Box::new(CheckFailed(format!(
            "audit failed with {} problem(s)",
            diags.len()
        ))));
    }

    for d in &diags {
        eprintln!("{d}");
        // GitHub annotation format: surfaces findings on the PR diff.
        eprintln!(
            "::error file={},line={}::[{}] {}",
            d.file.display(),
            d.line,
            d.rule,
            d.message
        );
    }
    let mut failures = diags.len();
    if failures == 0 {
        println!(
            "lint: clean ({} files, {} fns, {} call edges)",
            report.files, report.functions, report.edges
        );
    } else {
        eprintln!("lint: {failures} violation(s)");
    }

    if !args.has("lint-only") {
        let mut t = Table::new("policy conformance", &["policy", "result"]);
        for r in uopcache_audit::run_conformance(8, 1_000) {
            match r.outcome {
                Ok(hooks) => t.row(&[
                    r.policy.to_string(),
                    format!("ok ({hooks} lookups checked)"),
                ]),
                Err(e) => {
                    failures += 1;
                    t.row(&[r.policy.to_string(), format!("VIOLATION: {e}")]);
                }
            }
        }
        t.print();
    }

    if failures > 0 {
        Err(Box::new(CheckFailed(format!(
            "audit failed with {failures} problem(s)"
        ))))
    } else {
        Ok(())
    }
}

/// Resolves one `host:port` flag value to a socket address.
fn resolve_addr(flag: &str, value: &str) -> Result<std::net::SocketAddr, ArgError> {
    use std::net::ToSocketAddrs;
    value
        .to_socket_addrs()
        .map_err(|e| ArgError(format!("--{flag} {value:?} does not resolve: {e}")))?
        .next()
        .ok_or_else(|| ArgError(format!("--{flag} {value:?} resolves to no address")))
}

/// Runs the simulation daemon until a client sends `shutdown` and the drain
/// completes. Prints the bound address first (an ephemeral `--addr :0` bind
/// is resolved), so scripts can read the port from the first stdout line.
fn cmd_serve(args: &Args) -> Result<(), Box<dyn Error>> {
    let job_timeout = match args.get("job-timeout-ms") {
        None => None,
        Some(_) => Some(std::time::Duration::from_millis(
            args.get_parse("job-timeout-ms", 0u64)?,
        )),
    };
    let cfg = ServerConfig::builder()
        .addr(resolve_addr(
            "addr",
            args.get("addr").unwrap_or("127.0.0.1:7743"),
        )?)
        .queue_capacity(args.get_parse("queue", 16usize)?)
        .shards(args.get_parse("shards", 1usize)?)
        .jobs(args.get_parse("jobs", 0usize)?)
        .job_timeout(job_timeout)
        .job_retention(args.get_parse("retention", uopcache_serve::DEFAULT_JOB_RETENTION)?)
        .build();
    let server = Server::bind(cfg)?;
    println!("serving on {}", server.local_addr()?);
    server.run()?;
    println!("drained; exiting");
    Ok(())
}

/// Runs a consistent-hash router across several daemons until a client sends
/// `shutdown` and the drain completes. Speaks the same protocol as `serve`,
/// so `submit`/`status`/`stats`/`shutdown` all work against it unchanged.
fn cmd_route(args: &Args) -> Result<(), Box<dyn Error>> {
    let backends = args
        .require("backends")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| resolve_addr("backends", s))
        .collect::<Result<Vec<_>, _>>()?;
    let cfg = RouterConfig::builder()
        .addr(resolve_addr(
            "addr",
            args.get("addr").unwrap_or("127.0.0.1:7744"),
        )?)
        .backends(backends)
        .queue_capacity(args.get_parse("queue", 16usize)?)
        .replicas(args.get_parse("replicas", 64usize)?)
        .health_interval(std::time::Duration::from_millis(
            args.get_parse("health-interval-ms", 2_000u64)?,
        ))
        .retry_rounds(args.get_parse("retry-rounds", 3usize)?)
        .job_retention(args.get_parse("retention", uopcache_serve::DEFAULT_JOB_RETENTION)?)
        .build();
    let router = Router::bind(cfg)?;
    let n = router.backend_count();
    println!("routing on {} across {n} backend(s)", router.local_addr()?);
    router.run()?;
    println!("drained; exiting");
    Ok(())
}

fn client_for(args: &Args) -> Result<Client, Box<dyn Error>> {
    let addr = args.require("addr")?;
    Ok(Client::connect(addr, std::time::Duration::from_secs(5))?)
}

/// Submits one sweep job to a daemon. By default waits for the result and
/// (with `--json FILE`) writes the canonical report — byte-identical to
/// `uopcache sweep --json` for the same flags, whatever the server's worker
/// count. `--no-wait` enqueues and returns the job id immediately.
fn cmd_submit(args: &Args) -> Result<(), Box<dyn Error>> {
    let spec = spec_from_args(args)?;
    let mut client = client_for(args)?;
    let id = args.get("id");
    if args.has("no-wait") {
        let (job_id, deduped) = client.submit(&spec, id, std::time::Duration::from_secs(30))?;
        println!(
            "job {job_id} {}",
            if deduped { "already known" } else { "accepted" }
        );
        return Ok(());
    }
    let timeout = std::time::Duration::from_millis(args.get_parse("timeout-ms", 600_000u64)?);
    let outcome = client.submit_and_wait(&spec, id, timeout)?;
    println!(
        "job {} {}done",
        outcome.job_id,
        if outcome.deduped { "(deduped) " } else { "" }
    );
    if let Some(path) = args.get("json") {
        std::fs::write(path, outcome.report.to_string())?;
        println!("wrote canonical JSON to {path}");
    } else {
        println!("{}", outcome.report);
    }
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), Box<dyn Error>> {
    let job_id = args.require("job")?;
    let mut client = client_for(args)?;
    let state = client.status(job_id, std::time::Duration::from_secs(30))?;
    println!("job {job_id}: {state}");
    Ok(())
}

/// `stats --addr H:P` — the served counterpart of the trace `stats` command.
fn cmd_server_stats(args: &Args) -> Result<(), Box<dyn Error>> {
    let mut client = client_for(args)?;
    let stats = client.stats(std::time::Duration::from_secs(30))?;
    println!("{stats}");
    Ok(())
}

fn cmd_shutdown(args: &Args) -> Result<(), Box<dyn Error>> {
    let mut client = client_for(args)?;
    let queued = client.shutdown(std::time::Duration::from_secs(30))?;
    println!("draining ({queued} job(s) still queued)");
    Ok(())
}

fn cmd_list_experiments() -> Result<(), Box<dyn Error>> {
    let mut t = Table::new("experiments", &["id", "caption"]);
    for exp in uopcache_bench::experiments::all() {
        t.row(&[exp.id.to_string(), exp.caption.to_string()]);
    }
    t.print();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> Result<(), Box<dyn Error>> {
        dispatch(
            &line
                .split_whitespace()
                .map(String::from)
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn apps_and_listing_work() {
        run("apps").unwrap();
        run("list-experiments").unwrap();
    }

    #[test]
    fn unknown_commands_error() {
        assert!(run("frobnicate").is_err());
        assert!(run("").is_err());
        assert!(run("experiment nope").is_err());
    }

    #[test]
    fn gen_stats_simulate_profile_compare_round_trip() {
        let dir = std::env::temp_dir();
        let trc = dir.join("uopcache_cli_test.trc");
        let hints = dir.join("uopcache_cli_test_hints.json");
        run(&format!(
            "gen --app postgres --variant 1 --len 3000 -o {}",
            trc.display()
        ))
        .unwrap();
        run(&format!("stats -i {}", trc.display())).unwrap();
        run(&format!("simulate -i {} --policy furbys", trc.display())).unwrap();
        run(&format!(
            "simulate -i {} --policy lru --entries 1024",
            trc.display()
        ))
        .unwrap();
        run(&format!(
            "profile -i {} --oracle belady -o {}",
            trc.display(),
            hints.display()
        ))
        .unwrap();
        run(&format!("compare -i {}", trc.display())).unwrap();
        assert!(hints.exists());
        let _ = std::fs::remove_file(trc);
        let _ = std::fs::remove_file(hints);
    }

    #[test]
    fn sweep_runs_and_writes_canonical_json() {
        let json = std::env::temp_dir().join("uopcache_cli_sweep.json");
        run(&format!(
            "sweep --apps kafka --policies lru,random --len 1500 --jobs 2 --json {}",
            json.display()
        ))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"policy\":\"Random\""), "{body}");
        let _ = std::fs::remove_file(json);
    }

    #[test]
    fn sweep_rejects_unknown_inputs() {
        assert!(run("sweep --apps nope --len 1000").is_err());
        assert!(run("sweep --apps kafka --policies belady --len 1000").is_err());
        assert!(run("sweep --apps kafka --jobs zero --len 1000").is_err());
    }

    #[test]
    fn policy_rosters_resolve_any_case() {
        let online = PolicyRegistry::online();
        assert_eq!(online.resolve("FURBYS").unwrap().name(), "FURBYS");
        assert_eq!(online.resolve("ship++").unwrap().name(), "SHiP++");
        assert!(
            online.resolve("belady").is_err(),
            "offline policies are not online options"
        );
        assert!(
            online.resolve("random").is_err(),
            "the seeded control is sweep/inspect-only"
        );
    }

    #[test]
    fn identify_digests_every_registered_policy() {
        let json = std::env::temp_dir().join("uopcache_cli_identify.json");
        run(&format!(
            "identify --app kafka --len 1200 --json {}",
            json.display()
        ))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"kind\":\"identify\""), "{body}");
        for id in PolicyId::ALL {
            assert!(
                body.contains(&format!("\"policy\":\"{}\"", id.name())),
                "missing {} in {body}",
                id.name()
            );
        }
        let _ = std::fs::remove_file(json);
        // A digest that matches nothing comes back unknown (still success —
        // the question was answered); malformed digests are rejected.
        run(&format!(
            "identify --app kafka --len 1200 --digest {}",
            "0".repeat(32)
        ))
        .unwrap();
        assert!(run("identify --app kafka --len 1200 --digest nothex").is_err());
        assert!(run("identify --len 1000").is_err(), "--app required");
    }

    #[test]
    fn sweep_with_set_dueling_prints_placement_summary() {
        run("sweep --apps kafka --policies lru,srrip,set-dueling --len 1500 --jobs 2").unwrap();
    }

    #[test]
    fn inspect_writes_schema_versioned_json_and_renders_tables() {
        let json = std::env::temp_dir().join("uopcache_cli_inspect.json");
        run(&format!(
            "inspect --app kafka --policy lru --len 1500 --json {}",
            json.display()
        ))
        .unwrap();
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.starts_with("{\"schema_version\":1,"), "{body}");
        assert!(body.contains("\"kind\":\"inspect\""), "{body}");
        assert!(body.contains("\"events\":["), "{body}");
        assert!(body.contains("\"histograms\""), "{body}");
        let _ = std::fs::remove_file(json);
        run("inspect --app kafka --len 1500 --events 5").unwrap();
        assert!(
            run("inspect --policy lru --len 1000").is_err(),
            "--app required"
        );
        assert!(run("inspect --app kafka --policy belady --len 1000").is_err());
    }
}
