//! `uopcache` — command-line driver for the micro-op cache simulator.
//!
//! ```text
//! uopcache gen --app kafka --variant 0 --len 100000 -o kafka.trc
//! uopcache stats -i kafka.trc
//! uopcache simulate -i kafka.trc --policy furbys
//! uopcache profile -i kafka.trc --oracle flack -o hints.json
//! uopcache compare -i kafka.trc
//! uopcache experiment fig08 [--quick]
//! uopcache apps
//! ```

mod args;
mod commands;

use std::process::ExitCode;

/// The binary counts heap allocations so `bench-hotpath` can report
/// allocations-per-lookup (the kernel's headline zero-allocation property).
/// The wrapper delegates straight to `System` with two relaxed atomic
/// increments per call — unobservable next to the allocation itself.
#[global_allocator]
static ALLOC: uopcache_bench::hotpath::CountingAllocator =
    uopcache_bench::hotpath::CountingAllocator::new();

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // A failed check already printed its findings — the usage text
            // is only for argument mistakes.
            if !e.is::<args::CheckFailed>() {
                eprintln!();
                eprintln!("{}", commands::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
