//! Per-candidate metrics for the set-dueling meta-policy.
//!
//! The dueling policy (in `uopcache-policies`) counts leader-set hits and
//! misses, PSEL values and phase wins per candidate; this module is the
//! observable shape of those counters — canonical JSON, stable field order —
//! so `uopcache inspect` and tests can read a duel without knowing the
//! policy's internals.

use uopcache_model::json::Json;

/// One candidate's view of the duel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateDuel {
    /// The candidate policy's canonical name.
    pub name: String,
    /// How many leader sets sample this candidate.
    pub leader_sets: u32,
    /// Hits observed in this candidate's leader sets.
    pub leader_hits: u64,
    /// Misses (insert attempts) observed in this candidate's leader sets.
    pub leader_misses: u64,
    /// Phases this candidate ended as the winner.
    pub phases_won: u64,
    /// The candidate's PSEL counter at the last reading (misses minus hits,
    /// saturating at the configured width).
    pub psel: u16,
}

impl CandidateDuel {
    /// Canonical JSON rendering (fixed field order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            (
                "leader_sets".to_string(),
                Json::U64(u64::from(self.leader_sets)),
            ),
            ("leader_hits".to_string(), Json::U64(self.leader_hits)),
            ("leader_misses".to_string(), Json::U64(self.leader_misses)),
            ("phases_won".to_string(), Json::U64(self.phases_won)),
            ("psel".to_string(), Json::U64(u64::from(self.psel))),
        ])
    }
}

/// A complete duel snapshot: configuration, progress, and one
/// [`CandidateDuel`] row per candidate (in candidate order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DuelStats {
    /// Leader sets sampled per candidate (the configured K).
    pub k: u32,
    /// Lookups per phase.
    pub phase_len: u64,
    /// Completed phases.
    pub phases: u64,
    /// How many phase boundaries changed the winner.
    pub switches: u64,
    /// The currently winning candidate's name.
    pub winner: String,
    /// Per-candidate counters.
    pub candidates: Vec<CandidateDuel>,
}

impl DuelStats {
    /// Canonical JSON rendering (fixed field order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("k".to_string(), Json::U64(u64::from(self.k))),
            ("phase_len".to_string(), Json::U64(self.phase_len)),
            ("phases".to_string(), Json::U64(self.phases)),
            ("switches".to_string(), Json::U64(self.switches)),
            ("winner".to_string(), Json::Str(self.winner.clone())),
            (
                "candidates".to_string(),
                Json::Arr(self.candidates.iter().map(CandidateDuel::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DuelStats {
        DuelStats {
            k: 2,
            phase_len: 1024,
            phases: 3,
            switches: 1,
            winner: "SRRIP".to_string(),
            candidates: vec![
                CandidateDuel {
                    name: "LRU".to_string(),
                    leader_sets: 2,
                    leader_hits: 10,
                    leader_misses: 20,
                    phases_won: 1,
                    psel: 10,
                },
                CandidateDuel {
                    name: "SRRIP".to_string(),
                    leader_sets: 2,
                    leader_hits: 25,
                    leader_misses: 5,
                    phases_won: 2,
                    psel: 0,
                },
            ],
        }
    }

    #[test]
    fn json_is_canonical_and_ordered() {
        let s = sample().to_json().to_string();
        let k_pos = s.find("\"k\"").expect("k field");
        let winner_pos = s.find("\"winner\"").expect("winner field");
        let cands_pos = s.find("\"candidates\"").expect("candidates field");
        assert!(k_pos < winner_pos && winner_pos < cands_pos, "{s}");
        assert_eq!(s, sample().to_json().to_string(), "rendering is stable");
    }

    #[test]
    fn candidate_rows_render_in_order() {
        let s = sample().to_json().to_string();
        let lru = s.find("\"LRU\"").expect("LRU row");
        let srrip = s.rfind("\"SRRIP\"").expect("SRRIP row");
        assert!(lru < srrip);
    }
}
