//! The structured event stream: one record per replacement-relevant
//! occurrence inside the micro-op cache.

use uopcache_model::json::Json;

/// What happened.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum EventKind {
    /// A lookup served entirely from the cache.
    Hit,
    /// A lookup whose front was served by a shorter resident window.
    PartialHit,
    /// A lookup that found nothing resident.
    Miss,
    /// A decoded window was written into the cache.
    Insert,
    /// A resident window was evicted (by replacement, upgrade, or replay).
    Evict,
    /// An insertion was declined (policy bypass or structural limit).
    Bypass,
    /// A resident window was invalidated by L1i inclusion.
    Invalidate,
}

impl EventKind {
    /// The canonical lower-case label used in JSON and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Hit => "hit",
            EventKind::PartialHit => "partial-hit",
            EventKind::Miss => "miss",
            EventKind::Insert => "insert",
            EventKind::Evict => "evict",
            EventKind::Bypass => "bypass",
            EventKind::Invalidate => "invalidate",
        }
    }
}

/// What the replacement policy said about the event (where a policy was
/// consulted at all).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub enum Verdict {
    /// No policy decision was involved (hits, misses, plain insertions).
    #[default]
    None,
    /// The victim came from the policy's primary selection logic.
    Primary,
    /// The victim came from the policy's fallback path (e.g. FURBYS
    /// degrading to SRRIP on a pitfall).
    Fallback,
    /// The policy chose to bypass the insertion.
    PolicyBypass,
    /// The window exceeded the per-PW entry limit and streamed from the
    /// decoder instead (a structural bypass, not a policy decision).
    TooLarge,
    /// A shorter same-start window was removed to upgrade it in place.
    Upgrade,
}

impl Verdict {
    /// The canonical lower-case label used in JSON and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::None => "none",
            Verdict::Primary => "primary",
            Verdict::Fallback => "fallback",
            Verdict::PolicyBypass => "policy-bypass",
            Verdict::TooLarge => "too-large",
            Verdict::Upgrade => "upgrade",
        }
    }
}

/// One replacement-relevant occurrence.
///
/// Events are small `Copy` records: the frontend cycle they happened on, the
/// set (and slot, where one is involved) they touched, the prediction window
/// identified by its start address / micro-op count / entry footprint, and
/// the policy's [`Verdict`].
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Event {
    /// Frontend cycle (or the cache's own access counter when the cache is
    /// driven standalone, outside the timed frontend).
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// The set index the event touched.
    pub set: u32,
    /// The slot within the set, where a specific slot was involved
    /// (hits, insertions, evictions, invalidations).
    pub slot: Option<u8>,
    /// Start address of the prediction window.
    pub start: u64,
    /// Micro-ops in the window (as requested for lookups, as stored for
    /// insertions and evictions).
    pub uops: u32,
    /// Micro-op cache entries the window occupies.
    pub entries: u32,
    /// The policy's verdict, where a policy was consulted.
    pub verdict: Verdict,
}

impl Event {
    /// The canonical JSON rendering: fixed field order, `slot` as `null`
    /// when no slot was involved.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycle".to_string(), Json::U64(self.cycle)),
            (
                "kind".to_string(),
                Json::Str(self.kind.as_str().to_string()),
            ),
            ("set".to_string(), Json::U64(u64::from(self.set))),
            (
                "slot".to_string(),
                match self.slot {
                    Some(s) => Json::U64(u64::from(s)),
                    None => Json::Null,
                },
            ),
            ("start".to_string(), Json::U64(self.start)),
            ("uops".to_string(), Json::U64(u64::from(self.uops))),
            ("entries".to_string(), Json::U64(u64::from(self.entries))),
            (
                "verdict".to_string(),
                Json::Str(self.verdict.as_str().to_string()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_fixed_field_order() {
        let ev = Event {
            cycle: 7,
            kind: EventKind::Evict,
            set: 3,
            slot: Some(2),
            start: 0x1040,
            uops: 12,
            entries: 2,
            verdict: Verdict::Fallback,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"cycle":7,"kind":"evict","set":3,"slot":2,"start":4160,"uops":12,"entries":2,"verdict":"fallback"}"#
        );
    }

    #[test]
    fn missing_slot_serialises_as_null() {
        let ev = Event {
            cycle: 0,
            kind: EventKind::Miss,
            set: 0,
            slot: None,
            start: 0x40,
            uops: 4,
            entries: 1,
            verdict: Verdict::None,
        };
        assert!(ev.to_json().to_string().contains("\"slot\":null"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventKind::PartialHit.as_str(), "partial-hit");
        assert_eq!(Verdict::PolicyBypass.as_str(), "policy-bypass");
        assert_eq!(Verdict::default(), Verdict::None);
    }
}
