//! The metrics registry: named counters and fixed-bucket histograms that
//! serialise canonically and merge associatively.
//!
//! Associativity is what makes the registry safe under the parallel
//! experiment engine: per-task registries are merged in **key order** by the
//! caller, and because `merge` is plain element-wise addition over identical
//! fixed bucket edges, the merged registry is independent of how the work
//! was scheduled.

use std::collections::BTreeMap;
use uopcache_model::json::Json;

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v <= edges[i]` (and greater than the previous
/// edge); one implicit overflow bucket counts everything above the last
/// edge. Edges are fixed at construction, which is what makes two
/// histograms of the same metric mergeable by bucket-wise addition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// A histogram with explicit inclusive upper bucket edges (must be
    /// strictly increasing; an overflow bucket is added automatically).
    pub fn with_edges(edges: Vec<u64>) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        let buckets = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; buckets],
            total: 0,
            sum: 0,
        }
    }

    /// A power-of-two histogram: edges `1, 2, 4, ..., 2^(buckets-1)`.
    pub fn log2(buckets: u32) -> Self {
        Self::with_edges((0..buckets).map(|b| 1u64 << b).collect())
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// The inclusive upper bucket edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts (one more than `edges`: the last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating), for mean derivation.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Adds another histogram of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket edges differ — merging histograms of different
    /// metrics is a programming error, not a data condition.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.edges, other.edges,
            "cannot merge histograms with different bucket edges"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Canonical JSON: `{"edges":[...],"counts":[...],"total":N,"sum":N}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "edges".to_string(),
                Json::Arr(self.edges.iter().map(|&e| Json::U64(e)).collect()),
            ),
            (
                "counts".to_string(),
                Json::Arr(self.counts.iter().map(|&c| Json::U64(c)).collect()),
            ),
            ("total".to_string(), Json::U64(self.total)),
            ("sum".to_string(), Json::U64(self.sum)),
        ])
    }
}

/// Named counters and histograms.
///
/// Keys are ordered (`BTreeMap`), so iteration — and therefore JSON — is
/// canonical regardless of the order metrics were first touched in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a named counter (creating it at zero).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by; // audit:allow(hot-path-alloc) — interns the counter name on first touch; warmed counters hit the map
    }

    /// Increments a named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// The value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a named gauge to an instantaneous level (queue depth, live
    /// connections). Unlike counters, gauges overwrite rather than add.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The level of a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Registers a histogram under `name` if absent, then returns it for
    /// observation. The shape of an existing histogram is kept.
    pub fn histogram_with(
        &mut self,
        name: &str,
        make: impl FnOnce() -> Histogram,
    ) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_insert_with(make)
    }

    /// Records one sample into a histogram registered via
    /// [`histogram_with`](Self::histogram_with).
    ///
    /// # Panics
    ///
    /// Panics if no histogram of that name was registered.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram {name:?} was never registered"))
            .observe(value);
    }

    /// A registered histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one: counters add, histograms add
    /// bucket-wise, names absent on either side are kept. Associative and
    /// commutative, so any merge order yields the same registry.
    ///
    /// # Panics
    ///
    /// Panics if a histogram name is present on both sides with different
    /// bucket edges.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        // Gauges merge by maximum: "the highest level either side saw" is
        // the only instantaneous combination that stays associative and
        // commutative, which the parallel engine's merge-order freedom needs.
        for (name, &v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
    }

    /// Canonical JSON: counters, then gauges (only when any were set — a
    /// gauge-free registry keeps its historical two-key shape byte-for-byte),
    /// then histograms, each section sorted by name.
    pub fn to_json(&self) -> Json {
        let mut obj = Vec::with_capacity(3);
        obj.push((
            "counters".to_string(),
            Json::Obj(
                self.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::U64(v)))
                    .collect(),
            ),
        ));
        if !self.gauges.is_empty() {
            obj.push((
                "gauges".to_string(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::U64(v)))
                        .collect(),
                ),
            ));
        }
        obj.push((
            "histograms".to_string(),
            Json::Obj(
                self.histograms
                    .iter()
                    .map(|(k, h)| (k.clone(), h.to_json()))
                    .collect(),
            ),
        ));
        Json::Obj(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::with_edges(vec![1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.sum(), 1045);
    }

    #[test]
    fn log2_edges_double() {
        let h = Histogram::log2(5);
        assert_eq!(h.edges(), &[1, 2, 4, 8, 16]);
        assert_eq!(h.counts().len(), 6);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let mut r = MetricsRegistry::new();
            r.add("n", vals.len() as u64);
            r.histogram_with("h", || Histogram::log2(4));
            for &v in vals {
                r.observe("h", v);
            }
            r
        };
        let (a, b, c) = (mk(&[1, 2]), mk(&[3]), mk(&[9, 100]));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.counter("n"), 5);
        assert_eq!(left.histogram("h").map(Histogram::total), Some(5));
    }

    #[test]
    #[should_panic(expected = "different bucket edges")]
    fn merging_mismatched_edges_panics() {
        let mut a = Histogram::log2(3);
        a.merge(&Histogram::log2(4));
    }

    #[test]
    fn json_is_sorted_by_name() {
        let mut r = MetricsRegistry::new();
        r.inc("zeta");
        r.inc("alpha");
        let s = r.to_json().to_string();
        let (za, aa) = (s.find("zeta").expect("zeta"), s.find("alpha").expect("a"));
        assert!(aa < za, "{s}");
    }

    #[test]
    fn mean_handles_empty() {
        let h = Histogram::log2(3);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn gauges_merge_by_max_and_serialise_only_when_set() {
        // A gauge-free registry keeps the historical two-key JSON shape.
        let mut plain = MetricsRegistry::new();
        plain.inc("n");
        assert!(!plain.to_json().to_string().contains("gauges"));

        let mut a = MetricsRegistry::new();
        a.set_gauge("depth", 3);
        a.set_gauge("depth", 1); // overwrites, not adds
        let mut b = MetricsRegistry::new();
        b.set_gauge("depth", 7);
        b.set_gauge("conns", 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "gauge merge must be commutative");
        assert_eq!(ab.gauge("depth"), 7, "merge keeps the high-water mark");
        assert_eq!(ab.gauge("conns"), 2);
        assert_eq!(ab.gauge("never_set"), 0);
        let s = ab.to_json().to_string();
        assert!(s.contains("\"gauges\":{\"conns\":2,\"depth\":7}"), "{s}");
    }
}
