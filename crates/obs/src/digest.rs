//! Decision-stream digests: a compact, order-sensitive fingerprint of a
//! cache run's full event sequence.
//!
//! The digest is two FNV-1a hashes over a canonical allocation-free binary
//! encoding of each event (fixed field order, little-endian integers,
//! static label bytes for the enums): one over *every* event, and one over
//! eviction/invalidation events only. The second component pins the actual
//! victims, so two policies whose verdict sequences happen to coincide
//! still cannot collide unless they evicted the same windows in the same
//! order. The differential test wall commits these digests under
//! `tests/golden/`, and the offline `identify` pass matches captured
//! digests against every registered policy. Folding allocates nothing, so
//! a [`DigestRecorder`] can sit on the zero-allocation hot path.

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Folds one event into `h`: fixed field order, little-endian integers,
/// the enums' static labels, and an explicit presence byte for `slot` —
/// canonical and injective per event, with no heap traffic.
fn fold_event(h: &mut u64, ev: &Event) {
    fnv1a(h, &ev.cycle.to_le_bytes());
    fnv1a(h, ev.kind.as_str().as_bytes());
    fnv1a(h, &ev.set.to_le_bytes());
    match ev.slot {
        Some(s) => fnv1a(h, &[1, s]),
        None => fnv1a(h, &[0, 0]),
    }
    fnv1a(h, &ev.start.to_le_bytes());
    fnv1a(h, &ev.uops.to_le_bytes());
    fnv1a(h, &ev.entries.to_le_bytes());
    fnv1a(h, ev.verdict.as_str().as_bytes());
}

/// A two-component fingerprint of a decision stream.
///
/// Rendered as 32 hex characters (`events` then `victims`); parses back
/// losslessly, so digests survive a trip through JSON reports and CLI flags.
///
/// # Examples
///
/// ```
/// use uopcache_obs::digest::StreamDigest;
///
/// let d = StreamDigest::from_events(&[]);
/// let back: StreamDigest = d.to_string().parse().expect("round-trips");
/// assert_eq!(d, back);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct StreamDigest {
    /// FNV-1a over the canonical encoding of every event, in stream order.
    pub events: u64,
    /// FNV-1a over eviction and invalidation events only — the victim
    /// sequence, immune to verdict-only collisions.
    pub victims: u64,
}

impl StreamDigest {
    /// Digests a complete event slice.
    pub fn from_events(events: &[Event]) -> Self {
        let mut d = DigestRecorder::new();
        for ev in events {
            d.record(ev);
        }
        d.digest()
    }
}

impl std::fmt::Display for StreamDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.events, self.victims)
    }
}

impl std::str::FromStr for StreamDigest {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!(
                "digest must be 32 hex characters, got {:?} ({} chars)",
                s,
                s.len()
            ));
        }
        let parse = |hex: &str| u64::from_str_radix(hex, 16).map_err(|e| e.to_string());
        Ok(StreamDigest {
            events: parse(&s[..16])?,
            victims: parse(&s[16..])?,
        })
    }
}

/// A [`Recorder`] that folds the stream into a [`StreamDigest`] on the fly,
/// retaining no events — constant memory however long the run.
#[derive(Clone, Debug)]
pub struct DigestRecorder {
    events: u64,
    victims: u64,
    offered: u64,
}

impl Default for DigestRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestRecorder {
    /// A fresh digest (the FNV offset basis for both components).
    pub fn new() -> Self {
        DigestRecorder {
            events: FNV_OFFSET,
            victims: FNV_OFFSET,
            offered: 0,
        }
    }

    /// The digest of everything recorded so far.
    pub fn digest(&self) -> StreamDigest {
        StreamDigest {
            events: self.events,
            victims: self.victims,
        }
    }
}

impl Recorder for DigestRecorder {
    fn record(&mut self, ev: &Event) {
        self.offered += 1;
        fold_event(&mut self.events, ev);
        if matches!(ev.kind, EventKind::Evict | EventKind::Invalidate) {
            fold_event(&mut self.victims, ev);
        }
    }

    fn events(&self) -> Vec<Event> {
        Vec::new()
    }

    fn offered(&self) -> u64 {
        self.offered
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Verdict;

    fn ev(kind: EventKind, start: u64) -> Event {
        Event {
            cycle: 7,
            kind,
            set: 3,
            slot: Some(1),
            start,
            uops: 4,
            entries: 1,
            verdict: Verdict::None,
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let stream = [
            ev(EventKind::Miss, 0x100),
            ev(EventKind::Insert, 0x100),
            ev(EventKind::Evict, 0x140),
        ];
        let mut rec = DigestRecorder::new();
        for e in &stream {
            rec.record(e);
        }
        assert_eq!(rec.digest(), StreamDigest::from_events(&stream));
        assert_eq!(rec.offered(), 3);
    }

    #[test]
    fn victim_component_ignores_non_evictions() {
        let evict = ev(EventKind::Evict, 0x140);
        let a = StreamDigest::from_events(&[ev(EventKind::Miss, 0x100), evict]);
        let b = StreamDigest::from_events(&[ev(EventKind::Hit, 0x200), evict]);
        assert_ne!(a.events, b.events);
        assert_eq!(a.victims, b.victims);
    }

    #[test]
    fn different_victims_split_equal_verdict_streams() {
        let a = StreamDigest::from_events(&[ev(EventKind::Evict, 0x140)]);
        let b = StreamDigest::from_events(&[ev(EventKind::Evict, 0x180)]);
        assert_ne!(a.victims, b.victims);
    }

    #[test]
    fn display_parse_round_trip() {
        let d = StreamDigest::from_events(&[ev(EventKind::Evict, 0x140)]);
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(s.parse::<StreamDigest>(), Ok(d));
        assert!("xyz".parse::<StreamDigest>().is_err());
        assert!("g".repeat(32).parse::<StreamDigest>().is_err());
    }
}
