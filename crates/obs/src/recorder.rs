//! Recorder sinks: where the cache's event stream goes.
//!
//! The cache emits every replacement-relevant [`Event`] into a [`Recorder`].
//! What happens next is the recorder's business: [`NullRecorder`] drops
//! everything (the zero-cost default), [`RingRecorder`] keeps the last *N*,
//! [`SamplingRecorder`] keeps a deterministic 1-in-*k* subset, and
//! [`MetricsRecorder`] folds the stream into a [`MetricsRegistry`] before
//! forwarding to an inner sink.

use std::collections::VecDeque;
use uopcache_model::hash::FastHashMap;

use crate::event::{Event, EventKind, Verdict};
use crate::metrics::{Histogram, MetricsRegistry};
use uopcache_exec::seed::splitmix64;

/// A sink for the cache's event stream.
///
/// Implementations must be deterministic: whether an event is retained may
/// depend only on the event itself, the events seen before it, and
/// construction-time parameters (capacity, seed) — never on wall time or
/// thread identity. That is what lets instrumented sweeps stay byte-identical
/// across `--jobs` counts.
pub trait Recorder: Send {
    /// Offers one event to the sink.
    fn record(&mut self, ev: &Event);

    /// The events this sink retained, oldest first.
    fn events(&self) -> Vec<Event>;

    /// How many events were offered (retained or not).
    fn offered(&self) -> u64;

    /// The metrics this sink derived, if it derives any.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }

    /// A downcast hook for callers that installed a concrete sink behind
    /// `Box<dyn Recorder>` and need it back out (the offline `identify`
    /// pass retrieves its [`DigestRecorder`](crate::digest::DigestRecorder)
    /// this way). Sinks whose state is fully captured by [`events`] may keep
    /// the `None` default.
    ///
    /// [`events`]: Recorder::events
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Retains nothing. The default sink; the cache's emit path short-circuits
/// on it so uninstrumented runs pay only a null-check.
#[derive(Clone, Debug, Default)]
pub struct NullRecorder {
    offered: u64,
}

impl NullRecorder {
    /// A recorder that drops every event.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Recorder for NullRecorder {
    fn record(&mut self, _ev: &Event) {
        self.offered += 1;
    }

    fn events(&self) -> Vec<Event> {
        Vec::new()
    }

    fn offered(&self) -> u64 {
        self.offered
    }
}

/// Keeps the last `capacity` events in a bounded ring.
#[derive(Clone, Debug)]
pub struct RingRecorder {
    ring: VecDeque<Event>,
    capacity: usize,
    offered: u64,
}

impl RingRecorder {
    /// A ring that retains at most `capacity` events (the newest win).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            offered: 0,
        }
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, ev: &Event) {
        self.offered += 1;
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(*ev); // audit:allow(hot-path-alloc) — ring popped at capacity above; warmed capacity is stable
    }

    fn events(&self) -> Vec<Event> {
        self.ring.iter().copied().collect()
    }

    fn offered(&self) -> u64 {
        self.offered
    }
}

/// Keeps a deterministic 1-in-`every` subset of the stream.
///
/// Whether event number `i` is retained depends only on the construction
/// seed and `i`: it is kept when `splitmix64(seed ^ i) % every == 0`, using
/// the same SplitMix64 derivation the experiment engine uses for task seeds.
/// Seeding the recorder from the task's own key therefore makes the retained
/// subset a pure function of the task — identical whether the task ran
/// serially or on a stolen worker slot.
#[derive(Clone, Debug)]
pub struct SamplingRecorder {
    seed: u64,
    every: u64,
    kept: Vec<Event>,
    offered: u64,
}

impl SamplingRecorder {
    /// A sampler keeping roughly one event in `every` (minimum 1, meaning
    /// keep everything), decided by `seed`.
    pub fn new(seed: u64, every: u64) -> Self {
        SamplingRecorder {
            seed,
            every: every.max(1),
            kept: Vec::new(),
            offered: 0,
        }
    }

    /// The sampling period (1 keeps everything).
    pub fn every(&self) -> u64 {
        self.every
    }
}

impl Recorder for SamplingRecorder {
    fn record(&mut self, ev: &Event) {
        let index = self.offered;
        self.offered += 1;
        if splitmix64(self.seed ^ index).is_multiple_of(self.every) {
            self.kept.push(*ev); // audit:allow(hot-path-alloc) — sampled observability sink, off in the timed kernel (obs feature)
        }
    }

    fn events(&self) -> Vec<Event> {
        self.kept.clone()
    }

    fn offered(&self) -> u64 {
        self.offered
    }
}

/// Histogram bucket shapes shared by every [`MetricsRecorder`], so
/// per-task registries always merge cleanly.
fn reuse_distance_hist() -> Histogram {
    Histogram::log2(20)
}
fn pw_length_hist() -> Histogram {
    Histogram::with_edges((1..=16).collect())
}
fn set_occupancy_hist() -> Histogram {
    Histogram::with_edges((0..=16).collect())
}
fn eviction_age_hist() -> Histogram {
    Histogram::log2(24)
}

/// Folds the event stream into a [`MetricsRegistry`] and forwards every
/// event to an inner sink.
///
/// Derived counters: `hits`, `partial_hits`, `misses`, `insertions`,
/// `evictions`, `fallback_evictions`, `upgrades`, `bypasses`,
/// `invalidations`. Derived histograms:
///
/// * `reuse_distance` — lookups between consecutive lookups of the same
///   window start;
/// * `pw_length` — micro-ops per inserted prediction window;
/// * `set_occupancy` — live windows in a set, sampled at each insertion;
/// * `eviction_age` — cycles a window stayed resident before eviction or
///   invalidation.
pub struct MetricsRecorder {
    inner: Box<dyn Recorder>,
    registry: MetricsRegistry,
    last_lookup: FastHashMap<u64, u64>,
    inserted_at: FastHashMap<(u32, u64), u64>,
    occupancy: FastHashMap<u32, u64>,
    lookups: u64,
}

impl MetricsRecorder {
    /// Wraps `inner`, deriving metrics from everything that passes through.
    pub fn new(inner: Box<dyn Recorder>) -> Self {
        let mut registry = MetricsRegistry::new();
        registry.histogram_with("reuse_distance", reuse_distance_hist);
        registry.histogram_with("pw_length", pw_length_hist);
        registry.histogram_with("set_occupancy", set_occupancy_hist);
        registry.histogram_with("eviction_age", eviction_age_hist);
        MetricsRecorder {
            inner,
            registry,
            last_lookup: FastHashMap::default(),
            inserted_at: FastHashMap::default(),
            occupancy: FastHashMap::default(),
            lookups: 0,
        }
    }

    /// The derived registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the recorder, returning the registry and the inner sink.
    pub fn into_parts(self) -> (MetricsRegistry, Box<dyn Recorder>) {
        (self.registry, self.inner)
    }

    fn on_lookup(&mut self, ev: &Event) {
        if let Some(prev) = self.last_lookup.insert(ev.start, self.lookups) {
            self.registry.observe("reuse_distance", self.lookups - prev);
        }
        self.lookups += 1;
    }

    fn on_departure(&mut self, ev: &Event) {
        if let Some(born) = self.inserted_at.remove(&(ev.set, ev.start)) {
            self.registry
                .observe("eviction_age", ev.cycle.saturating_sub(born));
            let occ = self.occupancy.entry(ev.set).or_insert(0);
            *occ = occ.saturating_sub(1);
        }
    }
}

impl Recorder for MetricsRecorder {
    fn record(&mut self, ev: &Event) {
        match ev.kind {
            EventKind::Hit => {
                self.registry.inc("hits");
                self.on_lookup(ev);
            }
            EventKind::PartialHit => {
                self.registry.inc("partial_hits");
                self.on_lookup(ev);
            }
            EventKind::Miss => {
                self.registry.inc("misses");
                self.on_lookup(ev);
            }
            EventKind::Insert => {
                self.registry.inc("insertions");
                self.registry.observe("pw_length", u64::from(ev.uops));
                self.inserted_at.insert((ev.set, ev.start), ev.cycle);
                let occ = self.occupancy.entry(ev.set).or_insert(0);
                *occ += 1;
                let occ = *occ;
                self.registry.observe("set_occupancy", occ);
            }
            EventKind::Evict => {
                self.registry.inc("evictions");
                match ev.verdict {
                    Verdict::Fallback => self.registry.inc("fallback_evictions"),
                    Verdict::Upgrade => self.registry.inc("upgrades"),
                    _ => {}
                }
                self.on_departure(ev);
            }
            EventKind::Bypass => {
                self.registry.inc("bypasses");
            }
            EventKind::Invalidate => {
                self.registry.inc("invalidations");
                self.on_departure(ev);
            }
        }
        self.inner.record(ev);
    }

    fn events(&self) -> Vec<Event> {
        self.inner.events()
    }

    fn offered(&self) -> u64 {
        self.inner.offered()
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind, set: u32, start: u64) -> Event {
        Event {
            cycle,
            kind,
            set,
            slot: None,
            start,
            uops: 6,
            entries: 1,
            verdict: Verdict::None,
        }
    }

    #[test]
    fn null_recorder_retains_nothing_but_counts_offers() {
        let mut r = NullRecorder::new();
        r.record(&ev(0, EventKind::Miss, 0, 0x40));
        r.record(&ev(1, EventKind::Hit, 0, 0x40));
        assert_eq!(r.offered(), 2);
        assert!(r.events().is_empty());
        assert!(r.metrics().is_none());
    }

    #[test]
    fn ring_keeps_only_the_last_n() {
        let mut r = RingRecorder::new(3);
        for c in 0..10 {
            r.record(&ev(c, EventKind::Miss, 0, 0x40 * c));
        }
        let kept = r.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(
            kept.iter().map(|e| e.cycle).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(r.offered(), 10);
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_index() {
        let run = |seed: u64| {
            let mut r = SamplingRecorder::new(seed, 4);
            for c in 0..256 {
                r.record(&ev(c, EventKind::Miss, 0, 0x40 * c));
            }
            r.events().iter().map(|e| e.cycle).collect::<Vec<_>>()
        };
        assert_eq!(run(0xdead_beef), run(0xdead_beef), "same seed, same subset");
        assert_ne!(run(1), run(2), "different seeds sample differently");
        let kept = run(0xdead_beef);
        assert!(!kept.is_empty() && kept.len() < 256, "roughly 1-in-4");
    }

    #[test]
    fn sampling_every_one_keeps_everything() {
        let mut r = SamplingRecorder::new(7, 1);
        for c in 0..32 {
            r.record(&ev(c, EventKind::Hit, 0, 0x80));
        }
        assert_eq!(r.events().len(), 32);
    }

    #[test]
    fn metrics_recorder_derives_counters_and_histograms() {
        let mut r = MetricsRecorder::new(Box::new(RingRecorder::new(8)));
        // miss -> insert -> hit (reuse) -> evict
        r.record(&ev(0, EventKind::Miss, 2, 0x100));
        r.record(&Event {
            uops: 9,
            ..ev(1, EventKind::Insert, 2, 0x100)
        });
        r.record(&ev(5, EventKind::Hit, 2, 0x100));
        r.record(&Event {
            verdict: Verdict::Fallback,
            ..ev(40, EventKind::Evict, 2, 0x100)
        });
        let m = r.registry();
        assert_eq!(m.counter("misses"), 1);
        assert_eq!(m.counter("hits"), 1);
        assert_eq!(m.counter("insertions"), 1);
        assert_eq!(m.counter("evictions"), 1);
        assert_eq!(m.counter("fallback_evictions"), 1);
        let reuse = m.histogram("reuse_distance").expect("registered");
        assert_eq!(reuse.total(), 1);
        assert_eq!(reuse.sum(), 1, "one lookup between the two touches");
        let age = m.histogram("eviction_age").expect("registered");
        assert_eq!(age.sum(), 39, "inserted at cycle 1, evicted at 40");
        let pw = m.histogram("pw_length").expect("registered");
        assert_eq!(pw.sum(), 9);
        // events flow through to the inner ring
        assert_eq!(r.events().len(), 4);
        assert_eq!(r.offered(), 4);
    }

    #[test]
    fn occupancy_tracks_inserts_minus_departures() {
        let mut r = MetricsRecorder::new(Box::new(NullRecorder::new()));
        r.record(&ev(0, EventKind::Insert, 1, 0x40));
        r.record(&ev(1, EventKind::Insert, 1, 0x80));
        r.record(&ev(2, EventKind::Invalidate, 1, 0x40));
        r.record(&ev(3, EventKind::Insert, 1, 0xc0));
        let occ = r.registry().histogram("set_occupancy").expect("registered");
        // samples at each insertion: 1, 2, then 2 again after one left
        assert_eq!(occ.total(), 3);
        assert_eq!(occ.sum(), 5);
        assert_eq!(r.registry().counter("invalidations"), 1);
    }
}
