//! Per-interval basic-block-vector (BBV) fingerprinting.
//!
//! SimPoint-style sampling needs a compact fingerprint of *what code* each
//! fixed-size slice of a trace executes. [`BbvRecorder`] folds the cache's
//! lookup events into exactly that: it splits the stream into intervals of
//! `interval_uops` micro-ops, counts per-interval micro-ops by prediction
//! window start address (the PW-granularity analogue of a basic-block
//! vector), and random-projects each sparse count map onto a fixed
//! `dim`-dimensional vector with seeded ±1 signs. Two intervals that execute
//! the same code mix land close together in the projected space regardless
//! of how many distinct windows the trace touches, which is what the
//! k-means clustering in `uopcache-sample` relies on.
//!
//! The recorder obeys the repo's hot-path rules: every container is sized at
//! construction time and the `record` path performs only hash-map
//! `entry`/`or_insert` updates and in-place integer arithmetic — no growth
//! on the warmed path. Projection signs come from the in-repo seeded
//! [`Prng`], so fingerprints are a pure function of (seed, event stream).

use uopcache_model::hash::FastHashMap;
use uopcache_model::rng::{Prng, Rng};

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;
use uopcache_exec::seed::splitmix64;

/// Folds lookup events into per-interval projected basic-block vectors.
///
/// Only lookup events ([`Hit`](EventKind::Hit),
/// [`PartialHit`](EventKind::PartialHit), [`Miss`](EventKind::Miss)) advance
/// the interval clock and the fingerprint: the BBV describes *what the
/// program executed*, which is independent of the cache's replacement
/// decisions. That independence is what lets one fingerprinting pass serve
/// every policy in a sweep.
///
/// # Examples
///
/// ```
/// use uopcache_obs::{BbvRecorder, Event, EventKind, Recorder, Verdict};
///
/// let mut bbv = BbvRecorder::new(7, 100, 16, 8);
/// for i in 0..50u64 {
///     bbv.record(&Event {
///         cycle: i,
///         kind: EventKind::Miss,
///         set: 0,
///         slot: None,
///         start: 0x40 * (i % 5),
///         uops: 6,
///         entries: 1,
///         verdict: Verdict::None,
///     });
/// }
/// // 50 lookups × 6 uops = 300 uops → intervals close after 102 and 204
/// // uops (the counter resets on close), leaving 96 uops open.
/// assert_eq!(bbv.intervals_closed(), 2);
/// assert_eq!(bbv.vectors().len(), 3);
/// ```
pub struct BbvRecorder {
    /// Interval size in micro-ops.
    interval_uops: u64,
    /// Projected dimensionality.
    dim: usize,
    /// Projection seed (signs are a pure function of seed × start × lane).
    seed: u64,
    /// Dense projected rows: `max_intervals × dim` slab, closed intervals.
    rows: Vec<i64>,
    /// Micro-ops accumulated by each closed interval (its normalizer).
    row_uops: Vec<u64>,
    /// Sparse per-interval counts: PW start address → micro-ops.
    counts: FastHashMap<u64, u64>,
    /// Closed intervals so far.
    intervals: usize,
    /// Micro-ops accumulated in the open interval.
    current_uops: u64,
    /// Events offered (all kinds).
    offered: u64,
    /// Capacity of the row slab.
    max_intervals: usize,
    /// Set when an interval had to be dropped because the slab was full.
    overflowed: bool,
}

impl BbvRecorder {
    /// A recorder fingerprinting intervals of `interval_uops` micro-ops
    /// (minimum 1) into `dim`-dimensional vectors (minimum 1), retaining at
    /// most `max_intervals` closed intervals.
    ///
    /// All memory — the projection slab and the sparse count map — is
    /// reserved here, never on the record path.
    pub fn new(seed: u64, interval_uops: u64, dim: usize, max_intervals: usize) -> Self {
        let interval_uops = interval_uops.max(1);
        let dim = dim.max(1);
        let mut counts = FastHashMap::default();
        // Distinct PW starts per interval are bounded by interval lookups;
        // one start per ~4 uops is a generous ceiling for the synthesized
        // workloads (capped so absurd interval sizes stay constructible).
        let distinct = usize::try_from(interval_uops / 4).unwrap_or(usize::MAX);
        counts.reserve(distinct.clamp(1024, 1 << 18));
        BbvRecorder {
            interval_uops,
            dim,
            seed,
            rows: vec![0; max_intervals * dim],
            row_uops: vec![0; max_intervals],
            counts,
            intervals: 0,
            current_uops: 0,
            offered: 0,
            max_intervals,
            overflowed: false,
        }
    }

    /// Interval size in micro-ops.
    pub fn interval_uops(&self) -> u64 {
        self.interval_uops
    }

    /// Projected dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Closed (full-size) intervals observed so far.
    pub fn intervals_closed(&self) -> usize {
        self.intervals
    }

    /// Whether intervals were dropped because `max_intervals` was reached.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The projected fingerprint of every interval, in stream order: all
    /// closed intervals plus the open partial one (if it saw any micro-ops
    /// and the slab has room). Each vector is normalized by its interval's
    /// micro-op count, so a short trailing interval is comparable to full
    /// ones.
    pub fn vectors(&self) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(self.intervals + 1);
        for i in 0..self.intervals {
            let base = i * self.dim;
            let denom = self.row_uops[i].max(1) as f64;
            out.push(
                self.rows[base..base + self.dim]
                    .iter()
                    .map(|&v| v as f64 / denom)
                    .collect(),
            );
        }
        if self.current_uops > 0 && !self.overflowed && self.intervals < self.max_intervals {
            let mut row = vec![0i64; self.dim];
            for (&start, &count) in &self.counts {
                project_into(self.seed, start, count, &mut row);
            }
            let denom = self.current_uops.max(1) as f64;
            out.push(row.iter().map(|&v| v as f64 / denom).collect());
        }
        out
    }

    /// Closes the open interval: projects its sparse counts into the next
    /// slab row and resets the accumulator. Addition commutes, so the row is
    /// independent of the hash map's iteration order.
    fn close_interval(&mut self) {
        if self.intervals >= self.max_intervals {
            self.overflowed = true;
        } else {
            let base = self.intervals * self.dim;
            let row = &mut self.rows[base..base + self.dim];
            for (&start, &count) in &self.counts {
                project_into(self.seed, start, count, row);
            }
            self.row_uops[self.intervals] = self.current_uops;
            self.intervals += 1;
        }
        self.counts.clear();
        self.current_uops = 0;
    }
}

/// Adds `count` with a seeded ±1 sign per lane — the sparse-to-dense random
/// projection. Signs come from a `Prng` keyed by (seed, start), one bit per
/// lane, so the projection is stable across runs and map iteration orders.
fn project_into(seed: u64, start: u64, count: u64, row: &mut [i64]) {
    let mut rng = Prng::seed_from_u64(seed ^ splitmix64(start));
    let c = count as i64;
    let mut bits = 0u64;
    for (j, lane) in row.iter_mut().enumerate() {
        if j % 64 == 0 {
            bits = rng.next_u64();
        }
        *lane += if bits & 1 == 1 { c } else { -c };
        bits >>= 1;
    }
}

impl Recorder for BbvRecorder {
    fn record(&mut self, ev: &Event) {
        self.offered += 1;
        if !matches!(
            ev.kind,
            EventKind::Hit | EventKind::PartialHit | EventKind::Miss
        ) {
            return;
        }
        *self.counts.entry(ev.start).or_insert(0) += u64::from(ev.uops);
        self.current_uops += u64::from(ev.uops);
        if self.current_uops >= self.interval_uops {
            self.close_interval();
        }
    }

    fn events(&self) -> Vec<Event> {
        Vec::new()
    }

    fn offered(&self) -> u64 {
        self.offered
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Verdict;

    fn lookup(start: u64, uops: u32) -> Event {
        Event {
            cycle: 0,
            kind: EventKind::Miss,
            set: 0,
            slot: None,
            start,
            uops,
            entries: 1,
            verdict: Verdict::None,
        }
    }

    #[test]
    fn intervals_close_on_uop_boundaries() {
        let mut r = BbvRecorder::new(1, 10, 8, 16);
        for _ in 0..8 {
            r.record(&lookup(0x40, 3));
        }
        // 8 lookups × 3 uops with a 10-uop interval: the counter resets on
        // each close, so intervals close after lookups 4 (12 uops) and 8
        // (12 more); nothing is left open.
        assert_eq!(r.intervals_closed(), 2);
        assert_eq!(r.vectors().len(), 2);
        r.record(&lookup(0x80, 2));
        assert_eq!(r.vectors().len(), 3, "open partial interval included");
        assert_eq!(r.offered(), 9);
    }

    #[test]
    fn fingerprints_are_deterministic_and_order_independent() {
        let run = |starts: &[u64]| {
            let mut r = BbvRecorder::new(42, 1000, 16, 4);
            for &s in starts {
                r.record(&lookup(s, 5));
            }
            r.vectors()
        };
        let a = run(&[0x40, 0x80, 0xc0, 0x40]);
        let b = run(&[0x40, 0x40, 0x80, 0xc0]);
        // Same multiset of (start, uops) within one interval → same vector.
        assert_eq!(a, b);
        assert_ne!(a, run(&[0x40, 0x40, 0x80, 0x100]));
    }

    #[test]
    fn different_seeds_project_differently() {
        let run = |seed: u64| {
            let mut r = BbvRecorder::new(seed, 100, 8, 4);
            for i in 0..30u64 {
                r.record(&lookup(0x40 * (i % 7), 4));
            }
            r.vectors()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn similar_intervals_land_close_distinct_ones_far() {
        let mut r = BbvRecorder::new(9, 120, 32, 8);
        // Interval 0 and 1: the same 5-window loop. Interval 2: other code.
        for rep in 0..2 {
            let _ = rep;
            for i in 0..20u64 {
                r.record(&lookup(0x40 * (i % 5), 6));
            }
        }
        for i in 0..20u64 {
            r.record(&lookup(0x4000 + 0x40 * (i % 5), 6));
        }
        let v = r.vectors();
        assert_eq!(v.len(), 3);
        let d =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        assert!(d(&v[0], &v[1]) < d(&v[0], &v[2]));
    }

    #[test]
    fn non_lookup_events_do_not_advance_the_clock() {
        let mut r = BbvRecorder::new(3, 50, 8, 4);
        r.record(&lookup(0x40, 10));
        let insert = Event {
            kind: EventKind::Insert,
            ..lookup(0x40, 10)
        };
        for _ in 0..20 {
            r.record(&insert);
        }
        assert_eq!(r.intervals_closed(), 0);
        assert_eq!(r.vectors().len(), 1, "only the open lookup interval");
        assert_eq!(r.offered(), 21);
    }

    #[test]
    fn overflow_sets_the_flag_and_caps_rows() {
        let mut r = BbvRecorder::new(5, 10, 4, 2);
        for _ in 0..10 {
            r.record(&lookup(0x40, 5));
        }
        assert!(r.overflowed());
        assert_eq!(r.intervals_closed(), 2);
        assert_eq!(r.vectors().len(), 2);
    }

    #[test]
    fn trailing_partial_interval_is_normalized() {
        let mut r = BbvRecorder::new(11, 100, 8, 4);
        for _ in 0..25 {
            r.record(&lookup(0x40, 4)); // exactly one closed interval
        }
        r.record(&lookup(0x40, 4)); // open: same single window
        let v = r.vectors();
        assert_eq!(v.len(), 2);
        // Same code mix, different lengths: normalized vectors coincide.
        for (a, b) in v[0].iter().zip(&v[1]) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
