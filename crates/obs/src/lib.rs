//! # uopcache-obs
//!
//! The deterministic observability layer of the `uopcache` workspace:
//! structured replacement-decision events, pluggable recorders, and a
//! metrics registry of named counters and fixed-bucket histograms.
//!
//! The paper's headline results reduce to aggregate miss rates, but
//! explaining *why* a policy wins requires seeing individual replacement
//! decisions. This crate gives the cache and frontend a place to stream
//! those decisions without perturbing them:
//!
//! * [`Event`] — one replacement-relevant occurrence (`hit` / `partial-hit` /
//!   `miss` / `insert` / `evict` / `bypass` / `invalidate`), stamped with the
//!   frontend cycle, the set/slot it touched, the prediction window, and the
//!   [`Verdict`] the policy rendered;
//! * [`Recorder`] — the sink trait the cache emits into, with
//!   [`NullRecorder`] (retains nothing — the zero-cost default),
//!   [`RingRecorder`] (bounded, keeps the last *N* events),
//!   [`SamplingRecorder`] (key-seeded 1-in-*k* sampling that reuses the
//!   `uopcache-exec` SplitMix64 derivation, so the retained subset is a pure
//!   function of the task seed and the event index — bit-identical at any
//!   worker count), and [`MetricsRecorder`] (derives histograms and counters
//!   from the stream, then forwards to an inner recorder);
//! * [`MetricsRegistry`] — named counters plus fixed-bucket [`Histogram`]s
//!   (reuse distance, PW length, set occupancy, eviction age) that serialise
//!   through the in-repo JSON model and merge associatively, so the
//!   engine's submission-order merge keeps parallel sweeps deterministic.
//!
//! # Determinism contract
//!
//! Nothing in this crate reads a wall clock, thread id, or allocator state.
//! Every retained event and every histogram bucket is a pure function of the
//! simulated access stream and (for sampling) the task-key-derived seed.
//! Two runs of the same task therefore produce byte-identical JSON whether
//! they execute serially or on a 32-worker pool.
//!
//! # Examples
//!
//! ```
//! use uopcache_obs::{Event, EventKind, RingRecorder, Recorder, Verdict};
//!
//! let mut rec = RingRecorder::new(2);
//! for cycle in 0..5 {
//!     rec.record(&Event {
//!         cycle,
//!         kind: EventKind::Miss,
//!         set: 0,
//!         slot: None,
//!         start: 0x40,
//!         uops: 6,
//!         entries: 1,
//!         verdict: Verdict::None,
//!     });
//! }
//! assert_eq!(rec.offered(), 5);
//! let kept = rec.events();
//! assert_eq!(kept.len(), 2, "bounded to the last two");
//! assert_eq!(kept[0].cycle, 3);
//! ```

pub mod bbv;
pub mod digest;
pub mod duel;
pub mod event;
pub mod metrics;
pub mod recorder;

pub use bbv::BbvRecorder;
pub use digest::{DigestRecorder, StreamDigest};
pub use duel::{CandidateDuel, DuelStats};
pub use event::{Event, EventKind, Verdict};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{MetricsRecorder, NullRecorder, Recorder, RingRecorder, SamplingRecorder};
