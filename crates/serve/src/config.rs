//! Typed configuration for the daemon and the router.
//!
//! Both processes are configured through builders — [`ServerConfig::builder`]
//! and [`RouterConfig::builder`] — with typed fields (a [`SocketAddr`] bind
//! address, [`Duration`] timeouts, numeric bounds) instead of stringly
//! plumbing. The CLI, the tests and embedding code all build configs the
//! same way, so a knob added here is immediately available everywhere.
//!
//! Timeout bookkeeping runs on the exec crate's [`Clock`] seam: production
//! binds a `WallClock`, tests can inject a `ManualClock` and expire idle or
//! stalled connections deterministically.

use crate::job::DEFAULT_JOB_RETENTION;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use uopcache_exec::{Clock, WallClock};

/// The loopback wildcard-port default every builder starts from.
fn default_addr() -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], 0))
}

/// Connection-level tuning shared by the daemon and the router event loops.
#[derive(Clone)]
pub struct ConnTuning {
    /// Event-loop poll slice: how long the loop sleeps when no socket made
    /// progress. Bounds wake-up latency for drains and health flips.
    pub(crate) poll_interval: Duration,
    /// Close a connection after this long without a complete frame.
    pub(crate) idle_timeout: Duration,
    /// Abort a frame whose bytes stall longer than this mid-body.
    pub(crate) frame_stall_limit: Duration,
    /// Maximum concurrent connections; excess connects get a `busy` frame.
    pub(crate) max_connections: usize,
    /// After the drain finishes, spend at most this long flushing the last
    /// frames to connections before the loop exits anyway.
    pub(crate) drain_grace: Duration,
    /// The tick source for idle/stall/wait deadlines.
    pub(crate) clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for ConnTuning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnTuning")
            .field("poll_interval", &self.poll_interval)
            .field("idle_timeout", &self.idle_timeout)
            .field("frame_stall_limit", &self.frame_stall_limit)
            .field("max_connections", &self.max_connections)
            .field("drain_grace", &self.drain_grace)
            .finish_non_exhaustive()
    }
}

impl Default for ConnTuning {
    fn default() -> Self {
        ConnTuning {
            poll_interval: Duration::from_millis(1),
            idle_timeout: Duration::from_secs(120),
            frame_stall_limit: Duration::from_secs(10),
            max_connections: 4096,
            drain_grace: Duration::from_secs(5),
            clock: Arc::new(WallClock::new()),
        }
    }
}

/// Daemon tuning knobs, built through [`ServerConfig::builder`]. `Default`
/// is sized for loopback serving and tests: ephemeral port, one shard, a
/// 16-slot queue.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (port 0 picks an ephemeral port).
    pub(crate) addr: SocketAddr,
    /// Total queued-job bound, split evenly across shards; pushes beyond a
    /// shard's slice get `busy` frames.
    pub(crate) queue_capacity: usize,
    /// Worker shards: independent executors with shard-local queues, keyed
    /// by the FNV-1a job id so identical submissions land together.
    pub(crate) shards: usize,
    /// Engine worker count per job (`0` = the machine's parallelism).
    pub(crate) jobs: usize,
    /// Default per-job start deadline measured from acceptance; a job still
    /// queued past it fails instead of running. `None` = no deadline.
    pub(crate) job_timeout: Option<Duration>,
    /// Terminal jobs retained in the table for late `status`/`result`
    /// fetches; past this the oldest finished entries are evicted.
    pub(crate) job_retention: usize,
    /// Shared connection tuning.
    pub(crate) tuning: ConnTuning,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::builder().build()
    }
}

impl ServerConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig {
                addr: default_addr(),
                queue_capacity: 16,
                shards: 1,
                jobs: 0,
                job_timeout: None,
                job_retention: DEFAULT_JOB_RETENTION,
                tuning: ConnTuning::default(),
            },
        }
    }
}

/// Builder for [`ServerConfig`]; every setter is optional.
#[derive(Clone, Debug)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Bind address (use port 0 for an ephemeral port).
    #[must_use]
    pub fn addr(mut self, addr: SocketAddr) -> Self {
        self.cfg.addr = addr;
        self
    }

    /// Total queued-job bound across all shards (clamped to ≥ 1 per shard).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity;
        self
    }

    /// Worker shard count (clamped to ≥ 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards.max(1);
        self
    }

    /// Engine worker count per job (`0` = the machine's parallelism).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.cfg.jobs = jobs;
        self
    }

    /// Default per-job start deadline (None = no deadline).
    #[must_use]
    pub fn job_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.cfg.job_timeout = timeout;
        self
    }

    /// Retained terminal jobs (clamped to ≥ 1).
    #[must_use]
    pub fn job_retention(mut self, retention: usize) -> Self {
        self.cfg.job_retention = retention.max(1);
        self
    }

    /// Event-loop poll slice.
    #[must_use]
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.cfg.tuning.poll_interval = interval;
        self
    }

    /// Idle-connection timeout.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.tuning.idle_timeout = timeout;
        self
    }

    /// Mid-frame stall limit.
    #[must_use]
    pub fn frame_stall_limit(mut self, limit: Duration) -> Self {
        self.cfg.tuning.frame_stall_limit = limit;
        self
    }

    /// Concurrent-connection cap.
    #[must_use]
    pub fn max_connections(mut self, max: usize) -> Self {
        self.cfg.tuning.max_connections = max.max(1);
        self
    }

    /// Post-drain flush grace.
    #[must_use]
    pub fn drain_grace(mut self, grace: Duration) -> Self {
        self.cfg.tuning.drain_grace = grace;
        self
    }

    /// Tick source for connection deadlines (default: a wall clock).
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.cfg.tuning.clock = clock;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ServerConfig {
        self.cfg
    }
}

/// Router tuning knobs, built through [`RouterConfig::builder`].
///
/// A router owns no engine: it consistent-hashes jobs across a fixed set of
/// `uopcache serve` backends, health-checks them on an interval, spills
/// busy submissions over to ring successors, and fails over when a backend
/// dies or drains.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address for the router's own listener.
    pub(crate) addr: SocketAddr,
    /// The backend daemons to route across (at least one required to bind).
    pub(crate) backends: Vec<SocketAddr>,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub(crate) replicas: usize,
    /// How often the health thread probes every backend.
    pub(crate) health_interval: Duration,
    /// Per-probe (and per-forward connect) timeout.
    pub(crate) probe_timeout: Duration,
    /// Budget for one forwarded `submit_and_wait` against a backend.
    pub(crate) forward_timeout: Duration,
    /// Pending-forward bound per backend; pushes beyond it get `busy`.
    pub(crate) queue_capacity: usize,
    /// Full passes over the backend set before a job fails over to an error.
    pub(crate) retry_rounds: usize,
    /// Delay between failover passes.
    pub(crate) retry_backoff: Duration,
    /// Default per-job start deadline (None = no deadline).
    pub(crate) job_timeout: Option<Duration>,
    /// Terminal jobs retained for late `status`/`result` fetches.
    pub(crate) job_retention: usize,
    /// Shared connection tuning.
    pub(crate) tuning: ConnTuning,
}

impl RouterConfig {
    /// Starts a builder from the defaults (no backends yet — add at least
    /// one before binding).
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder {
            cfg: RouterConfig {
                addr: default_addr(),
                backends: Vec::with_capacity(4),
                replicas: 64,
                health_interval: Duration::from_secs(2),
                probe_timeout: Duration::from_secs(2),
                forward_timeout: Duration::from_secs(600),
                queue_capacity: 16,
                retry_rounds: 3,
                retry_backoff: Duration::from_millis(50),
                job_timeout: None,
                job_retention: DEFAULT_JOB_RETENTION,
                tuning: ConnTuning::default(),
            },
        }
    }
}

/// Builder for [`RouterConfig`]; add backends with
/// [`backend`](RouterConfigBuilder::backend)/[`backends`](RouterConfigBuilder::backends).
#[derive(Clone, Debug)]
pub struct RouterConfigBuilder {
    cfg: RouterConfig,
}

impl RouterConfigBuilder {
    /// Bind address (use port 0 for an ephemeral port).
    #[must_use]
    pub fn addr(mut self, addr: SocketAddr) -> Self {
        self.cfg.addr = addr;
        self
    }

    /// Adds one backend daemon address.
    #[must_use]
    pub fn backend(mut self, addr: SocketAddr) -> Self {
        self.cfg.backends.push(addr);
        self
    }

    /// Replaces the backend set.
    #[must_use]
    pub fn backends<I: IntoIterator<Item = SocketAddr>>(mut self, addrs: I) -> Self {
        self.cfg.backends.clear();
        self.cfg.backends.extend(addrs);
        self
    }

    /// Virtual nodes per backend on the ring (clamped to ≥ 1).
    #[must_use]
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.cfg.replicas = replicas.max(1);
        self
    }

    /// Health-probe interval.
    #[must_use]
    pub fn health_interval(mut self, interval: Duration) -> Self {
        self.cfg.health_interval = interval;
        self
    }

    /// Per-probe (and per-forward connect) timeout.
    #[must_use]
    pub fn probe_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.probe_timeout = timeout;
        self
    }

    /// Budget for one forwarded job against a backend.
    #[must_use]
    pub fn forward_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.forward_timeout = timeout;
        self
    }

    /// Pending-forward bound per backend (clamped to ≥ 1).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity.max(1);
        self
    }

    /// Full failover passes over the backend set before a job errors.
    #[must_use]
    pub fn retry_rounds(mut self, rounds: usize) -> Self {
        self.cfg.retry_rounds = rounds.max(1);
        self
    }

    /// Delay between failover passes.
    #[must_use]
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.cfg.retry_backoff = backoff;
        self
    }

    /// Default per-job start deadline (None = no deadline).
    #[must_use]
    pub fn job_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.cfg.job_timeout = timeout;
        self
    }

    /// Retained terminal jobs (clamped to ≥ 1).
    #[must_use]
    pub fn job_retention(mut self, retention: usize) -> Self {
        self.cfg.job_retention = retention.max(1);
        self
    }

    /// Event-loop poll slice.
    #[must_use]
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.cfg.tuning.poll_interval = interval;
        self
    }

    /// Idle-connection timeout.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.tuning.idle_timeout = timeout;
        self
    }

    /// Mid-frame stall limit.
    #[must_use]
    pub fn frame_stall_limit(mut self, limit: Duration) -> Self {
        self.cfg.tuning.frame_stall_limit = limit;
        self
    }

    /// Concurrent-connection cap.
    #[must_use]
    pub fn max_connections(mut self, max: usize) -> Self {
        self.cfg.tuning.max_connections = max.max(1);
        self
    }

    /// Post-drain flush grace.
    #[must_use]
    pub fn drain_grace(mut self, grace: Duration) -> Self {
        self.cfg.tuning.drain_grace = grace;
        self
    }

    /// Tick source for connection deadlines (default: a wall clock).
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.cfg.tuning.clock = clock;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> RouterConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_builder_clamps_and_defaults() {
        let cfg = ServerConfig::builder().shards(0).job_retention(0).build();
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.job_retention, 1);
        assert_eq!(cfg.addr.port(), 0, "default bind is ephemeral");
        assert_eq!(cfg.queue_capacity, 16);
    }

    #[test]
    fn router_builder_accumulates_backends() {
        let a: SocketAddr = "127.0.0.1:7001".parse().expect("addr parses");
        let b: SocketAddr = "127.0.0.1:7002".parse().expect("addr parses");
        let cfg = RouterConfig::builder()
            .backend(a)
            .backend(b)
            .replicas(0)
            .build();
        assert_eq!(cfg.backends, vec![a, b]);
        assert_eq!(cfg.replicas, 1, "replicas clamp to one vnode");
        let replaced = RouterConfig::builder().backends([b]).build();
        assert_eq!(replaced.backends, vec![b]);
    }
}
