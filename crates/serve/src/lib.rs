//! Simulation-as-a-service: a long-running daemon around the sweep engine.
//!
//! `uopcache-serve` turns the offline sweep pipeline into a TCP service
//! without changing a single result byte. Clients speak a length-prefixed,
//! schema-versioned JSON protocol ([`protocol`]); jobs are [`SweepSpec`]s
//! that flow through a bounded queue ([`job`]) into the same deterministic
//! exec engine the CLI uses, so a served report is byte-identical to
//! `uopcache sweep` for the same spec at any worker count.
//!
//! The service is built for unattended operation:
//!
//! * bounded queue + `busy` frames (429-style) instead of unbounded buffering,
//! * panic isolation around every job,
//! * per-job and per-connection timeouts,
//! * content-derived job ids for idempotent client retries,
//! * a `stats` endpoint backed by the obs metrics registry,
//! * graceful drain-then-exit on the `shutdown` frame.
//!
//! [`SweepSpec`]: uopcache_bench::sweep::SweepSpec

pub mod client;
pub mod job;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, JobResult};
pub use job::{job_id_for, BoundedQueue, JobState, JobTable, QueueError, DEFAULT_JOB_RETENTION};
pub use protocol::{frame, read_frame, write_frame, FrameError, MAX_FRAME_BYTES, SCHEMA_VERSION};
pub use server::{Runner, Server, ServerConfig, ServerHandle};
