//! Simulation-as-a-service: a long-running daemon around the sweep engine.
//!
//! `uopcache-serve` turns the offline sweep pipeline into a TCP service
//! without changing a single result byte. Clients speak a length-prefixed,
//! schema-versioned JSON protocol ([`protocol`]); jobs are [`SweepSpec`]s
//! that flow through a bounded queue ([`job`]) into the same deterministic
//! exec engine the CLI uses, so a served report is byte-identical to
//! `uopcache sweep` for the same spec at any worker count.
//!
//! The daemon multiplexes every connection on a single nonblocking event
//! loop ([`event`]) and shards job execution by content-derived FNV-1a job
//! id ([`job::shard_for`]); the [`router`] consistent-hashes jobs across
//! several such daemons for multi-node serving. Both are configured through
//! typed builders ([`ServerConfig::builder`], [`RouterConfig::builder`]) and
//! spoken to through the typed [`Client`].
//!
//! The service is built for unattended operation:
//!
//! * bounded per-shard queues + `busy` frames (429-style) instead of
//!   unbounded buffering,
//! * panic isolation around every job,
//! * per-job and per-connection timeouts on an injectable clock seam,
//! * content-derived job ids for idempotent client retries,
//! * a `stats` endpoint backed by the obs metrics registry,
//! * graceful drain-then-exit on the `shutdown` frame,
//! * health-checked, drain-aware failover across router backends.
//!
//! [`SweepSpec`]: uopcache_bench::sweep::SweepSpec

pub mod client;
pub mod config;
mod event;
pub mod job;
pub mod protocol;
pub mod router;
pub mod server;

pub use client::{Client, ClientError, JobResult};
pub use config::{RouterConfig, RouterConfigBuilder, ServerConfig, ServerConfigBuilder};
pub use job::{
    job_id_for, shard_for, BoundedQueue, JobState, JobTable, QueueError, DEFAULT_JOB_RETENTION,
};
pub use protocol::{
    frame, read_frame, write_frame, FrameDecoder, FrameError, MAX_FRAME_BYTES, SCHEMA_VERSION,
};
pub use router::{Router, RouterHandle};
pub use server::{Runner, Server, ServerHandle};
