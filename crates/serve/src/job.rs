//! Job identity, lifecycle state, the bounded queue and the job table.
//!
//! Both structures are **bounded by construction**. A push against a full
//! queue fails immediately with [`QueueError::Full`] and the caller surfaces
//! a `busy` frame — the daemon applies backpressure instead of buffering
//! without limit. Closing the queue (graceful shutdown) fails new pushes
//! with [`QueueError::Closed`] while letting the executor drain what was
//! already accepted. The job table keeps at most a configured number of
//! *terminal* jobs (results and failures kept around for late `status`/
//! `result` fetches); past that, the oldest finished entries are evicted, so
//! a long-running daemon's memory does not grow with submission count.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use uopcache_bench::sweep::SweepSpec;

/// FNV-1a 64: the repo's standard content hash (same constants as the exec
/// crate's task seeding). Job ids, shard keying and the router's hash ring
/// all run on it, so "where a job lands" is a pure function of its bytes.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives the default job id: an FNV-1a 64 hash of the spec's canonical
/// JSON, rendered as 16 hex digits. Content-derived ids make blind client
/// retries idempotent — resubmitting the same work maps to the same job.
pub fn job_id_for(spec: &SweepSpec) -> String {
    let h = fnv1a64(spec.to_json().to_string().as_bytes());
    format!("{h:016x}")
}

/// Maps a job id onto one of `shards` worker shards by FNV-1a. Identical
/// submissions share an id and therefore a shard, so dedupe stays
/// shard-local; distinct jobs spread uniformly.
pub fn shard_for(id: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    usize::try_from(fnv1a64(id.as_bytes()) % (shards as u64)).unwrap_or(0)
}

/// The lifecycle state of one job.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted and waiting in the bounded queue.
    Queued,
    /// Currently executing on the engine.
    Running,
    /// Finished; the canonical report JSON is shared with every waiter.
    Done(Arc<String>),
    /// Panicked or timed out; the message explains which.
    Failed(String),
}

impl JobState {
    /// The state's wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// One entry of the job table.
#[derive(Clone, Debug)]
pub struct JobEntry {
    /// The spec's canonical JSON — the job's identity, checked on id reuse.
    pub spec_json: String,
    /// Current lifecycle state.
    pub state: JobState,
}

/// Default cap on retained terminal jobs; see [`JobTable::with_retention`].
pub const DEFAULT_JOB_RETENTION: usize = 1024;

#[derive(Debug)]
struct TableInner {
    entries: HashMap<String, JobEntry>,
    /// Ids of terminal jobs in completion order, oldest first — the
    /// eviction queue that keeps the table bounded.
    finished: VecDeque<String>,
}

/// The server's registry of jobs, with a condition variable that wakes
/// waiters on any state change.
///
/// The table is **bounded**: live (queued/running) jobs are bounded by the
/// queue capacity, and at most `retention` terminal jobs are kept for late
/// `status`/`result` fetches — completing another evicts the oldest
/// finished entry. An evicted id simply becomes unknown; resubmitting it
/// re-runs the work.
#[derive(Debug)]
pub struct JobTable {
    inner: Mutex<TableInner>,
    changed: Condvar,
    retention: usize,
    /// Bumped on every state change/removal; the event loop re-polls parked
    /// waits only when this moves, instead of locking the table per tick.
    version: AtomicU64,
}

impl Default for JobTable {
    fn default() -> Self {
        Self::with_retention(DEFAULT_JOB_RETENTION)
    }
}

impl JobTable {
    /// A table retaining [`DEFAULT_JOB_RETENTION`] terminal jobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table that keeps at most `retention` terminal jobs (clamped to at
    /// least 1).
    pub fn with_retention(retention: usize) -> Self {
        let retention = retention.max(1);
        JobTable {
            inner: Mutex::new(TableInner {
                entries: HashMap::with_capacity(retention.min(64)),
                finished: VecDeque::with_capacity(retention.min(64)),
            }),
            changed: Condvar::new(),
            retention,
            version: AtomicU64::new(0),
        }
    }

    /// A counter that moves on every state change or removal — cheap to poll
    /// without taking the table lock.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Registers a new job as queued.
    ///
    /// # Errors
    ///
    /// If the id is already present: returns its current entry when the spec
    /// matches (the idempotent-retry path) and an explanatory message when it
    /// does not (id collision with different work).
    pub fn register(&self, id: &str, spec_json: &str) -> Result<(), Result<JobEntry, String>> {
        let mut inner = lock_clean(&self.inner);
        match inner.entries.get(id) {
            Some(existing) if existing.spec_json == spec_json => Err(Ok(existing.clone())),
            Some(_) => Err(Err(format!(
                "job id {id:?} was already submitted with a different spec"
            ))),
            None => {
                inner.entries.insert(
                    id.to_string(),
                    JobEntry {
                        spec_json: spec_json.to_string(),
                        state: JobState::Queued,
                    },
                );
                Ok(())
            }
        }
    }

    /// Transitions a job to a new state and wakes every waiter. A transition
    /// *into* a terminal state enrols the id in the eviction queue; once more
    /// than `retention` finished jobs accumulate, the oldest is dropped.
    pub fn set_state(&self, id: &str, state: JobState) {
        let mut inner = lock_clean(&self.inner);
        let became_terminal = match inner.entries.get_mut(id) {
            None => false,
            Some(e) => {
                let was_terminal = e.state.is_terminal();
                e.state = state;
                e.state.is_terminal() && !was_terminal
            }
        };
        if became_terminal {
            inner.finished.push_back(id.to_string());
            while inner.finished.len() > self.retention {
                let Some(oldest) = inner.finished.pop_front() else {
                    break;
                };
                // Evict only entries that are still terminal: a stale slot
                // (the id was removed, or evicted and since resubmitted)
                // must never take down live work.
                if inner
                    .entries
                    .get(&oldest)
                    .is_some_and(|e| e.state.is_terminal())
                {
                    inner.entries.remove(&oldest);
                }
            }
        }
        drop(inner);
        self.version.fetch_add(1, Ordering::SeqCst);
        self.changed.notify_all();
    }

    /// Forgets a job entirely — used when a submission is refused *after*
    /// registration (queue full, draining), so the id stays free for a retry
    /// to re-enqueue instead of deduping onto a dead entry. Wakes waiters,
    /// which then observe the id as unknown.
    pub fn remove(&self, id: &str) {
        let mut inner = lock_clean(&self.inner);
        inner.entries.remove(id);
        drop(inner);
        self.version.fetch_add(1, Ordering::SeqCst);
        self.changed.notify_all();
    }

    /// The current entry of a job, if known.
    pub fn get(&self, id: &str) -> Option<JobEntry> {
        lock_clean(&self.inner).entries.get(id).cloned()
    }

    /// Jobs currently in the table (live plus retained terminal).
    pub fn len(&self) -> usize {
        lock_clean(&self.inner).entries.len()
    }

    /// Whether the table holds no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until the job reaches a terminal state, `timeout` elapses, or
    /// `keep_waiting` returns false (the drain/stop check). Returns the last
    /// observed entry (`None` for an unknown id).
    pub fn wait_terminal(
        &self,
        id: &str,
        timeout: Duration,
        keep_waiting: impl Fn() -> bool,
    ) -> Option<JobEntry> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock_clean(&self.inner);
        loop {
            match inner.entries.get(id) {
                None => return None,
                Some(e) if e.state.is_terminal() => return Some(e.clone()),
                Some(e) => {
                    let now = Instant::now();
                    if now >= deadline || !keep_waiting() {
                        return Some(e.clone());
                    }
                    // Wake at least every 200ms to re-check `keep_waiting`.
                    let slice = (deadline - now).min(Duration::from_millis(200));
                    let (guard, _timed_out) = self
                        .changed
                        .wait_timeout(inner, slice)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    inner = guard;
                }
            }
        }
    }
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum QueueError {
    /// The queue is at capacity — backpressure; retry later.
    Full,
    /// The server is draining — no new work is accepted.
    Closed,
}

/// One accepted job awaiting execution.
#[derive(Debug)]
pub struct QueuedJob {
    /// The job id (table key).
    pub id: String,
    /// The parsed spec to execute.
    pub spec: SweepSpec,
    /// When the job entered the queue (queue-wait accounting).
    pub enqueued: Instant,
    /// When the job must have *started* by; expired jobs fail instead of
    /// running (per-job timeout, applied to queue wait).
    pub start_deadline: Option<Instant>,
}

#[derive(Debug)]
struct QueueInner {
    items: VecDeque<QueuedJob>,
    closed: bool,
}

/// The bounded, closable job queue.
#[derive(Debug)]
pub struct BoundedQueue {
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
    capacity: usize,
}

impl BoundedQueue {
    /// A queue that holds at most `capacity` jobs (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (excluding the one executing).
    pub fn depth(&self) -> usize {
        lock_clean(&self.inner).items.len()
    }

    /// Enqueues a job, refusing instead of growing past capacity.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] at capacity, [`QueueError::Closed`] after
    /// [`close`](Self::close).
    pub fn push(&self, job: QueuedJob) -> Result<usize, QueueError> {
        self.try_push(job).map_err(|(e, _job)| e)
    }

    /// Like [`push`](Self::push), but hands the job back alongside the error
    /// (boxed, to keep the `Err` variant small) so the caller can spill it to
    /// another queue (the router's busy-aware admission path).
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push), with the refused job attached.
    pub fn try_push(&self, job: QueuedJob) -> Result<usize, (QueueError, Box<QueuedJob>)> {
        let mut inner = lock_clean(&self.inner);
        if inner.closed {
            return Err((QueueError::Closed, Box::new(job)));
        }
        if inner.items.len() >= self.capacity {
            return Err((QueueError::Full, Box::new(job)));
        }
        inner.items.push_back(job);
        let depth = inner.items.len();
        drop(inner);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest job, blocking up to `timeout`. Returns `None` on
    /// timeout or when the queue is closed *and* empty (drain complete).
    pub fn pop(&self, timeout: Duration) -> Option<QueuedJob> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock_clean(&self.inner);
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .nonempty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Closes the queue: future pushes fail, queued jobs remain poppable.
    pub fn close(&self) {
        lock_clean(&self.inner).closed = true;
        self.nonempty.notify_all();
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        lock_clean(&self.inner).closed
    }
}

/// Locks a mutex, tolerating poisoning: queue and table state are plain
/// bookkeeping, and the server isolates job panics before they can unwind
/// through a held lock (mirrors the exec pool's policy).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::FrontendConfig;
    use uopcache_trace::AppId;

    fn spec(len: usize) -> SweepSpec {
        SweepSpec {
            cfg: FrontendConfig::zen3(),
            config_name: "zen3".to_string(),
            apps: vec![AppId::Kafka],
            policies: vec!["LRU".to_string()],
            variant: 0,
            len,
            metrics: false,
            sample: None,
            scale: 1,
        }
    }

    fn queued(id: &str, len: usize) -> QueuedJob {
        QueuedJob {
            id: id.to_string(),
            spec: spec(len),
            enqueued: Instant::now(),
            start_deadline: None,
        }
    }

    #[test]
    fn job_ids_are_content_derived_and_stable() {
        let a = job_id_for(&spec(100));
        assert_eq!(a, job_id_for(&spec(100)), "same work, same id");
        assert_ne!(a, job_id_for(&spec(200)), "different work, different id");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn shard_keying_is_stable_and_in_range() {
        let id = job_id_for(&spec(100));
        for shards in [1usize, 2, 3, 8] {
            let s = shard_for(&id, shards);
            assert!(s < shards);
            assert_eq!(s, shard_for(&id, shards), "same id, same shard");
        }
        assert_eq!(shard_for(&id, 0), 0, "degenerate shard counts pin to 0");
        // Distinct ids actually spread: over many ids every shard is hit.
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[shard_for(&format!("job{i}"), 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "{hit:?}");
    }

    #[test]
    fn table_version_moves_on_state_changes_and_removals() {
        let t = JobTable::new();
        let v0 = t.version();
        t.register("j1", "{spec}").expect("fresh id");
        t.set_state("j1", JobState::Running);
        let v1 = t.version();
        assert_ne!(v0, v1, "set_state bumps the version");
        t.remove("j1");
        assert_ne!(v1, t.version(), "remove bumps the version");
    }

    #[test]
    fn queue_applies_backpressure_and_preserves_order() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(queued("a", 1)).expect("fits"), 1);
        assert_eq!(q.push(queued("b", 1)).expect("fits"), 2);
        assert_eq!(q.push(queued("c", 1)).expect_err("full"), QueueError::Full);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(Duration::from_millis(10)).expect("a").id, "a");
        q.push(queued("c", 1)).expect("freed a slot");
        assert_eq!(q.pop(Duration::from_millis(10)).expect("b").id, "b");
        assert_eq!(q.pop(Duration::from_millis(10)).expect("c").id, "c");
        assert!(
            q.pop(Duration::from_millis(10)).is_none(),
            "empty times out"
        );
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.push(queued("a", 1)).expect("accepted before close");
        q.close();
        assert_eq!(
            q.push(queued("b", 1)).expect_err("closed"),
            QueueError::Closed
        );
        assert_eq!(q.pop(Duration::from_millis(10)).expect("drains").id, "a");
        assert!(
            q.pop(Duration::from_millis(10)).is_none(),
            "drained + closed"
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(queued("a", 1)).expect("one slot exists");
    }

    #[test]
    fn table_is_idempotent_on_retry_and_rejects_id_collisions() {
        let t = JobTable::new();
        t.register("j1", "{spec}").expect("fresh id");
        let retry = t.register("j1", "{spec}").expect_err("duplicate");
        let entry = retry.expect("same spec is an idempotent retry");
        assert!(matches!(entry.state, JobState::Queued));
        let clash = t.register("j1", "{other}").expect_err("duplicate");
        let msg = clash.expect_err("different spec is a collision");
        assert!(msg.contains("different spec"), "{msg}");
    }

    #[test]
    fn table_evicts_oldest_terminal_entries_past_retention() {
        let t = JobTable::with_retention(2);
        // A live job is never evicted, whatever finishes around it.
        t.register("live", "{live}").expect("fresh id");
        for i in 0..5 {
            let id = format!("j{i}");
            t.register(&id, "{spec}").expect("fresh id");
            t.set_state(&id, JobState::Done(Arc::new("{}".to_string())));
        }
        assert!(t.get("live").is_some(), "live job survives eviction");
        assert!(t.get("j0").is_none(), "oldest finished jobs are evicted");
        assert!(t.get("j1").is_none());
        assert!(t.get("j2").is_none());
        assert!(t.get("j3").is_some(), "newest finished jobs are retained");
        assert!(t.get("j4").is_some());
        assert_eq!(t.len(), 3, "1 live + 2 retained terminal");
        // An evicted id is fully reusable.
        t.register("j0", "{other}")
            .expect("evicted id is free again");
    }

    #[test]
    fn removed_ids_are_unknown_and_reusable() {
        let t = JobTable::new();
        t.register("j1", "{spec}").expect("fresh id");
        t.remove("j1");
        assert!(t.get("j1").is_none(), "removed job is unknown");
        assert!(
            t.wait_terminal("j1", Duration::from_millis(1), || true)
                .is_none(),
            "waiters observe a removed id as unknown"
        );
        t.register("j1", "{other}")
            .expect("removed id accepts a fresh spec");
    }

    #[test]
    fn wait_terminal_sees_completion_and_respects_timeout() {
        let t = Arc::new(JobTable::new());
        t.register("j1", "{spec}").expect("fresh id");
        let entry = t
            .wait_terminal("j1", Duration::from_millis(50), || true)
            .expect("known job");
        assert!(!entry.state.is_terminal(), "timed out while queued");
        assert!(t
            .wait_terminal("nope", Duration::from_millis(1), || true)
            .is_none());

        let t2 = Arc::clone(&t);
        let done = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            t2.set_state("j1", JobState::Done(Arc::new("{}".to_string())));
        });
        let entry = t
            .wait_terminal("j1", Duration::from_secs(5), || true)
            .expect("known job");
        assert!(matches!(entry.state, JobState::Done(_)));
        done.join().expect("setter thread exits");
    }
}
