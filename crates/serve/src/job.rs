//! Job identity, lifecycle state, the bounded queue and the job table.
//!
//! The queue is **bounded by construction**: a push against a full queue
//! fails immediately with [`QueueError::Full`] and the caller surfaces a
//! `busy` frame — the daemon applies backpressure instead of buffering
//! without limit. Closing the queue (graceful shutdown) fails new pushes
//! with [`QueueError::Closed`] while letting the executor drain what was
//! already accepted.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use uopcache_bench::sweep::SweepSpec;

/// Derives the default job id: an FNV-1a 64 hash of the spec's canonical
/// JSON, rendered as 16 hex digits. Content-derived ids make blind client
/// retries idempotent — resubmitting the same work maps to the same job.
pub fn job_id_for(spec: &SweepSpec) -> String {
    let canonical = spec.to_json().to_string();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The lifecycle state of one job.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted and waiting in the bounded queue.
    Queued,
    /// Currently executing on the engine.
    Running,
    /// Finished; the canonical report JSON is shared with every waiter.
    Done(Arc<String>),
    /// Panicked or timed out; the message explains which.
    Failed(String),
}

impl JobState {
    /// The state's wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// One entry of the job table.
#[derive(Clone, Debug)]
pub struct JobEntry {
    /// The spec's canonical JSON — the job's identity, checked on id reuse.
    pub spec_json: String,
    /// Current lifecycle state.
    pub state: JobState,
}

/// The server's registry of every job it has seen, with a condition variable
/// that wakes waiters on any state change.
#[derive(Debug, Default)]
pub struct JobTable {
    entries: Mutex<HashMap<String, JobEntry>>,
    changed: Condvar,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new job as queued.
    ///
    /// # Errors
    ///
    /// If the id is already present: returns its current entry when the spec
    /// matches (the idempotent-retry path) and an explanatory message when it
    /// does not (id collision with different work).
    pub fn register(&self, id: &str, spec_json: &str) -> Result<(), Result<JobEntry, String>> {
        let mut entries = lock_clean(&self.entries);
        match entries.get(id) {
            Some(existing) if existing.spec_json == spec_json => Err(Ok(existing.clone())),
            Some(_) => Err(Err(format!(
                "job id {id:?} was already submitted with a different spec"
            ))),
            None => {
                entries.insert(
                    id.to_string(),
                    JobEntry {
                        spec_json: spec_json.to_string(),
                        state: JobState::Queued,
                    },
                );
                Ok(())
            }
        }
    }

    /// Transitions a job to a new state and wakes every waiter.
    pub fn set_state(&self, id: &str, state: JobState) {
        let mut entries = lock_clean(&self.entries);
        if let Some(e) = entries.get_mut(id) {
            e.state = state;
        }
        drop(entries);
        self.changed.notify_all();
    }

    /// The current entry of a job, if known.
    pub fn get(&self, id: &str) -> Option<JobEntry> {
        lock_clean(&self.entries).get(id).cloned()
    }

    /// Blocks until the job reaches a terminal state, `timeout` elapses, or
    /// `keep_waiting` returns false (the drain/stop check). Returns the last
    /// observed entry (`None` for an unknown id).
    pub fn wait_terminal(
        &self,
        id: &str,
        timeout: Duration,
        keep_waiting: impl Fn() -> bool,
    ) -> Option<JobEntry> {
        let deadline = Instant::now() + timeout;
        let mut entries = lock_clean(&self.entries);
        loop {
            match entries.get(id) {
                None => return None,
                Some(e) if e.state.is_terminal() => return Some(e.clone()),
                Some(e) => {
                    let now = Instant::now();
                    if now >= deadline || !keep_waiting() {
                        return Some(e.clone());
                    }
                    // Wake at least every 200ms to re-check `keep_waiting`.
                    let slice = (deadline - now).min(Duration::from_millis(200));
                    let (guard, _timed_out) = self
                        .changed
                        .wait_timeout(entries, slice)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    entries = guard;
                }
            }
        }
    }
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum QueueError {
    /// The queue is at capacity — backpressure; retry later.
    Full,
    /// The server is draining — no new work is accepted.
    Closed,
}

/// One accepted job awaiting execution.
#[derive(Debug)]
pub struct QueuedJob {
    /// The job id (table key).
    pub id: String,
    /// The parsed spec to execute.
    pub spec: SweepSpec,
    /// When the job entered the queue (queue-wait accounting).
    pub enqueued: Instant,
    /// When the job must have *started* by; expired jobs fail instead of
    /// running (per-job timeout, applied to queue wait).
    pub start_deadline: Option<Instant>,
}

#[derive(Debug)]
struct QueueInner {
    items: VecDeque<QueuedJob>,
    closed: bool,
}

/// The bounded, closable job queue.
#[derive(Debug)]
pub struct BoundedQueue {
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
    capacity: usize,
}

impl BoundedQueue {
    /// A queue that holds at most `capacity` jobs (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (excluding the one executing).
    pub fn depth(&self) -> usize {
        lock_clean(&self.inner).items.len()
    }

    /// Enqueues a job, refusing instead of growing past capacity.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] at capacity, [`QueueError::Closed`] after
    /// [`close`](Self::close).
    pub fn push(&self, job: QueuedJob) -> Result<usize, QueueError> {
        let mut inner = lock_clean(&self.inner);
        if inner.closed {
            return Err(QueueError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(QueueError::Full);
        }
        inner.items.push_back(job);
        let depth = inner.items.len();
        drop(inner);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest job, blocking up to `timeout`. Returns `None` on
    /// timeout or when the queue is closed *and* empty (drain complete).
    pub fn pop(&self, timeout: Duration) -> Option<QueuedJob> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock_clean(&self.inner);
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .nonempty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Closes the queue: future pushes fail, queued jobs remain poppable.
    pub fn close(&self) {
        lock_clean(&self.inner).closed = true;
        self.nonempty.notify_all();
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        lock_clean(&self.inner).closed
    }
}

/// Locks a mutex, tolerating poisoning: queue and table state are plain
/// bookkeeping, and the server isolates job panics before they can unwind
/// through a held lock (mirrors the exec pool's policy).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::FrontendConfig;
    use uopcache_trace::AppId;

    fn spec(len: usize) -> SweepSpec {
        SweepSpec {
            cfg: FrontendConfig::zen3(),
            config_name: "zen3".to_string(),
            apps: vec![AppId::Kafka],
            policies: vec!["LRU".to_string()],
            variant: 0,
            len,
            metrics: false,
        }
    }

    fn queued(id: &str, len: usize) -> QueuedJob {
        QueuedJob {
            id: id.to_string(),
            spec: spec(len),
            enqueued: Instant::now(),
            start_deadline: None,
        }
    }

    #[test]
    fn job_ids_are_content_derived_and_stable() {
        let a = job_id_for(&spec(100));
        assert_eq!(a, job_id_for(&spec(100)), "same work, same id");
        assert_ne!(a, job_id_for(&spec(200)), "different work, different id");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn queue_applies_backpressure_and_preserves_order() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(queued("a", 1)).expect("fits"), 1);
        assert_eq!(q.push(queued("b", 1)).expect("fits"), 2);
        assert_eq!(q.push(queued("c", 1)).expect_err("full"), QueueError::Full);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(Duration::from_millis(10)).expect("a").id, "a");
        q.push(queued("c", 1)).expect("freed a slot");
        assert_eq!(q.pop(Duration::from_millis(10)).expect("b").id, "b");
        assert_eq!(q.pop(Duration::from_millis(10)).expect("c").id, "c");
        assert!(
            q.pop(Duration::from_millis(10)).is_none(),
            "empty times out"
        );
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.push(queued("a", 1)).expect("accepted before close");
        q.close();
        assert_eq!(
            q.push(queued("b", 1)).expect_err("closed"),
            QueueError::Closed
        );
        assert_eq!(q.pop(Duration::from_millis(10)).expect("drains").id, "a");
        assert!(
            q.pop(Duration::from_millis(10)).is_none(),
            "drained + closed"
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(queued("a", 1)).expect("one slot exists");
    }

    #[test]
    fn table_is_idempotent_on_retry_and_rejects_id_collisions() {
        let t = JobTable::new();
        t.register("j1", "{spec}").expect("fresh id");
        let retry = t.register("j1", "{spec}").expect_err("duplicate");
        let entry = retry.expect("same spec is an idempotent retry");
        assert!(matches!(entry.state, JobState::Queued));
        let clash = t.register("j1", "{other}").expect_err("duplicate");
        let msg = clash.expect_err("different spec is a collision");
        assert!(msg.contains("different spec"), "{msg}");
    }

    #[test]
    fn wait_terminal_sees_completion_and_respects_timeout() {
        let t = Arc::new(JobTable::new());
        t.register("j1", "{spec}").expect("fresh id");
        let entry = t
            .wait_terminal("j1", Duration::from_millis(50), || true)
            .expect("known job");
        assert!(!entry.state.is_terminal(), "timed out while queued");
        assert!(t
            .wait_terminal("nope", Duration::from_millis(1), || true)
            .is_none());

        let t2 = Arc::clone(&t);
        let done = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            t2.set_state("j1", JobState::Done(Arc::new("{}".to_string())));
        });
        let entry = t
            .wait_terminal("j1", Duration::from_secs(5), || true)
            .expect("known job");
        assert!(matches!(entry.state, JobState::Done(_)));
        done.join().expect("setter thread exits");
    }
}
