//! The multi-node router: consistent-hash job placement across backends.
//!
//! `uopcache route` runs the same nonblocking event loop and speaks the same
//! wire protocol as `uopcache serve` — clients cannot tell them apart — but
//! owns no engine. Each accepted job is placed on a consistent-hash ring of
//! backend daemons keyed by the job's content-derived FNV-1a id, then
//! forwarded through the typed [`Client`] and its report stored in the
//! router's own job table. Because backends produce byte-identical reports
//! for a spec regardless of worker count, *which* backend runs a job never
//! shows in the bytes — placement is purely a load/locality decision.
//!
//! ## The ring
//!
//! Every backend contributes `replicas` virtual nodes (FNV-1a of
//! `"{addr}#{replica}"`). A job maps to the first virtual node clockwise
//! from its id hash; the walk continues to the next *distinct* backend for
//! failover order. Identical jobs therefore dedupe twice — once at the
//! router's table, and again shard-locally at the owning backend, which sees
//! the same id.
//!
//! ## Health, spillover, failover
//!
//! * A health thread probes every backend each `health_interval` with a
//!   `stats` frame: unreachable → unhealthy (evicted from placement until it
//!   answers again); `"draining": true` → drain-aware eviction (the backend
//!   finishes its in-flight jobs, gets no new work).
//! * **Busy spillover**: a `busy` backend (or a full forward queue) spills
//!   the job to the next distinct backend on the ring.
//! * **Failover**: a forward that dies mid-flight (connect refused, socket
//!   error, timeout) marks the backend unhealthy and retries the job on the
//!   ring successors — up to `retry_rounds` full passes — producing the same
//!   bytes wherever it lands. A job the backend *ran* and failed
//!   (panic/queue-timeout) is not retried: deterministic failures would fail
//!   everywhere.

use crate::client::{Client, ClientError};
use crate::config::RouterConfig;
use crate::event::{
    busy_frame, error_frame, lock_clean, panic_message, req_u64, run_event_loop, Service,
    ServiceCore, SubmitAction,
};
use crate::job::{fnv1a64, job_id_for, BoundedQueue, JobState, QueueError, QueuedJob};
use crate::protocol::frame;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uopcache_bench::sweep::SweepSpec;
use uopcache_model::json::Json;

/// The consistent-hash ring: sorted virtual nodes mapping hash points to
/// backend indices. The backend set is fixed at startup; health flags decide
/// *eligibility* at placement time, so the ring itself never changes and the
/// owner of a job id is stable across the router's lifetime.
struct Ring {
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    fn new(addrs: &[SocketAddr], replicas: usize) -> Ring {
        let mut points = Vec::with_capacity(addrs.len() * replicas);
        for (idx, addr) in addrs.iter().enumerate() {
            for replica in 0..replicas {
                points.push((fnv1a64(format!("{addr}#{replica}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            backends: addrs.len(),
        }
    }

    /// Every backend in ring order starting at the owner of `key`: the first
    /// entry is the preferred placement, the rest the spillover/failover
    /// order. Each backend appears once.
    fn order_for(&self, key: u64) -> Vec<usize> {
        let start = self
            .points
            .partition_point(|&(h, _)| h < key)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for offset in 0..self.points.len() {
            let (_, idx) = self.points[(start + offset) % self.points.len()];
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
            }
            if order.len() == self.backends {
                break;
            }
        }
        order
    }
}

/// One backend daemon as the router sees it.
struct Backend {
    addr: SocketAddr,
    /// Pending forwards bound for this backend.
    queue: BoundedQueue,
    /// Cleared when a probe or forward fails, set again when one succeeds.
    healthy: AtomicBool,
    /// Set when the backend reports `"draining": true` (or answers a submit
    /// with a draining `busy`): it finishes in-flight work, gets no new jobs.
    draining: AtomicBool,
    /// Set by the forwarder as it exits (queue closed and fully drained).
    done: AtomicBool,
}

struct RouterShared {
    cfg: RouterConfig,
    core: ServiceCore,
    backends: Vec<Backend>,
    ring: Ring,
    /// Tells the health thread to exit after the drain.
    stop_health: AtomicBool,
}

impl RouterShared {
    fn total_depth(&self) -> usize {
        self.backends.iter().map(|b| b.queue.depth()).sum()
    }

    fn total_capacity(&self) -> usize {
        self.backends.iter().map(|b| b.queue.capacity()).sum()
    }

    fn close_queues(&self) {
        for backend in &self.backends {
            backend.queue.close();
        }
    }

    /// Whether a backend may receive *new* work right now.
    fn placeable(&self, idx: usize) -> bool {
        let b = &self.backends[idx];
        b.healthy.load(Ordering::SeqCst) && !b.draining.load(Ordering::SeqCst)
    }
}

impl Service for RouterShared {
    fn core(&self) -> &ServiceCore {
        &self.core
    }

    fn submit(&self, req: &Json) -> SubmitAction {
        let reject = |reply: Json| SubmitAction {
            reply,
            wait_for: None,
        };
        let spec = match req
            .field("job")
            .map_err(|e| e.to_string())
            .and_then(SweepSpec::from_json)
        {
            Ok(spec) => spec,
            Err(message) => {
                self.core.count("jobs_rejected_invalid");
                return reject(error_frame(None, &format!("invalid job: {message}")));
            }
        };
        let spec_json = spec.to_json().to_string();
        let id = match req.field("id") {
            Ok(v) => match v.as_str() {
                Some(s) if !s.is_empty() => s.to_string(),
                _ => {
                    self.core.count("jobs_rejected_invalid");
                    return reject(error_frame(
                        None,
                        "invalid job: \"id\" must be a non-empty string",
                    ));
                }
            },
            Err(_) => job_id_for(&spec),
        };
        let wait = req
            .field("wait")
            .ok()
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let wait_timeout = Duration::from_millis(req_u64(req, "timeout_ms").unwrap_or(600_000));

        let mut deduped = false;
        match self.core.table.register(&id, &spec_json) {
            Ok(()) => {
                // Same contract as the daemon: a refused submission is
                // forgotten entirely so the busy-frame retry re-enqueues.
                if self.core.draining() {
                    self.core.count("jobs_rejected_busy");
                    self.core.table.remove(&id);
                    return reject(self.busy(&id, "draining"));
                }
                let queue_timeout = req_u64(req, "queue_timeout_ms")
                    .map(Duration::from_millis)
                    .or(self.cfg.job_timeout);
                let now = Instant::now();
                let mut pending = Some(QueuedJob {
                    id: id.clone(),
                    spec,
                    enqueued: now,
                    start_deadline: queue_timeout.map(|t| now + t),
                });
                // Busy-aware spillover at admission: walk the ring from the
                // owner, skipping unhealthy/draining backends and spilling
                // past full queues.
                let order = self.ring.order_for(fnv1a64(id.as_bytes()));
                let mut any_placeable = false;
                let mut closed = false;
                for idx in order {
                    if !self.placeable(idx) {
                        continue;
                    }
                    any_placeable = true;
                    let Some(job) = pending.take() else { break };
                    match self.backends[idx].queue.try_push(job) {
                        Ok(_depth) => {
                            self.core.count("jobs_accepted");
                            self.core.count(&format!("backend{idx}_routed"));
                            break;
                        }
                        Err((QueueError::Full, back)) => pending = Some(*back),
                        Err((QueueError::Closed, back)) => {
                            pending = Some(*back);
                            closed = true;
                            break;
                        }
                    }
                }
                if closed {
                    self.core.count("jobs_rejected_busy");
                    self.core.table.remove(&id);
                    return reject(self.busy(&id, "draining"));
                }
                if pending.is_some() {
                    self.core.count("jobs_rejected_busy");
                    self.core.table.remove(&id);
                    let reason = if any_placeable {
                        "queue full"
                    } else {
                        "no healthy backend"
                    };
                    return reject(self.busy(&id, reason));
                }
            }
            Err(Ok(_existing)) => {
                self.core.count("jobs_deduped");
                deduped = true;
            }
            Err(Err(message)) => {
                self.core.count("jobs_rejected_invalid");
                return reject(error_frame(Some(&id), &message));
            }
        }

        let accepted = frame(
            "accepted",
            vec![
                ("job_id".to_string(), Json::Str(id.clone())),
                ("deduped".to_string(), Json::Bool(deduped)),
                (
                    "queue_depth".to_string(),
                    Json::U64(self.total_depth() as u64),
                ),
            ],
        );
        SubmitAction {
            reply: accepted,
            wait_for: wait.then_some((id, wait_timeout)),
        }
    }

    fn stats_frame(&self) -> Json {
        // Refresh the instantaneous levels before rendering, so the embedded
        // metrics carry per-backend gauges alongside the routing counters.
        self.core.set_gauge(
            "active_connections",
            self.core.active_conns.load(Ordering::SeqCst) as u64,
        );
        for (idx, backend) in self.backends.iter().enumerate() {
            self.core.set_gauge(
                &format!("backend{idx}_queue_depth"),
                backend.queue.depth() as u64,
            );
            self.core.set_gauge(
                &format!("backend{idx}_healthy"),
                u64::from(backend.healthy.load(Ordering::SeqCst)),
            );
        }
        let backends = self
            .backends
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("addr".to_string(), Json::Str(b.addr.to_string())),
                    (
                        "healthy".to_string(),
                        Json::Bool(b.healthy.load(Ordering::SeqCst)),
                    ),
                    (
                        "draining".to_string(),
                        Json::Bool(b.draining.load(Ordering::SeqCst)),
                    ),
                    ("queue_depth".to_string(), Json::U64(b.queue.depth() as u64)),
                ])
            })
            .collect();
        frame(
            "stats",
            vec![
                (
                    "queue_depth".to_string(),
                    Json::U64(self.total_depth() as u64),
                ),
                (
                    "queue_capacity".to_string(),
                    Json::U64(self.total_capacity() as u64),
                ),
                ("draining".to_string(), Json::Bool(self.core.draining())),
                (
                    "active_connections".to_string(),
                    Json::U64(self.core.active_conns.load(Ordering::SeqCst) as u64),
                ),
                ("backends".to_string(), Json::Arr(backends)),
                (
                    "metrics".to_string(),
                    lock_clean(&self.core.metrics).to_json(),
                ),
            ],
        )
    }

    fn begin_shutdown(&self) -> Json {
        self.close_queues();
        self.core.draining.store(true, Ordering::SeqCst);
        frame(
            "shutdown_ack",
            vec![("queued".to_string(), Json::U64(self.total_depth() as u64))],
        )
    }

    fn drained(&self) -> bool {
        self.backends.iter().all(|b| b.done.load(Ordering::SeqCst))
    }
}

impl RouterShared {
    fn busy(&self, id: &str, reason: &str) -> Json {
        busy_frame(id, reason, self.total_depth(), self.total_capacity())
    }
}

/// The bound router; [`run`](Self::run) serves until drained.
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Binds the router's listener and wires up the backend ring.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when no backends were configured, otherwise any socket
    /// bind failure.
    pub fn bind(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(cfg.addr)?;
        listener.set_nonblocking(true)?;
        let ring = Ring::new(&cfg.backends, cfg.replicas);
        let mut backends = Vec::with_capacity(cfg.backends.len());
        for &addr in &cfg.backends {
            backends.push(Backend {
                addr,
                queue: BoundedQueue::new(cfg.queue_capacity),
                // Optimistic until the first probe or forward says otherwise.
                healthy: AtomicBool::new(true),
                draining: AtomicBool::new(false),
                done: AtomicBool::new(false),
            });
        }
        let core = ServiceCore::new(cfg.job_retention);
        Ok(Router {
            listener,
            shared: Arc::new(RouterShared {
                cfg,
                core,
                backends,
                ring,
                stop_health: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    ///
    /// # Errors
    ///
    /// Any socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// How many backends the router was configured with.
    pub fn backend_count(&self) -> usize {
        self.shared.backends.len()
    }

    /// Serves until a `shutdown` frame arrives and the drain completes:
    /// every pending forward finishes on some backend, waiting clients get
    /// their final frames, and buffered replies flush.
    ///
    /// # Errors
    ///
    /// Any listener failure other than the nonblocking-poll `WouldBlock`.
    // audit:spawn-site — health thread + one forwarder per backend; all joined after the event loop drains
    pub fn run(self) -> io::Result<()> {
        let health = {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("uopcache-route-health".to_string())
                .spawn(move || health_loop(&shared))?
        };
        let mut forwarders = Vec::with_capacity(self.shared.backends.len());
        for idx in 0..self.shared.backends.len() {
            let shared = Arc::clone(&self.shared);
            forwarders.push(
                std::thread::Builder::new()
                    .name(format!("uopcache-route-fwd{idx}"))
                    .spawn(move || forwarder_loop(&shared, idx))?,
            );
        }
        let result = run_event_loop(
            &self.listener,
            self.shared.as_ref(),
            &self.shared.cfg.tuning,
        );
        self.shared.close_queues();
        for handle in forwarders {
            let _ = handle.join();
        }
        self.shared.stop_health.store(true, Ordering::SeqCst);
        let _ = health.join();
        result
    }

    /// Runs the router on a background thread, returning a handle with the
    /// bound address — the in-process harness the e2e tests drive.
    ///
    /// # Errors
    ///
    /// Any socket introspection or thread-spawn failure.
    // audit:spawn-site — event-loop thread, joined by RouterHandle::join_within after shutdown
    pub fn spawn(self) -> io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::Builder::new()
            .name("uopcache-route-accept".to_string())
            .spawn(move || self.run())?;
        Ok(RouterHandle { addr, thread })
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("addr", &self.listener.local_addr().ok())
            .field("backends", &self.shared.backends.len())
            .finish()
    }
}

/// A running in-process router (see [`Router::spawn`]).
#[derive(Debug)]
pub struct RouterHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl RouterHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits up to `timeout` for the router thread to exit (it exits after a
    /// completed drain). Returns `None` if it is still running.
    pub fn join_within(self, timeout: Duration) -> Option<io::Result<()>> {
        let deadline = Instant::now() + timeout;
        while !self.thread.is_finished() {
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Some(self.thread.join().unwrap_or_else(|p| {
            Err(io::Error::other(format!(
                "router thread panicked: {}",
                panic_message(p.as_ref())
            )))
        }))
    }
}

/// One backend's forwarder: pops pending jobs and forwards each through the
/// typed [`Client`], failing over along the ring when the backend refuses or
/// dies. One forward at a time per backend mirrors the daemon's
/// one-executor-per-shard model.
fn forwarder_loop(shared: &RouterShared, idx: usize) {
    let backend = &shared.backends[idx];
    loop {
        let Some(job) = backend.queue.pop(Duration::from_millis(100)) else {
            if backend.queue.is_closed() {
                break;
            }
            continue;
        };
        let waited = job.enqueued.elapsed();
        shared.core.observe_ms("queue_wait_ms", waited);
        if job
            .start_deadline
            .is_some_and(|deadline| Instant::now() > deadline)
        {
            shared.core.count("jobs_timed_out");
            shared.core.count("jobs_failed");
            shared.core.table.set_state(
                &job.id,
                JobState::Failed(format!(
                    "timed out after {}ms in the queue",
                    waited.as_millis()
                )),
            );
            continue;
        }
        shared.core.table.set_state(&job.id, JobState::Running);
        let started = Instant::now();
        let outcome = forward_job(shared, idx, &job);
        shared.core.observe_ms("forward_ms", started.elapsed());
        match outcome {
            Ok(report) => {
                shared.core.count("jobs_completed");
                shared
                    .core
                    .table
                    .set_state(&job.id, JobState::Done(Arc::new(report)));
            }
            Err(message) => {
                shared.core.count("jobs_failed");
                shared
                    .core
                    .table
                    .set_state(&job.id, JobState::Failed(message));
            }
        }
    }
    backend.done.store(true, Ordering::SeqCst);
}

/// Forwards one job, retrying along the ring: the queued owner first, then
/// each distinct successor, for up to `retry_rounds` passes. Transport
/// failures mark a backend unhealthy and move on; a backend-side job failure
/// is final (deterministic — it would fail identically everywhere).
fn forward_job(shared: &RouterShared, owner: usize, job: &QueuedJob) -> Result<String, String> {
    let ring_order = shared.ring.order_for(fnv1a64(job.id.as_bytes()));
    // The queued owner leads (admission may already have spilled the job off
    // its ring owner), then the ring order minus the owner.
    let mut order = Vec::with_capacity(ring_order.len());
    order.push(owner);
    order.extend(ring_order.into_iter().filter(|&b| b != owner));

    let mut last_failure = "no backend attempted".to_string();
    for round in 0..shared.cfg.retry_rounds {
        for &idx in &order {
            let backend = &shared.backends[idx];
            if backend.draining.load(Ordering::SeqCst) {
                continue; // drain-aware: no new work to a draining backend
            }
            // On the first pass trust the health flags; later passes probe
            // even "unhealthy" backends in case the flags are stale.
            if round == 0 && !backend.healthy.load(Ordering::SeqCst) && order.len() > 1 {
                continue;
            }
            match forward_once(shared, idx, job) {
                Ok(report) => {
                    backend.healthy.store(true, Ordering::SeqCst);
                    shared.core.count(&format!("backend{idx}_forwarded"));
                    return Ok(report);
                }
                Err(ForwardError::Busy { draining }) => {
                    if draining {
                        backend.draining.store(true, Ordering::SeqCst);
                    }
                    shared.core.count(&format!("backend{idx}_spilled"));
                    last_failure = format!("backend {} busy", backend.addr);
                }
                Err(ForwardError::Transport(message)) => {
                    backend.healthy.store(false, Ordering::SeqCst);
                    shared.core.count(&format!("backend{idx}_errors"));
                    last_failure = format!("backend {}: {message}", backend.addr);
                }
                Err(ForwardError::JobFailed(message)) => return Err(message),
            }
        }
        if round + 1 < shared.cfg.retry_rounds {
            std::thread::sleep(shared.cfg.retry_backoff);
        }
    }
    Err(format!(
        "no backend could run the job after {} passes (last: {last_failure})",
        shared.cfg.retry_rounds
    ))
}

enum ForwardError {
    /// The backend refused admission (full queue or draining): spill over.
    Busy { draining: bool },
    /// The backend was unreachable or died mid-flight: fail over.
    Transport(String),
    /// The backend ran the job and it failed: final.
    JobFailed(String),
}

/// One forward attempt against one backend, reusing the job's id so the
/// backend's dedupe makes repeated attempts idempotent.
fn forward_once(
    shared: &RouterShared,
    idx: usize,
    job: &QueuedJob,
) -> Result<String, ForwardError> {
    let backend = &shared.backends[idx];
    let mut client = Client::connect(backend.addr, shared.cfg.probe_timeout)
        .map_err(|e| ForwardError::Transport(e.to_string()))?;
    match client.submit_and_wait(&job.spec, Some(&job.id), shared.cfg.forward_timeout) {
        Ok(result) => Ok(result.report.to_string()),
        Err(ClientError::Busy { reason }) => Err(ForwardError::Busy {
            draining: reason.contains("draining"),
        }),
        Err(ClientError::Server(message)) => Err(ForwardError::JobFailed(message)),
        Err(e) => Err(ForwardError::Transport(e.to_string())),
    }
}

/// The health thread: probes every backend each `health_interval` with a
/// `stats` frame, updating the healthy/draining flags placement reads.
fn health_loop(shared: &RouterShared) {
    loop {
        if shared.stop_health.load(Ordering::SeqCst) {
            break;
        }
        for backend in &shared.backends {
            match probe(backend.addr, shared.cfg.probe_timeout) {
                Ok(draining) => {
                    backend.healthy.store(true, Ordering::SeqCst);
                    backend.draining.store(draining, Ordering::SeqCst);
                }
                Err(_) => backend.healthy.store(false, Ordering::SeqCst),
            }
        }
        shared.core.count("health_probes");
        // Sleep in short slices so the post-drain stop is noticed promptly.
        let mut remaining = shared.cfg.health_interval;
        while remaining > Duration::ZERO && !shared.stop_health.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// One health probe: fetch the backend's stats frame and read its
/// `draining` flag.
fn probe(addr: SocketAddr, timeout: Duration) -> Result<bool, ClientError> {
    let mut client = Client::connect(addr, timeout)?;
    let stats = client.stats(timeout)?;
    Ok(stats
        .field("draining")
        .ok()
        .and_then(Json::as_bool)
        .unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|i| {
                format!("127.0.0.1:{}", 7000 + i)
                    .parse()
                    .expect("addr parses")
            })
            .collect()
    }

    #[test]
    fn ring_order_is_stable_and_covers_every_backend() {
        let ring = Ring::new(&addrs(3), 16);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            let order = ring.order_for(key);
            assert_eq!(order.len(), 3, "every backend appears once");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert_eq!(order, ring.order_for(key), "placement is deterministic");
        }
    }

    #[test]
    fn ring_spreads_keys_across_backends() {
        let ring = Ring::new(&addrs(4), 64);
        let mut hit = [0usize; 4];
        for i in 0..256u32 {
            hit[ring.order_for(fnv1a64(&i.to_le_bytes()))[0]] += 1;
        }
        assert!(
            hit.iter().all(|&h| h > 0),
            "every backend owns some keys: {hit:?}"
        );
    }
}
