//! A blocking client for the serve protocol: connect, submit, wait, stats.
//!
//! The client re-renders received result frames through the canonical JSON
//! printer, so a fetched report is byte-identical to the offline CLI's
//! output for the same spec (the parse ↔ print round-trip is exact).

use crate::protocol::{frame, frame_type, read_frame, write_frame, FrameError};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use uopcache_bench::sweep::SweepSpec;
use uopcache_model::json::Json;

/// A failure while talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// Frame-level failure (truncation, schema mismatch, oversized frame).
    Frame(FrameError),
    /// The server answered with a `busy` frame — backpressure; retry later.
    Busy {
        /// Why the server refused (`"queue full"`, `"draining"`, …).
        reason: String,
    },
    /// The server answered with an `error` frame.
    Server(String),
    /// The server answered with a frame the client did not expect.
    Unexpected(String),
    /// No complete frame arrived within the client's deadline.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy { reason } => write!(f, "server busy: {reason}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Unexpected(ty) => write!(f, "unexpected frame type {ty:?}"),
            ClientError::TimedOut => f.write_str("timed out waiting for a frame"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Frame(other),
        }
    }
}

/// The outcome of a `submit` that waited for completion.
#[derive(Debug)]
pub struct JobResult {
    /// The job id the server assigned (or confirmed).
    pub job_id: String,
    /// Whether the submit matched an already-known identical job.
    pub deduped: bool,
    /// The report, parsed; `to_string()` re-renders it canonically.
    pub report: Json,
}

/// A blocking connection to a serve daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with `timeout` applied to the connect and to each read poll.
    ///
    /// # Errors
    ///
    /// Any socket failure, or an unresolvable address.
    pub fn connect<A: ToSocketAddrs>(addr: A, timeout: Duration) -> Result<Client, ClientError> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Io(std::io::Error::other("address resolved to nothing")))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Any socket or serialisation failure.
    pub fn send(&mut self, body: &Json) -> Result<(), ClientError> {
        write_frame(&self.stream, body)?;
        Ok(())
    }

    /// Receives the next frame, polling up to `deadline_in`.
    ///
    /// # Errors
    ///
    /// [`ClientError::TimedOut`] if no frame starts in time, otherwise any
    /// socket or protocol failure.
    pub fn recv(&mut self, deadline_in: Duration) -> Result<Json, ClientError> {
        let deadline = Instant::now() + deadline_in;
        loop {
            match read_frame(&self.stream, Duration::from_secs(10))? {
                Some(body) => return Ok(body),
                None => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::TimedOut);
                    }
                }
            }
        }
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// Any transport failure, or a non-`pong` reply.
    pub fn ping(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.send(&frame("ping", Vec::with_capacity(0)))?;
        let reply = self.recv(timeout)?;
        expect_type(&reply, "pong").map(|_| ())
    }

    /// Submits a job and waits for its terminal frame: the parsed report on
    /// success, [`ClientError::Server`] on failure/panic/timeout,
    /// [`ClientError::Busy`] when the queue refused it.
    ///
    /// # Errors
    ///
    /// Any transport failure or server-side rejection, as above.
    pub fn submit_and_wait(
        &mut self,
        spec: &SweepSpec,
        id: Option<&str>,
        timeout: Duration,
    ) -> Result<JobResult, ClientError> {
        let timeout_ms = u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX);
        let mut fields = vec![("job".to_string(), spec.to_json())];
        if let Some(id) = id {
            fields.push(("id".to_string(), Json::Str(id.to_string())));
        }
        fields.push(("wait".to_string(), Json::Bool(true)));
        fields.push(("timeout_ms".to_string(), Json::U64(timeout_ms)));
        self.send(&frame("submit", fields))?;

        let first = self.recv(timeout)?;
        let accepted = expect_type(&first, "accepted")?;
        let job_id = str_field(accepted, "job_id")?;
        let deduped = accepted
            .field("deduped")
            .ok()
            .and_then(Json::as_bool)
            .unwrap_or(false);

        // The server holds the connection until the job is terminal, so give
        // the read loop the full wait budget plus slack for the final frame.
        let last = self.recv(timeout + Duration::from_secs(5))?;
        match expect_type(&last, "result") {
            Ok(result) => Ok(JobResult {
                job_id,
                deduped,
                report: result.field("result").map_err(malformed)?.clone(),
            }),
            // A `status` frame here is the server-side wait timing out while
            // the job is still live — surface it as such, not as protocol
            // noise (mirrors `wait`).
            Err(ClientError::Unexpected(ty)) if ty == "status" => {
                let state = str_field(&last, "state")?;
                Err(ClientError::Server(format!(
                    "job {job_id:?} still {state} after the wait timeout"
                )))
            }
            Err(e) => Err(e),
        }
    }

    /// Fire-and-forget submit: enqueue without waiting. Returns
    /// `(job_id, deduped)`.
    ///
    /// # Errors
    ///
    /// Any transport failure or server-side rejection.
    pub fn submit(
        &mut self,
        spec: &SweepSpec,
        id: Option<&str>,
        timeout: Duration,
    ) -> Result<(String, bool), ClientError> {
        let mut fields = vec![("job".to_string(), spec.to_json())];
        if let Some(id) = id {
            fields.push(("id".to_string(), Json::Str(id.to_string())));
        }
        self.send(&frame("submit", fields))?;
        let reply = self.recv(timeout)?;
        let accepted = expect_type(&reply, "accepted")?;
        let deduped = accepted
            .field("deduped")
            .ok()
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Ok((str_field(accepted, "job_id")?, deduped))
    }

    /// The current state label of a job (`queued`/`running`/`done`/`failed`).
    ///
    /// # Errors
    ///
    /// Any transport failure, or an unknown job id.
    pub fn status(&mut self, job_id: &str, timeout: Duration) -> Result<String, ClientError> {
        self.send(&frame(
            "status",
            vec![("job_id".to_string(), Json::Str(job_id.to_string()))],
        ))?;
        let reply = self.recv(timeout)?;
        let status = expect_type(&reply, "status")?;
        str_field(status, "state")
    }

    /// Blocks server-side until a job is terminal, then returns its report.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for failed jobs or wait timeouts, otherwise
    /// any transport failure.
    pub fn wait(&mut self, job_id: &str, timeout: Duration) -> Result<Json, ClientError> {
        let timeout_ms = u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX);
        self.send(&frame(
            "wait",
            vec![
                ("job_id".to_string(), Json::Str(job_id.to_string())),
                ("timeout_ms".to_string(), Json::U64(timeout_ms)),
            ],
        ))?;
        let reply = self.recv(timeout + Duration::from_secs(5))?;
        match expect_type(&reply, "result") {
            Ok(result) => Ok(result.field("result").map_err(malformed)?.clone()),
            Err(ClientError::Unexpected(ty)) if ty == "status" => {
                let state = str_field(&reply, "state")?;
                Err(ClientError::Server(format!(
                    "job {job_id:?} still {state} after the wait timeout"
                )))
            }
            Err(e) => Err(e),
        }
    }

    /// Fetches the server's stats frame (queue gauges plus the metrics
    /// registry: counters and latency histograms).
    ///
    /// # Errors
    ///
    /// Any transport failure.
    pub fn stats(&mut self, timeout: Duration) -> Result<Json, ClientError> {
        self.send(&frame("stats", Vec::with_capacity(0)))?;
        let reply = self.recv(timeout)?;
        expect_type(&reply, "stats").cloned()
    }

    /// Asks the server to drain and exit; returns the number of jobs that
    /// were still queued when the drain began.
    ///
    /// # Errors
    ///
    /// Any transport failure.
    pub fn shutdown(&mut self, timeout: Duration) -> Result<u64, ClientError> {
        self.send(&frame("shutdown", Vec::with_capacity(0)))?;
        let reply = self.recv(timeout)?;
        let ack = expect_type(&reply, "shutdown_ack")?;
        Ok(ack.field("queued").ok().and_then(Json::as_u64).unwrap_or(0))
    }
}

/// Checks a frame's type, converting server-sent `error` and `busy` frames
/// into their [`ClientError`] variants.
fn expect_type<'a>(body: &'a Json, want: &str) -> Result<&'a Json, ClientError> {
    let ty = frame_type(body).map_err(ClientError::Frame)?;
    if ty == want {
        return Ok(body);
    }
    match ty {
        "error" => Err(ClientError::Server(str_field(body, "message")?)),
        "busy" => Err(ClientError::Busy {
            reason: str_field(body, "reason").unwrap_or_else(|_| "busy".to_string()),
        }),
        other => Err(ClientError::Unexpected(other.to_string())),
    }
}

fn str_field(body: &Json, name: &str) -> Result<String, ClientError> {
    Ok(body
        .field(name)
        .map_err(malformed)?
        .as_str()
        .ok_or_else(|| {
            ClientError::Frame(FrameError::Malformed(format!("{name:?} must be a string")))
        })?
        .to_string())
}

fn malformed(e: impl std::fmt::Display) -> ClientError {
    ClientError::Frame(FrameError::Malformed(e.to_string()))
}
