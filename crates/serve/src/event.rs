//! The nonblocking event loop shared by the daemon and the router.
//!
//! One thread multiplexes every client connection: the listener and each
//! accepted stream run with `set_nonblocking(true)`, and the loop polls them
//! round-robin — read what's there, decode complete frames through the
//! incremental [`FrameDecoder`], dispatch, buffer replies, write what fits.
//! Thousands of connections cost a few kilobytes each instead of a thread
//! each.
//!
//! What the loop serves is abstracted behind [`Service`]: the daemon answers
//! `submit` by enqueueing onto a worker shard, the router by enqueueing onto
//! a backend forwarder — everything else (ping/status/wait/stats/shutdown
//! framing, idle and stall policing, drain sequencing) is identical and
//! lives here once.
//!
//! ## Waiting without blocking
//!
//! A `wait` (or `submit` with `"wait": true`) used to block its connection
//! thread on the job table's condvar. Here the connection instead *parks*:
//! it records the job id and a wait deadline, and the loop polls the table's
//! change counter — a parked connection costs nothing until a job actually
//! changes state. Frames that arrive while parked are buffered and served
//! after the wait resolves, preserving the strict request→reply ordering of
//! the blocking implementation.
//!
//! ## Bounded by construction
//!
//! Per-connection memory is bounded end to end: the decoder allocates only
//! after validating a length prefix against [`MAX_FRAME_BYTES`], buffered
//! requests are capped (`MAX_PIPELINED` — beyond it the loop simply stops
//! reading that socket and TCP backpressure does the rest), and the reply
//! buffer is capped the same way before more requests are consumed.
//!
//! [`MAX_FRAME_BYTES`]: crate::protocol::MAX_FRAME_BYTES

use crate::config::ConnTuning;
use crate::job::{JobState, JobTable};
use crate::protocol::{encode_frame, frame, frame_type, FrameDecoder};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use uopcache_exec::{Clock, Deadline};
use uopcache_model::json::Json;
use uopcache_obs::{Histogram, MetricsRegistry};

/// Requests buffered per connection while a wait is parked; past this the
/// loop stops reading the socket until the backlog drains.
const MAX_PIPELINED: usize = 64;

/// Reply bytes buffered per connection before the loop stops consuming more
/// of its requests (a slow reader cannot balloon the daemon).
const MAX_OUTBUF_BYTES: usize = 4 << 20;

/// State both services share: the job table, the metrics registry and the
/// drain/connection gauges the event loop maintains.
pub(crate) struct ServiceCore {
    /// Every known job, bounded by retention.
    pub(crate) table: JobTable,
    /// Counters and latency histograms surfaced by the `stats` frame.
    pub(crate) metrics: Mutex<MetricsRegistry>,
    /// Set by a `shutdown` frame: stop accepting connections and work.
    pub(crate) draining: AtomicBool,
    /// Connections currently multiplexed (maintained by the event loop).
    pub(crate) active_conns: AtomicUsize,
}

impl ServiceCore {
    pub(crate) fn new(retention: usize) -> Self {
        ServiceCore {
            table: JobTable::with_retention(retention),
            metrics: Mutex::new(MetricsRegistry::new()),
            draining: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
        }
    }

    pub(crate) fn count(&self, name: &str) {
        lock_clean(&self.metrics).inc(name);
    }

    pub(crate) fn set_gauge(&self, name: &str, value: u64) {
        lock_clean(&self.metrics).set_gauge(name, value);
    }

    pub(crate) fn observe_ms(&self, name: &str, elapsed: Duration) {
        let ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
        lock_clean(&self.metrics)
            .histogram_with(name, || Histogram::log2(14))
            .observe(ms);
    }

    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// The dispatch outcome of a `submit` frame.
pub(crate) struct SubmitAction {
    /// The immediate reply (`accepted`, `busy` or `error`).
    pub(crate) reply: Json,
    /// When set, the connection parks until this job id is terminal (the
    /// `"wait": true` path), with this server-side wait budget.
    pub(crate) wait_for: Option<(String, Duration)>,
}

/// What the event loop asks of the daemon or the router: everything
/// service-specific about a request. The generic halves of the protocol —
/// framing, ping, status/wait mechanics, idle policing, drain sequencing —
/// live in the loop itself.
pub(crate) trait Service: Send + Sync {
    /// The shared table/metrics/drain state.
    fn core(&self) -> &ServiceCore;
    /// Handles one `submit` frame end to end (parse, dedupe, enqueue).
    fn submit(&self, req: &Json) -> SubmitAction;
    /// Renders the `stats` frame.
    fn stats_frame(&self) -> Json;
    /// Begins the drain (closes queues, flips the flag); returns the
    /// `shutdown_ack` frame.
    fn begin_shutdown(&self) -> Json;
    /// Whether every executor/forwarder has finished after a drain began —
    /// parked waits resolve to snapshots once true.
    fn drained(&self) -> bool;
}

/// The observed state of one polled job.
pub(crate) enum JobPoll {
    /// Not in the table (never submitted, evicted, or refused).
    Unknown,
    /// Still live; the wire label of its state.
    Pending(&'static str),
    /// Terminal; the final frame to send (`result` or `error`).
    Terminal(Json),
}

/// Polls a job without blocking, rendering terminal states to their final
/// wire frame exactly as the blocking `wait` path did.
pub(crate) fn poll_job(core: &ServiceCore, id: &str) -> JobPoll {
    match core.table.get(id) {
        None => JobPoll::Unknown,
        Some(entry) => match entry.state {
            JobState::Done(report) => match Json::parse(&report) {
                Ok(body) => JobPoll::Terminal(frame(
                    "result",
                    vec![
                        ("job_id".to_string(), Json::Str(id.to_string())),
                        ("result".to_string(), body),
                    ],
                )),
                Err(e) => JobPoll::Terminal(error_frame(
                    Some(id),
                    &format!("stored report unparsable: {e}"),
                )),
            },
            JobState::Failed(message) => JobPoll::Terminal(error_frame(Some(id), &message)),
            state => JobPoll::Pending(state.label()),
        },
    }
}

pub(crate) fn status_frame(id: &str, state: &'static str) -> Json {
    frame(
        "status",
        vec![
            ("job_id".to_string(), Json::Str(id.to_string())),
            ("state".to_string(), Json::Str(state.to_string())),
        ],
    )
}

pub(crate) fn error_frame(id: Option<&str>, message: &str) -> Json {
    let mut fields = Vec::with_capacity(2);
    if let Some(id) = id {
        fields.push(("job_id".to_string(), Json::Str(id.to_string())));
    }
    fields.push(("message".to_string(), Json::Str(message.to_string())));
    frame("error", fields)
}

/// A `busy` rejection for one job: code 429, the reason, and the queue
/// gauges the client can base its backoff on.
pub(crate) fn busy_frame(id: &str, reason: &str, depth: usize, capacity: usize) -> Json {
    frame(
        "busy",
        vec![
            ("job_id".to_string(), Json::Str(id.to_string())),
            ("code".to_string(), Json::U64(429)),
            ("reason".to_string(), Json::Str(reason.to_string())),
            ("queue_depth".to_string(), Json::U64(depth as u64)),
            ("queue_capacity".to_string(), Json::U64(capacity as u64)),
        ],
    )
}

pub(crate) fn req_job_id(req: &Json) -> Result<&str, String> {
    req.field("job_id")
        .map_err(|e| e.to_string())?
        .as_str()
        .ok_or_else(|| "\"job_id\" must be a string".to_string())
}

pub(crate) fn req_u64(req: &Json, field: &str) -> Option<u64> {
    req.field(field).ok().and_then(Json::as_u64)
}

/// Locks a mutex, tolerating poisoning (job panics are caught before they
/// can unwind through a held lock; see the exec pool for the same policy).
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Stringifies a panic payload (mirrors the exec pool's helper).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// A parked `wait`: the connection sends nothing for this job until it is
/// terminal, the deadline passes, or the service drains.
struct ParkedWait {
    id: String,
    deadline: Deadline,
}

/// One multiplexed connection's state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Decoded-but-undispatched requests (pipelining while parked).
    inbox: Vec<Json>,
    /// Next inbox entry to dispatch (drained entries are cleared in bulk).
    inbox_pos: usize,
    /// Reply bytes not yet accepted by the socket.
    outbuf: Vec<u8>,
    out_pos: usize,
    wait: Option<ParkedWait>,
    idle_deadline: Deadline,
    /// Set while the decoder is mid-frame: when the frame's bytes stall past
    /// it, the connection is cut with an error frame.
    stall_deadline: Option<Deadline>,
    /// Flush what's buffered, then close (protocol error or peer EOF).
    close_after_flush: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, clock: &dyn Clock, tuning: &ConnTuning) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            inbox: Vec::with_capacity(4),
            inbox_pos: 0,
            outbuf: Vec::with_capacity(256),
            out_pos: 0,
            wait: None,
            idle_deadline: Deadline::after(clock, tuning.idle_timeout),
            stall_deadline: None,
            close_after_flush: false,
            dead: false,
        }
    }

    fn pending_requests(&self) -> usize {
        self.inbox.len() - self.inbox_pos
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.outbuf.len()
    }

    /// Buffers one reply frame for writing.
    fn push_frame(&mut self, body: &Json) {
        match encode_frame(body) {
            Ok(wire) => self.outbuf.extend_from_slice(&wire),
            // An unencodable reply (oversized rendering) cannot be answered
            // in-protocol; cut the connection.
            Err(_) => self.close_after_flush = true,
        }
    }

    /// Reads whatever the socket has, decoding complete frames into the
    /// inbox. Stops early under backlog so a flooding client is throttled by
    /// its own unread socket buffer.
    fn read_some(&mut self, buf: &mut [u8], clock: &dyn Clock, tuning: &ConnTuning) -> bool {
        let mut progressed = false;
        loop {
            if self.close_after_flush
                || self.pending_requests() >= MAX_PIPELINED
                || self.outbuf.len() - self.out_pos >= MAX_OUTBUF_BYTES
            {
                return progressed;
            }
            match self.stream.read(buf) {
                Ok(0) => {
                    // Peer EOF: serve what was already pipelined, then close.
                    self.close_after_flush = true;
                    return true;
                }
                Ok(n) => {
                    progressed = true;
                    let before = self.inbox.len();
                    if let Err(e) = self.decoder.feed(&buf[..n], &mut self.inbox) {
                        self.push_frame(&error_frame(None, &e.to_string()));
                        self.close_after_flush = true;
                        return true;
                    }
                    if self.inbox.len() > before {
                        self.idle_deadline = Deadline::after(clock, tuning.idle_timeout);
                    }
                    // Frame-stall policing: the deadline arms when a frame
                    // starts and disarms at each boundary.
                    self.stall_deadline =
                        if self.decoder.mid_frame() {
                            Some(self.stall_deadline.unwrap_or_else(|| {
                                Deadline::after(clock, tuning.frame_stall_limit)
                            }))
                        } else {
                            None
                        };
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progressed,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
    }

    /// Resolves a parked wait if its job finished, its deadline passed, or
    /// the service drained (then the last observed state is snapshotted,
    /// exactly as the blocking wait did on stop).
    fn poll_wait(&mut self, service: &dyn Service, clock: &dyn Clock, table_changed: bool) {
        let Some(w) = &self.wait else { return };
        let expired = w.deadline.expired(clock);
        let drained = service.drained();
        if !(table_changed || expired || drained) {
            return;
        }
        let reply = match poll_job(service.core(), &w.id) {
            JobPoll::Terminal(body) => body,
            JobPoll::Unknown => error_frame(Some(&w.id), &format!("unknown job {:?}", w.id)),
            JobPoll::Pending(state) => {
                if !(expired || drained) {
                    return; // still live, still waiting
                }
                status_frame(&w.id, state)
            }
        };
        self.push_frame(&reply);
        self.wait = None;
    }

    /// Dispatches buffered requests until one parks a wait, the reply buffer
    /// fills, or the inbox drains.
    fn dispatch(&mut self, service: &dyn Service, clock: &dyn Clock) -> bool {
        let mut progressed = false;
        while self.wait.is_none()
            && !self.close_after_flush
            && self.inbox_pos < self.inbox.len()
            && self.outbuf.len() - self.out_pos < MAX_OUTBUF_BYTES
        {
            let req = std::mem::replace(&mut self.inbox[self.inbox_pos], Json::Null);
            self.inbox_pos += 1;
            progressed = true;
            service.core().count("frames_handled");
            self.handle_frame(service, clock, &req);
        }
        if self.inbox_pos >= self.inbox.len() {
            self.inbox.clear();
            self.inbox_pos = 0;
        }
        progressed
    }

    /// One request frame → buffered reply (and possibly a parked wait).
    fn handle_frame(&mut self, service: &dyn Service, clock: &dyn Clock, req: &Json) {
        let ty = match frame_type(req) {
            Ok(ty) => ty,
            Err(e) => {
                // Protocol error: answer, then close (the blocking loop did
                // exactly this).
                self.push_frame(&error_frame(None, &e.to_string()));
                self.close_after_flush = true;
                return;
            }
        };
        match ty {
            "ping" => self.push_frame(&frame("pong", Vec::with_capacity(0))),
            "submit" => {
                let action = service.submit(req);
                self.push_frame(&action.reply);
                if let Some((id, budget)) = action.wait_for {
                    self.park(service, clock, id, budget);
                }
            }
            "status" => match req_job_id(req) {
                Err(message) => self.push_frame(&error_frame(None, &message)),
                Ok(id) => {
                    let reply = match poll_job(service.core(), id) {
                        JobPoll::Unknown => error_frame(Some(id), &format!("unknown job {id:?}")),
                        JobPoll::Pending(state) => status_frame(id, state),
                        JobPoll::Terminal(_) => {
                            // `status` never carries the result; report the
                            // terminal label only.
                            let state = service
                                .core()
                                .table
                                .get(id)
                                .map_or("done", |e| e.state.label());
                            status_frame(id, state)
                        }
                    };
                    self.push_frame(&reply);
                }
            },
            "wait" | "result" => match req_job_id(req) {
                Err(message) => self.push_frame(&error_frame(None, &message)),
                Ok(id) => {
                    let budget = if ty == "result" {
                        Duration::ZERO
                    } else {
                        Duration::from_millis(req_u64(req, "timeout_ms").unwrap_or(60_000))
                    };
                    let id = id.to_string();
                    self.park(service, clock, id, budget);
                }
            },
            "stats" => self.push_frame(&service.stats_frame()),
            "shutdown" => {
                let ack = service.begin_shutdown();
                self.push_frame(&ack);
            }
            other => {
                self.push_frame(&error_frame(None, &format!("unknown frame type {other:?}")));
            }
        }
    }

    /// Parks a wait on `id`, resolving immediately when already possible
    /// (terminal job, unknown id, zero budget, drained service).
    fn park(&mut self, service: &dyn Service, clock: &dyn Clock, id: String, budget: Duration) {
        self.wait = Some(ParkedWait {
            deadline: Deadline::after(clock, budget),
            id,
        });
        // A zero budget (the `result` frame) must answer from the current
        // state; a terminal/unknown job answers instantly either way.
        self.poll_wait(service, clock, true);
    }

    /// Writes as much of the reply buffer as the socket accepts.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(n) => {
                    self.out_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
        if self.flushed() {
            self.outbuf.clear();
            self.out_pos = 0;
            if self.close_after_flush {
                self.dead = true;
            }
        }
        progressed
    }

    /// Cuts connections that idle past the limit or stall mid-frame.
    fn police_deadlines(&mut self, clock: &dyn Clock) {
        if self.dead || self.close_after_flush {
            return;
        }
        if let Some(stall) = self.stall_deadline {
            if stall.expired(clock) {
                self.push_frame(&error_frame(
                    None,
                    "malformed frame: frame stalled past the read deadline",
                ));
                self.close_after_flush = true;
                return;
            }
        }
        if self.wait.is_none()
            && self.pending_requests() == 0
            && !self.decoder.mid_frame()
            && self.flushed()
            && self.idle_deadline.expired(clock)
        {
            self.dead = true;
        }
    }
}

/// Answers an over-limit connect on the (still blocking) accepted socket and
/// drops it.
fn reject_connection(mut stream: TcpStream, reason: &str) {
    let busy = frame(
        "busy",
        vec![
            ("code".to_string(), Json::U64(429)),
            ("reason".to_string(), Json::Str(reason.to_string())),
        ],
    );
    if let Ok(wire) = encode_frame(&busy) {
        let _ = stream.write_all(&wire);
    }
}

/// Runs the event loop until a drain completes: accepts (until draining),
/// multiplexes every connection, resolves parked waits, and exits once the
/// service reports drained and the final frames are flushed (bounded by
/// `drain_grace`).
///
/// # Errors
///
/// Any listener failure other than the nonblocking-poll `WouldBlock`.
pub(crate) fn run_event_loop(
    listener: &TcpListener,
    service: &dyn Service,
    tuning: &ConnTuning,
) -> io::Result<()> {
    let clock: &dyn Clock = &*tuning.clock;
    let core = service.core();
    let mut conns: Vec<Conn> = Vec::with_capacity(64);
    let mut buf = vec![0u8; 64 << 10];
    let mut last_table_version = core.table.version();
    let mut drain_flush: Option<Deadline> = None;
    loop {
        let mut progressed = false;
        let draining = core.draining();

        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progressed = true;
                        if conns.len() >= tuning.max_connections {
                            core.count("connections_rejected");
                            reject_connection(stream, "connection limit reached");
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            core.count("connections_rejected");
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        core.count("connections_accepted");
                        conns.push(Conn::new(stream, clock, tuning));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }

        // Parked waits re-poll only when a job actually changed state (the
        // table bumps a version counter), a deadline passed, or the drain
        // finished — a thousand parked connections cost no lock traffic
        // while jobs run.
        let table_version = core.table.version();
        let table_changed = table_version != last_table_version;
        last_table_version = table_version;

        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            progressed |= conn.read_some(&mut buf, clock, tuning);
            conn.poll_wait(service, clock, table_changed);
            progressed |= conn.dispatch(service, clock);
            progressed |= conn.flush();
            conn.police_deadlines(clock);
        }
        conns.retain(|c| !c.dead);
        core.active_conns.store(conns.len(), Ordering::SeqCst);

        if draining && service.drained() {
            // Drained: every parked wait has resolved to a snapshot above;
            // flush the remaining bytes (grace-bounded) and exit.
            let all_flushed = conns.iter().all(|c| c.wait.is_none() && c.flushed());
            let grace =
                *drain_flush.get_or_insert_with(|| Deadline::after(clock, tuning.drain_grace));
            if all_flushed || grace.expired(clock) {
                break;
            }
        }

        if !progressed {
            std::thread::sleep(tuning.poll_interval);
        }
    }
    core.active_conns.store(0, Ordering::SeqCst);
    Ok(())
}
