//! The wire protocol: length-prefixed, schema-versioned JSON frames.
//!
//! Every frame on the wire is a 4-byte little-endian length followed by that
//! many bytes of UTF-8 JSON. The JSON is always an object carrying
//! `"schema_version": 1` (stamped first) and a `"type"` discriminator; both
//! sides reject frames whose version they do not speak, so incompatible
//! clients fail loudly instead of mis-parsing.
//!
//! Frame length is capped at [`MAX_FRAME_BYTES`] on both sides: a malicious
//! or corrupt length prefix can never cause an unbounded allocation.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};
use uopcache_model::json::Json;

/// The protocol schema version stamped on (and required of) every frame.
pub const SCHEMA_VERSION: u64 = 1;

/// Hard cap on the byte length of one frame, applied before allocating the
/// receive buffer. Metrics sweeps of full-length traces stay well under this.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A failure while reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// The body is not valid JSON, or not an object.
    Malformed(String),
    /// The frame declares a schema version this build does not speak.
    SchemaMismatch(u64),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Closed => f.write_str("connection closed by peer"),
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
            FrameError::SchemaMismatch(v) => write!(
                f,
                "frame schema version {v} is not supported (this build speaks {SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Builds a protocol frame: `schema_version` first, then `type`, then the
/// frame-specific fields in the given order.
pub fn frame(ty: &str, fields: Vec<(String, Json)>) -> Json {
    let mut all = Vec::with_capacity(fields.len() + 2);
    all.push(("schema_version".to_string(), Json::U64(SCHEMA_VERSION)));
    all.push(("type".to_string(), Json::Str(ty.to_string())));
    all.extend(fields);
    Json::Obj(all)
}

/// The `type` discriminator of a received frame.
///
/// # Errors
///
/// Returns [`FrameError::Malformed`] if the field is absent or not a string.
pub fn frame_type(j: &Json) -> Result<&str, FrameError> {
    j.field("type")
        .map_err(|e| FrameError::Malformed(e.to_string()))?
        .as_str()
        .ok_or_else(|| FrameError::Malformed("\"type\" must be a string".to_string()))
}

/// Serialises one frame to its wire form: length prefix + JSON bytes.
///
/// # Errors
///
/// Returns [`FrameError::TooLarge`] if the rendering exceeds the cap.
pub fn encode_frame(body: &Json) -> Result<Vec<u8>, FrameError> {
    let text = body.to_string();
    if text.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(text.len()));
    }
    let len = u32::try_from(text.len()).map_err(|_| FrameError::TooLarge(text.len()))?;
    let mut wire = Vec::with_capacity(4 + text.len());
    wire.extend_from_slice(&len.to_le_bytes());
    wire.extend_from_slice(text.as_bytes());
    Ok(wire)
}

/// Writes one frame: length prefix, then the serialised JSON.
///
/// # Errors
///
/// Returns [`FrameError::TooLarge`] if the rendering exceeds the cap, or any
/// socket error.
pub fn write_frame<W: Write>(mut w: W, body: &Json) -> Result<(), FrameError> {
    let wire = encode_frame(body)?;
    w.write_all(&wire)?;
    w.flush()?;
    Ok(())
}

/// Parses and validates one frame body (UTF-8, JSON object, schema version).
fn decode_body(body: &[u8]) -> Result<Json, FrameError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| FrameError::Malformed("frame body is not UTF-8".to_string()))?;
    let json = Json::parse(text).map_err(|e| FrameError::Malformed(e.to_string()))?;
    let version = json
        .field("schema_version")
        .map_err(|e| FrameError::Malformed(e.to_string()))?
        .as_u64()
        .ok_or_else(|| {
            FrameError::Malformed("\"schema_version\" must be an integer".to_string())
        })?;
    if version != SCHEMA_VERSION {
        return Err(FrameError::SchemaMismatch(version));
    }
    Ok(json)
}

/// An incremental frame parser for nonblocking sockets: bytes go in as they
/// arrive, complete frames come out. Memory is bounded by construction — the
/// body buffer is only allocated once a length prefix has been validated
/// against [`MAX_FRAME_BYTES`], so a hostile prefix can never trigger an
/// oversized allocation, exactly as in the blocking [`read_frame`] path.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    header: [u8; 4],
    header_len: usize,
    body: Vec<u8>,
    body_want: usize,
}

impl FrameDecoder {
    /// A decoder at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder {
            header: [0u8; 4],
            header_len: 0,
            body: Vec::with_capacity(0),
            body_want: 0,
        }
    }

    /// Whether a frame has started but not yet completed (stall detection:
    /// a decoder stuck mid-frame past a deadline means a broken peer).
    pub fn mid_frame(&self) -> bool {
        self.header_len > 0
    }

    /// Consumes `bytes`, appending every completed frame to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on an oversized length prefix, malformed JSON,
    /// or a schema mismatch. The decoder is poisoned after an error — the
    /// caller must drop the connection (the stream can no longer be framed).
    pub fn feed(&mut self, mut bytes: &[u8], out: &mut Vec<Json>) -> Result<(), FrameError> {
        while !bytes.is_empty() {
            if self.header_len < 4 {
                let take = (4 - self.header_len).min(bytes.len());
                self.header[self.header_len..self.header_len + take]
                    .copy_from_slice(&bytes[..take]);
                self.header_len += take;
                bytes = &bytes[take..];
                if self.header_len < 4 {
                    return Ok(());
                }
                let len = u32::from_le_bytes(self.header) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(FrameError::TooLarge(len));
                }
                self.body_want = len;
                self.body.clear();
                self.body.reserve(len);
            }
            let take = (self.body_want - self.body.len()).min(bytes.len());
            self.body.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.body.len() == self.body_want {
                let frame = decode_body(&self.body)?;
                out.push(frame);
                self.header_len = 0;
                self.body_want = 0;
                self.body.clear();
            }
        }
        Ok(())
    }
}

/// Whether an I/O error is a read-timeout (both POSIX and Windows spellings).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads exactly `buf.len()` bytes, starting at `*filled`, tolerating read
/// timeouts *after* the first byte (a frame once started is read to
/// completion, up to `deadline`). Returns `false` on a clean timeout before
/// any byte arrived.
fn read_full<R: Read>(
    mut r: R,
    buf: &mut [u8],
    filled: &mut usize,
    deadline: Instant,
) -> Result<bool, FrameError> {
    while *filled < buf.len() {
        match r.read(&mut buf[*filled..]) {
            Ok(0) => {
                return if *filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Malformed(
                        "frame truncated mid-body".to_string(),
                    ))
                }
            }
            Ok(n) => *filled += n,
            Err(e) if is_timeout(&e) => {
                if *filled == 0 {
                    return Ok(false); // idle: no frame started
                }
                if Instant::now() >= deadline {
                    return Err(FrameError::Malformed(
                        "frame stalled past the read deadline".to_string(),
                    ));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame, returning `Ok(None)` if the socket's read timeout
/// expired before any byte of a new frame arrived (an idle poll, letting the
/// caller check shutdown flags). Once a frame has started, it is read to
/// completion or until `stall_limit` elapses.
///
/// # Errors
///
/// Returns [`FrameError`] on EOF, an oversized or stalled frame, malformed
/// JSON, a schema mismatch, or any socket error.
pub fn read_frame<R: Read>(mut r: R, stall_limit: Duration) -> Result<Option<Json>, FrameError> {
    let deadline = Instant::now() + stall_limit;
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    if !read_full(&mut r, &mut header, &mut filled, deadline)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while !read_full(&mut r, &mut body, &mut filled, deadline)? {
        // The header arrived, so the body counts as started: keep reading
        // until the stall deadline trips inside `read_full`.
        if Instant::now() >= deadline {
            return Err(FrameError::Malformed(
                "frame stalled past the read deadline".to_string(),
            ));
        }
    }
    Ok(Some(decode_body(&body)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let f = frame(
            "status",
            vec![("job_id".to_string(), Json::Str("ab12".to_string()))],
        );
        let mut wire = Vec::new();
        write_frame(&mut wire, &f).expect("writes");
        let back = read_frame(wire.as_slice(), Duration::from_secs(1))
            .expect("reads")
            .expect("one frame present");
        assert_eq!(back, f);
        assert_eq!(frame_type(&back).expect("typed"), "status");
        assert_eq!(
            back.field("schema_version").expect("stamped").as_u64(),
            Some(SCHEMA_VERSION)
        );
    }

    #[test]
    fn schema_version_leads_every_frame() {
        let f = frame("pong", Vec::with_capacity(0));
        assert!(f
            .to_string()
            .starts_with("{\"schema_version\":1,\"type\":\"pong\""));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(wire.as_slice(), Duration::from_secs(1)).expect_err("too large");
        assert!(matches!(err, FrameError::TooLarge(_)), "{err}");
    }

    #[test]
    fn eof_at_frame_boundary_is_closed_mid_frame_is_malformed() {
        let err = read_frame([].as_slice(), Duration::from_secs(1)).expect_err("eof");
        assert!(matches!(err, FrameError::Closed), "{err}");
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame("ping", Vec::with_capacity(0))).expect("writes");
        wire.truncate(wire.len() - 2);
        let err = read_frame(wire.as_slice(), Duration::from_secs(1)).expect_err("truncated");
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn decoder_reassembles_frames_from_arbitrary_splits() {
        let frames = [
            frame("ping", Vec::with_capacity(0)),
            frame(
                "status",
                vec![("job_id".to_string(), Json::Str("ab".to_string()))],
            ),
            frame("pong", Vec::with_capacity(0)),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f).expect("encodes"));
        }
        // Every chunk size, from byte-at-a-time to one gulp, yields the same
        // frame sequence.
        for chunk in [1usize, 2, 3, 5, 7, wire.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece, &mut got).expect("clean stream");
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert!(!dec.mid_frame(), "chunk size {chunk} ends at a boundary");
        }
    }

    #[test]
    fn decoder_reports_mid_frame_and_rejects_oversized_prefixes() {
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let wire = encode_frame(&frame("ping", Vec::with_capacity(0))).expect("encodes");
        dec.feed(&wire[..3], &mut got).expect("partial header");
        assert!(dec.mid_frame());
        assert!(got.is_empty());
        dec.feed(&wire[3..], &mut got).expect("completes");
        assert_eq!(got.len(), 1);
        assert!(!dec.mid_frame());

        let mut dec = FrameDecoder::new();
        let err = dec
            .feed(&u32::MAX.to_le_bytes(), &mut got)
            .expect_err("oversized prefix");
        assert!(matches!(err, FrameError::TooLarge(_)), "{err}");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let body = Json::Obj(vec![
            ("schema_version".to_string(), Json::U64(99)),
            ("type".to_string(), Json::Str("ping".to_string())),
        ]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("writes");
        let err = read_frame(wire.as_slice(), Duration::from_secs(1)).expect_err("version 99");
        assert!(matches!(err, FrameError::SchemaMismatch(99)), "{err}");
    }

    #[test]
    fn missing_version_or_type_is_malformed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Json::Obj(Vec::with_capacity(0))).expect("writes");
        let err = read_frame(wire.as_slice(), Duration::from_secs(1)).expect_err("versionless");
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
        let f = Json::Obj(vec![("schema_version".to_string(), Json::U64(1))]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &f).expect("writes");
        let back = read_frame(wire.as_slice(), Duration::from_secs(1))
            .expect("reads")
            .expect("frame");
        assert!(frame_type(&back).is_err());
    }
}
