//! The daemon: a nonblocking event loop in front of sharded job executors.
//!
//! ## Architecture
//!
//! One acceptor thread runs the [`event`](crate::event) loop, multiplexing
//! every client connection (`set_nonblocking` + readiness polling — no
//! thread per connection). Accepted jobs are keyed by their content-derived
//! FNV-1a id onto one of `shards` worker shards, each a bounded queue plus
//! one executor thread; identical submissions share an id and therefore a
//! shard, so dedupe is shard-local by construction.
//!
//! ## Robustness model
//!
//! * **Backpressure** — jobs land in per-shard [`BoundedQueue`]s; a full
//!   shard answers with a `busy` frame (`"code": 429`) instead of buffering.
//!   A rejected submission leaves no job-table entry, so the retry the busy
//!   frame asks for re-enqueues instead of deduping onto a dead rejection.
//!   The table itself retains at most `job_retention` finished jobs (oldest
//!   evicted), so memory use is bounded by `queue_capacity` +
//!   `job_retention` regardless of client behaviour or uptime.
//! * **Panic isolation** — each executor wraps every job in `catch_unwind`;
//!   a panicking job becomes a `failed` state surfaced as an `error` frame
//!   while the daemon keeps serving. (Per-cell panics inside a job never even
//!   reach that: the exec pool turns them into structured failure rows of the
//!   report, exactly as the offline `sweep` does.)
//! * **Timeouts** — the event loop polices per-connection idle and
//!   frame-stall deadlines on the exec crate's clock seam; jobs that wait in
//!   the queue past their start deadline fail with a timeout message instead
//!   of running stale.
//! * **Graceful drain** — a `shutdown` frame closes every shard queue and
//!   stops accepting; queued and running jobs finish, waiting clients
//!   receive their results, and only then does [`Server::run`] return.
//!
//! ## Determinism
//!
//! Job results are produced by [`run_sweep`] with task keys derived purely
//! from the spec (config, variant, length, app, policy) — never from the
//! worker count, shard index, queue order or wall clock — so a served result
//! is byte-identical to the same spec run through the offline
//! `uopcache sweep` CLI at any `--jobs` value and any shard count.

use crate::config::ServerConfig;
use crate::event::{
    busy_frame, error_frame, lock_clean, panic_message, req_u64, run_event_loop, Service,
    ServiceCore, SubmitAction,
};
use crate::job::{job_id_for, shard_for, BoundedQueue, JobState, QueuedJob};
use crate::protocol::frame;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uopcache_bench::sweep::{run_sweep, SweepSpec};
use uopcache_exec::Engine;
use uopcache_model::json::Json;

/// The signature of the job execution hook: spec in, canonical report JSON
/// out. The default runner is [`run_sweep`] + `to_json`; tests inject
/// blocking or panicking runners to exercise the robustness paths
/// deterministically.
pub type Runner = dyn Fn(&SweepSpec, &Engine) -> String + Send + Sync;

/// One worker shard: a bounded queue drained by one executor thread.
struct Shard {
    queue: BoundedQueue,
    /// Set by the executor as it exits (queue closed and fully drained).
    done: AtomicBool,
}

struct ServerShared {
    cfg: ServerConfig,
    core: ServiceCore,
    shards: Vec<Shard>,
    runner: Box<Runner>,
}

impl ServerShared {
    fn total_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.depth()).sum()
    }

    fn total_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.queue.capacity()).sum()
    }

    fn close_queues(&self) {
        for shard in &self.shards {
            shard.queue.close();
        }
    }
}

impl Service for ServerShared {
    fn core(&self) -> &ServiceCore {
        &self.core
    }

    fn submit(&self, req: &Json) -> SubmitAction {
        let reject = |reply: Json| SubmitAction {
            reply,
            wait_for: None,
        };
        let spec = match req
            .field("job")
            .map_err(|e| e.to_string())
            .and_then(SweepSpec::from_json)
        {
            Ok(spec) => spec,
            Err(message) => {
                self.core.count("jobs_rejected_invalid");
                return reject(error_frame(None, &format!("invalid job: {message}")));
            }
        };
        let spec_json = spec.to_json().to_string();
        let id = match req.field("id") {
            Ok(v) => match v.as_str() {
                Some(s) if !s.is_empty() => s.to_string(),
                _ => {
                    self.core.count("jobs_rejected_invalid");
                    return reject(error_frame(
                        None,
                        "invalid job: \"id\" must be a non-empty string",
                    ));
                }
            },
            Err(_) => job_id_for(&spec),
        };
        let wait = req
            .field("wait")
            .ok()
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let wait_timeout = Duration::from_millis(req_u64(req, "timeout_ms").unwrap_or(600_000));

        let mut deduped = false;
        match self.core.table.register(&id, &spec_json) {
            Ok(()) => {
                let queue_timeout = req_u64(req, "queue_timeout_ms")
                    .map(Duration::from_millis)
                    .or(self.cfg.job_timeout);
                let now = Instant::now();
                let job = QueuedJob {
                    id: id.clone(),
                    spec,
                    enqueued: now,
                    start_deadline: queue_timeout.map(|t| now + t),
                };
                // A refused submission is forgotten entirely: a `busy` frame
                // tells the client to retry later, so its id must stay free
                // for that retry to re-enqueue — a terminal entry here would
                // turn every retry into a dedupe onto a job that never ran.
                if self.core.draining() {
                    self.core.count("jobs_rejected_busy");
                    self.core.table.remove(&id);
                    return reject(self.busy(&id, "draining"));
                }
                let shard = &self.shards[shard_for(&id, self.shards.len())];
                match shard.queue.push(job) {
                    Ok(_depth) => self.core.count("jobs_accepted"),
                    Err(crate::job::QueueError::Full) => {
                        self.core.count("jobs_rejected_busy");
                        self.core.table.remove(&id);
                        return reject(self.busy(&id, "queue full"));
                    }
                    Err(crate::job::QueueError::Closed) => {
                        self.core.count("jobs_rejected_busy");
                        self.core.table.remove(&id);
                        return reject(self.busy(&id, "draining"));
                    }
                }
            }
            Err(Ok(_existing)) => {
                // Idempotent retry: same id, same spec — adopt the original.
                self.core.count("jobs_deduped");
                deduped = true;
            }
            Err(Err(message)) => {
                self.core.count("jobs_rejected_invalid");
                return reject(error_frame(Some(&id), &message));
            }
        }

        let accepted = frame(
            "accepted",
            vec![
                ("job_id".to_string(), Json::Str(id.clone())),
                ("deduped".to_string(), Json::Bool(deduped)),
                (
                    "queue_depth".to_string(),
                    Json::U64(self.total_depth() as u64),
                ),
            ],
        );
        SubmitAction {
            reply: accepted,
            wait_for: wait.then_some((id, wait_timeout)),
        }
    }

    fn stats_frame(&self) -> Json {
        // Refresh the instantaneous levels in the registry before rendering,
        // so the embedded metrics carry per-shard gauges alongside counters.
        self.core.set_gauge(
            "active_connections",
            self.core.active_conns.load(Ordering::SeqCst) as u64,
        );
        for (idx, shard) in self.shards.iter().enumerate() {
            self.core.set_gauge(
                &format!("shard{idx}_queue_depth"),
                shard.queue.depth() as u64,
            );
        }
        let shards = self
            .shards
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("depth".to_string(), Json::U64(s.queue.depth() as u64)),
                    ("capacity".to_string(), Json::U64(s.queue.capacity() as u64)),
                ])
            })
            .collect();
        frame(
            "stats",
            vec![
                (
                    "queue_depth".to_string(),
                    Json::U64(self.total_depth() as u64),
                ),
                (
                    "queue_capacity".to_string(),
                    Json::U64(self.total_capacity() as u64),
                ),
                ("draining".to_string(), Json::Bool(self.core.draining())),
                (
                    "active_connections".to_string(),
                    Json::U64(self.core.active_conns.load(Ordering::SeqCst) as u64),
                ),
                ("shards".to_string(), Json::Arr(shards)),
                (
                    "metrics".to_string(),
                    lock_clean(&self.core.metrics).to_json(),
                ),
            ],
        )
    }

    fn begin_shutdown(&self) -> Json {
        self.close_queues();
        self.core.draining.store(true, Ordering::SeqCst);
        frame(
            "shutdown_ack",
            vec![("queued".to_string(), Json::U64(self.total_depth() as u64))],
        )
    }

    fn drained(&self) -> bool {
        self.shards.iter().all(|s| s.done.load(Ordering::SeqCst))
    }
}

impl ServerShared {
    fn busy(&self, id: &str, reason: &str) -> Json {
        busy_frame(id, reason, self.total_depth(), self.total_capacity())
    }
}

/// The bound daemon; [`run`](Self::run) serves until drained.
pub struct Server {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Binds with the default runner ([`run_sweep`] rendered canonically).
    ///
    /// # Errors
    ///
    /// Any socket bind failure.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        Self::bind_with_runner(
            cfg,
            Box::new(|spec, engine| run_sweep(spec, engine).to_json()),
        )
    }

    /// Binds with an injected job runner (the test seam for backpressure,
    /// panic-isolation and drain scenarios).
    ///
    /// # Errors
    ///
    /// Any socket bind failure.
    pub fn bind_with_runner(cfg: ServerConfig, runner: Box<Runner>) -> io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr)?;
        listener.set_nonblocking(true)?;
        // The total queue bound splits evenly across shards (each clamped to
        // at least one slot); capacity gauges report the effective sum.
        let per_shard = (cfg.queue_capacity / cfg.shards).max(1);
        let mut shards = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            shards.push(Shard {
                queue: BoundedQueue::new(per_shard),
                done: AtomicBool::new(false),
            });
        }
        let core = ServiceCore::new(cfg.job_retention);
        Ok(Server {
            listener,
            shared: Arc::new(ServerShared {
                cfg,
                core,
                shards,
                runner,
            }),
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    ///
    /// # Errors
    ///
    /// Any socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` frame arrives and the drain completes:
    /// every shard queue empties, running jobs finish, waiting clients get
    /// their final frames, and buffered replies flush (bounded by
    /// `drain_grace`).
    ///
    /// # Errors
    ///
    /// Any listener failure other than the nonblocking-poll `WouldBlock`.
    // audit:spawn-site — one executor thread per shard; all joined after the event loop drains
    pub fn run(self) -> io::Result<()> {
        let mut executors = Vec::with_capacity(self.shared.shards.len());
        for idx in 0..self.shared.shards.len() {
            let shared = Arc::clone(&self.shared);
            executors.push(
                std::thread::Builder::new()
                    .name(format!("uopcache-serve-exec{idx}"))
                    .spawn(move || executor_loop(&shared, idx))?,
            );
        }
        let result = run_event_loop(
            &self.listener,
            self.shared.as_ref(),
            &self.shared.cfg.tuning,
        );
        // On a clean exit the queues are already closed (the shutdown frame
        // did it); after a listener error, close them so executors exit too.
        self.shared.close_queues();
        for handle in executors {
            let _ = handle.join();
        }
        result
    }

    /// Runs the server on a background thread, returning a handle with the
    /// bound address — the in-process harness the e2e tests drive.
    ///
    /// # Errors
    ///
    /// Any socket introspection or thread-spawn failure.
    // audit:spawn-site — event-loop thread, joined by ServerHandle::join_within after shutdown
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::Builder::new()
            .name("uopcache-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("shards", &self.shared.shards.len())
            .field("queue_capacity", &self.shared.total_capacity())
            .finish()
    }
}

/// A running in-process server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits up to `timeout` for the server thread to exit (it exits after a
    /// completed drain). Returns `None` if it is still running.
    pub fn join_within(self, timeout: Duration) -> Option<io::Result<()>> {
        let deadline = Instant::now() + timeout;
        while !self.thread.is_finished() {
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Some(self.thread.join().unwrap_or_else(|p| {
            Err(io::Error::other(format!(
                "server thread panicked: {}",
                panic_message(p.as_ref())
            )))
        }))
    }
}

/// One shard's executor: one job at a time, each internally parallel through
/// the exec engine. Serialising jobs per shard keeps thread count
/// proportional to shards (not queue depth), and determinism needs nothing
/// more — results never depend on which job or shard ran first.
fn executor_loop(shared: &ServerShared, idx: usize) {
    let jobs = if shared.cfg.jobs == 0 {
        Engine::default_parallelism()
    } else {
        shared.cfg.jobs
    };
    let engine = Engine::new(jobs);
    let shard = &shared.shards[idx];
    loop {
        let Some(job) = shard.queue.pop(Duration::from_millis(100)) else {
            if shard.queue.is_closed() {
                break; // closed and empty: this shard's drain is complete
            }
            continue;
        };
        let waited = job.enqueued.elapsed();
        shared.core.observe_ms("queue_wait_ms", waited);
        if job
            .start_deadline
            .is_some_and(|deadline| Instant::now() > deadline)
        {
            shared.core.count("jobs_timed_out");
            shared.core.count("jobs_failed");
            shared.core.table.set_state(
                &job.id,
                JobState::Failed(format!(
                    "timed out after {}ms in the queue",
                    waited.as_millis()
                )),
            );
            continue;
        }
        shared.core.table.set_state(&job.id, JobState::Running);
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| (shared.runner)(&job.spec, &engine)));
        shared.core.observe_ms("run_ms", started.elapsed());
        match outcome {
            Ok(report) => {
                shared.core.count("jobs_completed");
                shared.core.count(&format!("shard{idx}_jobs_completed"));
                shared
                    .core
                    .table
                    .set_state(&job.id, JobState::Done(Arc::new(report)));
            }
            Err(payload) => {
                shared.core.count("jobs_failed");
                shared.core.count(&format!("shard{idx}_jobs_failed"));
                shared
                    .core
                    .table
                    .set_state(&job.id, JobState::Failed(panic_message(payload.as_ref())));
            }
        }
    }
    shard.done.store(true, Ordering::SeqCst);
}
