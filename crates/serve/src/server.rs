//! The daemon: accept loop, connection handlers, and the job executor.
//!
//! ## Robustness model
//!
//! * **Backpressure** — jobs land in a [`BoundedQueue`]; a full queue answers
//!   with a `busy` frame (`"code": 429`) instead of buffering. A rejected
//!   submission leaves no job-table entry, so the retry the busy frame asks
//!   for re-enqueues instead of deduping onto a dead rejection. The table
//!   itself retains at most `job_retention` finished jobs (oldest evicted),
//!   so memory use is bounded by `queue_capacity` + `job_retention`
//!   regardless of client behaviour or uptime.
//! * **Panic isolation** — the executor wraps every job in `catch_unwind`;
//!   a panicking job becomes a `failed` state surfaced as an `error` frame
//!   while the daemon keeps serving. (Per-cell panics inside a job never even
//!   reach that: the exec pool turns them into structured failure rows of the
//!   report, exactly as the offline `sweep` does.)
//! * **Timeouts** — connections poll their socket with a short read timeout
//!   (so shutdown is noticed promptly), close after `idle_timeout` without a
//!   frame, and abort frames that stall mid-body. Jobs that wait in the
//!   queue past their start deadline fail with a timeout message instead of
//!   running stale.
//! * **Graceful drain** — a `shutdown` frame closes the queue and stops the
//!   accept loop; queued and running jobs finish, waiting clients receive
//!   their results, and only then does [`Server::run`] return.
//!
//! ## Determinism
//!
//! Job results are produced by [`run_sweep`] with task keys derived purely
//! from the spec (config, variant, length, app, policy) — never from the
//! worker count, queue order or wall clock — so a served result is
//! byte-identical to the same spec run through the offline `uopcache sweep`
//! CLI at any `--jobs` value.

use crate::job::{
    job_id_for, BoundedQueue, JobState, JobTable, QueueError, QueuedJob, DEFAULT_JOB_RETENTION,
};
use crate::protocol::{frame, frame_type, read_frame, write_frame, FrameError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uopcache_bench::sweep::{run_sweep, SweepSpec};
use uopcache_exec::Engine;
use uopcache_model::json::Json;
use uopcache_obs::{Histogram, MetricsRegistry};

/// The signature of the job execution hook: spec in, canonical report JSON
/// out. The default runner is [`run_sweep`] + `to_json`; tests inject
/// blocking or panicking runners to exercise the robustness paths
/// deterministically.
pub type Runner = dyn Fn(&SweepSpec, &Engine) -> String + Send + Sync;

/// Server tuning knobs. `Default` is sized for loopback serving and tests.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7743` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Bounded queue capacity; pushes beyond it get `busy` frames.
    pub queue_capacity: usize,
    /// Engine worker count per job (`0` = the machine's parallelism).
    pub jobs: usize,
    /// Default per-job start deadline measured from acceptance; a job still
    /// queued past it fails instead of running. `None` = no deadline.
    pub job_timeout: Option<Duration>,
    /// Socket read-poll slice; also bounds how fast drain is noticed.
    pub read_timeout: Duration,
    /// Close a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// Abort a frame whose bytes stall longer than this mid-body.
    pub frame_stall_limit: Duration,
    /// Maximum concurrent connections; excess connects get a `busy` frame.
    pub max_connections: usize,
    /// Terminal jobs retained in the table for late `status`/`result`
    /// fetches; past this the oldest finished entries are evicted, bounding
    /// daemon memory over a long uptime.
    pub job_retention: usize,
    /// After the drain finishes, wait at most this long for connections to
    /// notice and close before `run` returns anyway.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 16,
            jobs: 0,
            job_timeout: None,
            read_timeout: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(120),
            frame_stall_limit: Duration::from_secs(10),
            max_connections: 64,
            job_retention: DEFAULT_JOB_RETENTION,
            drain_grace: Duration::from_secs(5),
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    queue: BoundedQueue,
    table: JobTable,
    metrics: Mutex<MetricsRegistry>,
    /// Set by a `shutdown` frame: stop accepting work, drain, exit.
    draining: AtomicBool,
    /// Set once the executor has drained: connections close at next poll.
    stopped: AtomicBool,
    active_conns: AtomicUsize,
    runner: Box<Runner>,
}

impl Shared {
    fn count(&self, name: &str) {
        lock_clean(&self.metrics).inc(name);
    }

    fn observe_ms(&self, name: &str, elapsed: Duration) {
        let ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
        lock_clean(&self.metrics)
            .histogram_with(name, || Histogram::log2(14))
            .observe(ms);
    }
}

/// The bound daemon; [`run`](Self::run) serves until drained.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds with the default runner ([`run_sweep`] rendered canonically).
    ///
    /// # Errors
    ///
    /// Any socket bind failure.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        Self::bind_with_runner(
            cfg,
            Box::new(|spec, engine| run_sweep(spec, engine).to_json()),
        )
    }

    /// Binds with an injected job runner (the test seam for backpressure,
    /// panic-isolation and drain scenarios).
    ///
    /// # Errors
    ///
    /// Any socket bind failure.
    pub fn bind_with_runner(cfg: ServerConfig, runner: Box<Runner>) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let queue = BoundedQueue::new(cfg.queue_capacity);
        let table = JobTable::with_retention(cfg.job_retention);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                queue,
                table,
                metrics: Mutex::new(MetricsRegistry::new()),
                draining: AtomicBool::new(false),
                stopped: AtomicBool::new(false),
                active_conns: AtomicUsize::new(0),
                runner,
            }),
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    ///
    /// # Errors
    ///
    /// Any socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` frame arrives and the drain completes:
    /// the queue empties, the running job finishes, waiting clients get
    /// their final frames, and connections close (bounded by `drain_grace`).
    ///
    /// # Errors
    ///
    /// Any listener failure other than the nonblocking-poll `WouldBlock`.
    // audit:spawn-site — executor + per-connection threads; all joined (or grace-bounded) by the drain sequence below
    pub fn run(self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let executor = std::thread::Builder::new()
            .name("uopcache-serve-exec".to_string())
            .spawn({
                let shared = Arc::clone(&self.shared);
                move || executor_loop(&shared)
            })?;

        loop {
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let active = shared.active_conns.load(Ordering::SeqCst);
                    if active >= shared.cfg.max_connections {
                        shared.count("connections_rejected");
                        let busy = frame(
                            "busy",
                            vec![
                                ("code".to_string(), Json::U64(429)),
                                (
                                    "reason".to_string(),
                                    Json::Str("connection limit reached".to_string()),
                                ),
                            ],
                        );
                        let _ = write_frame(&stream, &busy);
                        continue;
                    }
                    shared.count("connections_accepted");
                    shared.active_conns.fetch_add(1, Ordering::SeqCst);
                    let conn_shared = Arc::clone(&shared);
                    // Spawn the handler on a clone of the stream so a failed
                    // spawn (transient thread exhaustion) still owns a socket
                    // to apologise on — the server keeps accepting; only
                    // returning from `run` may abandon in-flight jobs.
                    let spawned = stream.try_clone().and_then(|conn| {
                        std::thread::Builder::new()
                            .name("uopcache-serve-conn".to_string())
                            .spawn(move || {
                                handle_connection(&conn_shared, conn);
                                conn_shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                            })
                    });
                    if let Err(e) = spawned {
                        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                        shared.count("connections_rejected");
                        let busy = frame(
                            "busy",
                            vec![
                                ("code".to_string(), Json::U64(429)),
                                (
                                    "reason".to_string(),
                                    Json::Str(format!("connection thread unavailable: {e}")),
                                ),
                            ],
                        );
                        let _ = write_frame(&stream, &busy);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: the queue is already closed (the shutdown handler does it);
        // wait for the executor to finish every accepted job.
        self.shared.queue.close();
        let _ = executor.join();
        self.shared.stopped.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + self.shared.cfg.drain_grace;
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle with the
    /// bound address — the in-process harness the e2e tests drive.
    ///
    /// # Errors
    ///
    /// Any socket introspection or thread-spawn failure.
    // audit:spawn-site — accept-loop thread, joined by ServerHandle::join after shutdown
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::Builder::new()
            .name("uopcache-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("queue_capacity", &self.shared.queue.capacity())
            .finish()
    }
}

/// A running in-process server (see [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits up to `timeout` for the server thread to exit (it exits after a
    /// completed drain). Returns `None` if it is still running.
    pub fn join_within(self, timeout: Duration) -> Option<io::Result<()>> {
        let deadline = Instant::now() + timeout;
        while !self.thread.is_finished() {
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Some(self.thread.join().unwrap_or_else(|p| {
            Err(io::Error::other(format!(
                "server thread panicked: {}",
                panic_message(p.as_ref())
            )))
        }))
    }
}

/// The single-consumer executor: one job at a time, each internally parallel
/// through the exec engine. Serialising jobs keeps one engine's worth of
/// threads regardless of queue depth, and determinism needs nothing more —
/// results never depend on which job ran first.
fn executor_loop(shared: &Shared) {
    let jobs = if shared.cfg.jobs == 0 {
        Engine::default_parallelism()
    } else {
        shared.cfg.jobs
    };
    let engine = Engine::new(jobs);
    loop {
        let Some(job) = shared.queue.pop(Duration::from_millis(100)) else {
            if shared.queue.is_closed() {
                break; // closed and empty: drain complete
            }
            continue;
        };
        let waited = job.enqueued.elapsed();
        shared.observe_ms("queue_wait_ms", waited);
        if job
            .start_deadline
            .is_some_and(|deadline| Instant::now() > deadline)
        {
            shared.count("jobs_timed_out");
            shared.count("jobs_failed");
            shared.table.set_state(
                &job.id,
                JobState::Failed(format!(
                    "timed out after {}ms in the queue",
                    waited.as_millis()
                )),
            );
            continue;
        }
        shared.table.set_state(&job.id, JobState::Running);
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| (shared.runner)(&job.spec, &engine)));
        shared.observe_ms("run_ms", started.elapsed());
        match outcome {
            Ok(report) => {
                shared.count("jobs_completed");
                shared
                    .table
                    .set_state(&job.id, JobState::Done(Arc::new(report)));
            }
            Err(payload) => {
                shared.count("jobs_failed");
                shared
                    .table
                    .set_state(&job.id, JobState::Failed(panic_message(payload.as_ref())));
            }
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut last_activity = Instant::now();
    loop {
        match read_frame(&stream, shared.cfg.frame_stall_limit) {
            Ok(None) => {
                if shared.stopped.load(Ordering::SeqCst)
                    || last_activity.elapsed() > shared.cfg.idle_timeout
                {
                    break;
                }
            }
            Ok(Some(req)) => {
                last_activity = Instant::now();
                shared.count("frames_handled");
                if !handle_request(shared, &stream, &req) {
                    break;
                }
            }
            Err(FrameError::Closed) => break,
            Err(e) => {
                let report = frame(
                    "error",
                    vec![("message".to_string(), Json::Str(e.to_string()))],
                );
                let _ = write_frame(&stream, &report);
                break;
            }
        }
    }
}

/// Handles one request frame; returns `false` when the connection should
/// close (protocol error — every recognised request keeps it open).
fn handle_request(shared: &Shared, stream: &TcpStream, req: &Json) -> bool {
    let reply = |body: &Json| write_frame(stream, body).is_ok();
    let ty = match frame_type(req) {
        Ok(ty) => ty,
        Err(e) => {
            let report = frame(
                "error",
                vec![("message".to_string(), Json::Str(e.to_string()))],
            );
            reply(&report);
            return false;
        }
    };
    match ty {
        "ping" => reply(&frame("pong", Vec::with_capacity(0))),
        "submit" => handle_submit(shared, stream, req),
        "status" => match req_job_id(req) {
            Err(message) => reply(&error_frame(None, &message)),
            Ok(id) => match shared.table.get(id) {
                None => reply(&error_frame(Some(id), &format!("unknown job {id:?}"))),
                Some(entry) => reply(&status_frame(id, &entry.state)),
            },
        },
        "wait" | "result" => match req_job_id(req) {
            Err(message) => reply(&error_frame(None, &message)),
            Ok(id) => {
                let timeout = if ty == "result" {
                    Duration::ZERO
                } else {
                    Duration::from_millis(req_u64(req, "timeout_ms").unwrap_or(60_000))
                };
                reply(&wait_reply(shared, id, timeout))
            }
        },
        "stats" => reply(&stats_frame(shared)),
        "shutdown" => {
            shared.queue.close();
            shared.draining.store(true, Ordering::SeqCst);
            reply(&frame(
                "shutdown_ack",
                vec![("queued".to_string(), Json::U64(shared.queue.depth() as u64))],
            ))
        }
        other => {
            reply(&error_frame(None, &format!("unknown frame type {other:?}")));
            true
        }
    }
}

fn handle_submit(shared: &Shared, stream: &TcpStream, req: &Json) -> bool {
    let reply = |body: &Json| write_frame(stream, body).is_ok();
    let spec = match req
        .field("job")
        .map_err(|e| e.to_string())
        .and_then(SweepSpec::from_json)
    {
        Ok(spec) => spec,
        Err(message) => {
            shared.count("jobs_rejected_invalid");
            return reply(&error_frame(None, &format!("invalid job: {message}")));
        }
    };
    let spec_json = spec.to_json().to_string();
    let id = match req.field("id") {
        Ok(v) => match v.as_str() {
            Some(s) if !s.is_empty() => s.to_string(),
            _ => {
                shared.count("jobs_rejected_invalid");
                return reply(&error_frame(
                    None,
                    "invalid job: \"id\" must be a non-empty string",
                ));
            }
        },
        Err(_) => job_id_for(&spec),
    };
    let wait = req
        .field("wait")
        .ok()
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let wait_timeout = Duration::from_millis(req_u64(req, "timeout_ms").unwrap_or(600_000));

    let mut deduped = false;
    match shared.table.register(&id, &spec_json) {
        Ok(()) => {
            let queue_timeout = req_u64(req, "queue_timeout_ms")
                .map(Duration::from_millis)
                .or(shared.cfg.job_timeout);
            let now = Instant::now();
            let job = QueuedJob {
                id: id.clone(),
                spec,
                enqueued: now,
                start_deadline: queue_timeout.map(|t| now + t),
            };
            // A refused submission is forgotten entirely: a `busy` frame
            // tells the client to retry later, so its id must stay free for
            // that retry to re-enqueue — a terminal entry here would turn
            // every retry into a dedupe onto a job that never ran.
            if shared.draining.load(Ordering::SeqCst) {
                shared.count("jobs_rejected_busy");
                shared.table.remove(&id);
                return reply(&busy_frame(shared, &id, "draining"));
            }
            match shared.queue.push(job) {
                Ok(_depth) => shared.count("jobs_accepted"),
                Err(QueueError::Full) => {
                    shared.count("jobs_rejected_busy");
                    shared.table.remove(&id);
                    return reply(&busy_frame(shared, &id, "queue full"));
                }
                Err(QueueError::Closed) => {
                    shared.count("jobs_rejected_busy");
                    shared.table.remove(&id);
                    return reply(&busy_frame(shared, &id, "draining"));
                }
            }
        }
        Err(Ok(_existing)) => {
            // Idempotent retry: same id, same spec — adopt the original job.
            shared.count("jobs_deduped");
            deduped = true;
        }
        Err(Err(message)) => {
            shared.count("jobs_rejected_invalid");
            return reply(&error_frame(Some(&id), &message));
        }
    }

    let accepted = frame(
        "accepted",
        vec![
            ("job_id".to_string(), Json::Str(id.clone())),
            ("deduped".to_string(), Json::Bool(deduped)),
            (
                "queue_depth".to_string(),
                Json::U64(shared.queue.depth() as u64),
            ),
        ],
    );
    if !reply(&accepted) {
        return false;
    }
    if wait {
        return reply(&wait_reply(shared, &id, wait_timeout));
    }
    true
}

/// The final frame for a `wait`/`result` request: `result` when done,
/// `error` when failed, `status` when the wait timed out first.
fn wait_reply(shared: &Shared, id: &str, timeout: Duration) -> Json {
    let stopped = || !shared.stopped.load(Ordering::SeqCst);
    match shared.table.wait_terminal(id, timeout, stopped) {
        None => error_frame(Some(id), &format!("unknown job {id:?}")),
        Some(entry) => match entry.state {
            JobState::Done(report) => match Json::parse(&report) {
                Ok(body) => frame(
                    "result",
                    vec![
                        ("job_id".to_string(), Json::Str(id.to_string())),
                        ("result".to_string(), body),
                    ],
                ),
                Err(e) => error_frame(Some(id), &format!("stored report unparsable: {e}")),
            },
            JobState::Failed(message) => error_frame(Some(id), &message),
            state => status_frame(id, &state),
        },
    }
}

fn req_job_id(req: &Json) -> Result<&str, String> {
    req.field("job_id")
        .map_err(|e| e.to_string())?
        .as_str()
        .ok_or_else(|| "\"job_id\" must be a string".to_string())
}

fn req_u64(req: &Json, field: &str) -> Option<u64> {
    req.field(field).ok().and_then(Json::as_u64)
}

fn status_frame(id: &str, state: &JobState) -> Json {
    frame(
        "status",
        vec![
            ("job_id".to_string(), Json::Str(id.to_string())),
            ("state".to_string(), Json::Str(state.label().to_string())),
        ],
    )
}

fn error_frame(id: Option<&str>, message: &str) -> Json {
    let mut fields = Vec::with_capacity(2);
    if let Some(id) = id {
        fields.push(("job_id".to_string(), Json::Str(id.to_string())));
    }
    fields.push(("message".to_string(), Json::Str(message.to_string())));
    frame("error", fields)
}

fn busy_frame(shared: &Shared, id: &str, reason: &str) -> Json {
    frame(
        "busy",
        vec![
            ("job_id".to_string(), Json::Str(id.to_string())),
            ("code".to_string(), Json::U64(429)),
            ("reason".to_string(), Json::Str(reason.to_string())),
            (
                "queue_depth".to_string(),
                Json::U64(shared.queue.depth() as u64),
            ),
            (
                "queue_capacity".to_string(),
                Json::U64(shared.queue.capacity() as u64),
            ),
        ],
    )
}

fn stats_frame(shared: &Shared) -> Json {
    frame(
        "stats",
        vec![
            (
                "queue_depth".to_string(),
                Json::U64(shared.queue.depth() as u64),
            ),
            (
                "queue_capacity".to_string(),
                Json::U64(shared.queue.capacity() as u64),
            ),
            (
                "draining".to_string(),
                Json::Bool(shared.draining.load(Ordering::SeqCst)),
            ),
            (
                "active_connections".to_string(),
                Json::U64(shared.active_conns.load(Ordering::SeqCst) as u64),
            ),
            ("metrics".to_string(), lock_clean(&shared.metrics).to_json()),
        ],
    )
}

/// Locks a mutex, tolerating poisoning (job panics are caught before they
/// can unwind through a held lock; see the exec pool for the same policy).
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Stringifies a panic payload (mirrors the exec pool's helper).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}
