//! Static program synthesis: regions of basic blocks with a fixed address
//! layout, shared by every input variant of an application.

use crate::workload::WorkloadSpec;
use uopcache_model::json::{FromJson, Json, JsonError, ToJson};
use uopcache_model::json_struct;
use uopcache_model::rng::{Prng, Rng};
use uopcache_model::Addr;

/// What kind of control-flow instruction terminates a basic block.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum BranchKind {
    /// Conditional branch: taken with the block's `taken_prob`.
    Conditional,
    /// Unconditional jump/call/return: always taken.
    Unconditional,
}

/// Where a taken branch goes.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum BbTarget {
    /// Skip forward `n` blocks within the region (an if/else shape).
    Skip(u8),
    /// Return to the region's first block (loop back-edge).
    LoopBack,
    /// Leave the region (return / tail call).
    Exit,
}

/// A basic block: straight-line instructions ending in a branch.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Bb {
    /// First instruction address.
    pub addr: Addr,
    /// Total bytes including the terminal branch.
    pub bytes: u32,
    /// x86 instructions in the block.
    pub insts: u32,
    /// Decoded micro-ops in the block.
    pub uops: u32,
    /// Terminal branch kind.
    pub branch: BranchKind,
    /// Probability the terminal branch is taken (1.0 for unconditional).
    pub taken_prob: f64,
    /// Taken-path target.
    pub target: BbTarget,
}

/// A code region: a function or loop nest of sequentially laid-out blocks.
#[derive(Clone, PartialEq, Debug)]
pub struct Region {
    /// The blocks, in address order. Control flow falls through to the next
    /// block when the terminal branch is not taken.
    pub bbs: Vec<Bb>,
}

impl Region {
    /// Address of the region entry point.
    pub fn entry(&self) -> Addr {
        self.bbs[0].addr
    }

    /// Total bytes of the region.
    pub fn bytes(&self) -> u32 {
        self.bbs.iter().map(|b| b.bytes).sum()
    }
}

/// A synthesized static program.
///
/// # Examples
///
/// ```
/// use uopcache_trace::{AppId, Program};
///
/// let spec = AppId::Postgres.spec();
/// let program = Program::synthesize(&spec);
/// assert_eq!(program.regions.len() as u32, spec.regions);
/// // Synthesis is deterministic.
/// assert_eq!(program, Program::synthesize(&spec));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// All code regions, in layout order.
    pub regions: Vec<Region>,
}

impl Program {
    /// Synthesizes the static program for a workload. Deterministic in the
    /// spec's application (see [`WorkloadSpec::program_seed`]).
    pub fn synthesize(spec: &WorkloadSpec) -> Self {
        let mut rng = Prng::seed_from_u64(spec.program_seed());
        let mut regions = Vec::with_capacity(spec.regions as usize);
        // Code starts at a typical text-segment base.
        let mut cursor: u64 = 0x0040_0000;
        for _ in 0..spec.regions {
            let bb_count = sample_count(&mut rng, spec.bbs_per_region, 2, 40);
            let mut bbs = Vec::with_capacity(bb_count);
            for i in 0..bb_count {
                let insts = sample_count(&mut rng, spec.insts_per_bb, 1, 24) as u32;
                // x86 instructions average ~3.7 bytes with high variance.
                let bytes: u32 = (0..insts)
                    .map(|_| match rng.gen_range(0..10) {
                        0 => 1u32,
                        1..=2 => 2,
                        3..=5 => 3,
                        6..=7 => 5,
                        8 => 7,
                        _ => 10,
                    })
                    .sum::<u32>()
                    .max(1);
                let uops =
                    ((insts as f64 * spec.uops_per_inst).round() as u32).clamp(1, insts * 2 + 2);
                let last = i + 1 == bb_count;
                let (branch, taken_prob, target) = if last {
                    // Loop back-edge: taken with probability q so the region
                    // iterates loop_mean times on average, else exits.
                    let q = 1.0 - 1.0 / spec.loop_mean.max(1.0);
                    (BranchKind::Conditional, q, BbTarget::LoopBack)
                } else if rng.gen_bool(0.15) {
                    // Occasional unconditional early exit (call/return).
                    (BranchKind::Unconditional, 1.0, BbTarget::Exit)
                } else {
                    // Conditional forward branch skipping 1-3 blocks, or the
                    // common fall-through-biased if.
                    let skip = rng.gen_range(1..=3u8);
                    let jitter: f64 = rng.gen_range(-0.25..0.25);
                    let p = (spec.taken_bias + jitter).clamp(0.02, 0.9);
                    (BranchKind::Conditional, p, BbTarget::Skip(skip))
                };
                bbs.push(Bb {
                    addr: Addr::new(cursor),
                    bytes,
                    insts,
                    uops,
                    branch,
                    taken_prob,
                    target,
                });
                cursor += u64::from(bytes);
            }
            regions.push(Region { bbs });
            // Functions are padded/aligned; leave a gap of 0-3 lines.
            cursor = (cursor + 63) & !63;
            cursor += 64 * rng.gen_range(0..4u64);
        }
        Program { regions }
    }

    /// Total static micro-ops in the program.
    pub fn total_uops(&self) -> u64 {
        self.regions
            .iter()
            .flat_map(|r| &r.bbs)
            .map(|b| u64::from(b.uops))
            .sum()
    }

    /// Total static code bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| u64::from(r.bytes())).sum()
    }
}

/// Samples a count around `mean` (geometric-ish), clamped to `[lo, hi]`.
fn sample_count(rng: &mut Prng, mean: f64, lo: usize, hi: usize) -> usize {
    // Exponential around the mean gives a long tail like real code.
    let u: f64 = rng.gen_range(1e-9..1.0f64);
    let v = -mean * u.ln();
    (v.round() as usize).clamp(lo, hi)
}

impl ToJson for BranchKind {
    /// Serialises as `"conditional"` / `"unconditional"`.
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                BranchKind::Conditional => "conditional",
                BranchKind::Unconditional => "unconditional",
            }
            .to_string(),
        )
    }
}

impl FromJson for BranchKind {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str() {
            Some("conditional") => Ok(BranchKind::Conditional),
            Some("unconditional") => Ok(BranchKind::Unconditional),
            _ => Err(JsonError(format!("expected branch kind string, got {j:?}"))),
        }
    }
}

impl ToJson for BbTarget {
    /// Serialises as `{"skip": n}`, `"loop-back"` or `"exit"`.
    fn to_json(&self) -> Json {
        match self {
            BbTarget::Skip(n) => Json::Obj(vec![("skip".to_string(), Json::U64(u64::from(*n)))]),
            BbTarget::LoopBack => Json::Str("loop-back".to_string()),
            BbTarget::Exit => Json::Str("exit".to_string()),
        }
    }
}

impl FromJson for BbTarget {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Str(s) if s == "loop-back" => Ok(BbTarget::LoopBack),
            Json::Str(s) if s == "exit" => Ok(BbTarget::Exit),
            Json::Obj(_) => u8::from_json(j.field("skip")?).map(BbTarget::Skip),
            other => Err(JsonError(format!("expected BB target, got {other:?}"))),
        }
    }
}

json_struct!(Bb {
    addr,
    bytes,
    insts,
    uops,
    branch,
    taken_prob,
    target
});
json_struct!(Region { bbs });
json_struct!(Program { regions });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AppId;

    fn program(app: AppId) -> Program {
        Program::synthesize(&app.spec())
    }

    #[test]
    fn deterministic_per_app() {
        assert_eq!(program(AppId::Kafka), program(AppId::Kafka));
    }

    #[test]
    fn different_apps_differ() {
        assert_ne!(program(AppId::Kafka), program(AppId::Clang));
    }

    #[test]
    fn blocks_are_laid_out_in_order_without_overlap() {
        let p = program(AppId::Postgres);
        let mut prev_end = 0u64;
        for region in &p.regions {
            for bb in &region.bbs {
                assert!(bb.addr.get() >= prev_end, "blocks overlap");
                prev_end = bb.addr.get() + u64::from(bb.bytes);
            }
        }
    }

    #[test]
    fn last_block_loops_back() {
        let p = program(AppId::Mysql);
        for region in &p.regions {
            let last = region.bbs.last().unwrap();
            assert_eq!(last.target, BbTarget::LoopBack);
            assert!(last.taken_prob < 1.0);
        }
    }

    #[test]
    fn skip_targets_may_overshoot_but_counts_are_positive() {
        let p = program(AppId::Tomcat);
        for region in &p.regions {
            for bb in &region.bbs {
                assert!(bb.uops >= 1);
                assert!(bb.insts >= 1);
                assert!(bb.bytes >= 1);
                assert!((0.0..=1.0).contains(&bb.taken_prob));
            }
        }
    }

    #[test]
    fn footprint_exceeds_uop_cache_capacity() {
        for app in AppId::ALL {
            let p = program(app);
            // 512 entries * 8 uops = 4096 uops capacity; footprints must be
            // several times larger to reproduce the paper's capacity pressure.
            assert!(p.total_uops() > 4 * 4096, "{app}: {}", p.total_uops());
        }
    }

    #[test]
    fn entry_points_are_region_starts() {
        let p = program(AppId::Drupal);
        for r in &p.regions {
            assert_eq!(r.entry(), r.bbs[0].addr);
            assert_eq!(r.bytes(), r.bbs.iter().map(|b| b.bytes).sum::<u32>());
        }
    }
}
