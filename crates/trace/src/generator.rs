//! Top-level trace generation entry points.

use crate::program::Program;
use crate::pwstream::collect_trace;
use crate::walker::Walker;
use crate::workload::{AppId, InputVariant, WorkloadSpec};
use uopcache_model::rng::{Prng, Rng};
use uopcache_model::LookupTrace;

/// Generates `accesses` micro-op cache lookups for an application and input
/// variant. Deterministic: the same arguments always produce the same trace.
///
/// # Examples
///
/// ```
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let a = build_trace(AppId::Postgres, InputVariant::default(), 1000);
/// let b = build_trace(AppId::Postgres, InputVariant::default(), 1000);
/// assert_eq!(a, b);
/// ```
pub fn build_trace(app: AppId, variant: InputVariant, accesses: usize) -> LookupTrace {
    build_trace_with_spec(&app.spec(), variant, accesses)
}

/// As [`build_trace`] with an explicit (possibly customised) workload spec.
pub fn build_trace_with_spec(
    spec: &WorkloadSpec,
    variant: InputVariant,
    accesses: usize,
) -> LookupTrace {
    let program = Program::synthesize(spec);
    let walker = Walker::new(&program, spec, variant);
    collect_trace(&program, walker, 64, accesses)
}

/// Generates `accesses * scale` lookups as `scale` consecutive execution
/// epochs of the same program — phase-structured repetition with drift, not
/// plain tiling. Each epoch re-keys the walk RNG, rotates the phase clock,
/// and drifts the popularity skew and phase locality a few percent, the way
/// a long-running server's load mix wanders over time; the static program
/// (and therefore the hot code) is shared by every epoch.
///
/// `scale == 1` is byte-identical to [`build_trace`].
///
/// # Panics
///
/// Panics if `scale` is zero.
///
/// # Examples
///
/// ```
/// use uopcache_trace::{build_trace, build_trace_scaled, AppId, InputVariant};
///
/// let v = InputVariant::default();
/// let one = build_trace_scaled(AppId::Kafka, v, 1000, 1);
/// assert_eq!(one, build_trace(AppId::Kafka, v, 1000));
/// let three = build_trace_scaled(AppId::Kafka, v, 1000, 3);
/// assert_eq!(three.len(), 3000);
/// ```
pub fn build_trace_scaled(
    app: AppId,
    variant: InputVariant,
    accesses: usize,
    scale: u64,
) -> LookupTrace {
    build_trace_scaled_with_spec(&app.spec(), variant, accesses, scale)
}

/// As [`build_trace_scaled`] with an explicit workload spec.
///
/// # Panics
///
/// Panics if `scale` is zero.
pub fn build_trace_scaled_with_spec(
    spec: &WorkloadSpec,
    variant: InputVariant,
    accesses: usize,
    scale: u64,
) -> LookupTrace {
    assert!(scale >= 1, "scale must be at least 1");
    let program = Program::synthesize(spec);
    let mut out = LookupTrace::with_capacity(accesses.saturating_mul(scale as usize));
    for epoch in 0..scale {
        let espec = drifted_spec(spec, epoch);
        let walker = Walker::with_epoch(&program, &espec, variant, epoch);
        out.extend(collect_trace(&program, walker, 64, accesses));
    }
    out
}

/// The workload spec as observed during execution epoch `epoch`: popularity
/// skew and phase locality wander a few percent per epoch (deterministically,
/// from the application seed). Epoch 0 is the spec unchanged, so a scaled
/// trace starts with exactly the unscaled one.
fn drifted_spec(spec: &WorkloadSpec, epoch: u64) -> WorkloadSpec {
    if epoch == 0 {
        return *spec;
    }
    let mut s = *spec;
    let mut rng = Prng::seed_from_u64(
        spec.program_seed() ^ 0xec0c_d21f ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    // Zipf skew drifts ±5%, phase locality ±10% (clamped to sane bounds).
    s.zipf_alpha = (s.zipf_alpha * (1.0 + (rng.gen_f64() - 0.5) * 0.10)).clamp(0.3, 2.5);
    s.phase_local_fraction =
        (s.phase_local_fraction * (1.0 + (rng.gen_f64() - 0.5) * 0.20)).clamp(0.02, 0.5);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length() {
        let t = build_trace(AppId::Finagle, InputVariant(2), 777);
        assert_eq!(t.len(), 777);
    }

    #[test]
    fn variants_share_the_static_code() {
        let a = build_trace(AppId::Kafka, InputVariant(0), 30_000);
        let b = build_trace(AppId::Kafka, InputVariant(1), 30_000);
        // Dynamic streams differ...
        assert_ne!(a, b);
        // ...but the bulk of variant-b *accesses* go to addresses variant-a
        // also touched (same binary, shared hot code; the cold Zipf tail may
        // differ by sampling).
        let sa: std::collections::HashSet<u64> = a.iter().map(|x| x.pw.start.get()).collect();
        let shared_accesses = b.iter().filter(|x| sa.contains(&x.pw.start.get())).count();
        assert!(
            shared_accesses * 10 > b.len() * 6,
            "{shared_accesses} of {} accesses hit shared code",
            b.len()
        );
    }

    #[test]
    fn scaled_trace_is_drifted_repetition_not_tiling() {
        let n = 4_000;
        let scaled = build_trace_scaled(AppId::Finagle, InputVariant(0), n, 3);
        assert_eq!(scaled.len(), 3 * n);
        let base = build_trace(AppId::Finagle, InputVariant(0), n);
        // Epoch 0 is exactly the unscaled trace...
        assert_eq!(scaled.slice(0..n), base);
        // ...and later epochs are not copies of it (no plain tiling)...
        assert_ne!(scaled.slice(n..2 * n), base);
        assert_ne!(scaled.slice(2 * n..3 * n), scaled.slice(n..2 * n));
        // ...yet they mostly revisit the same (hot) code.
        let first: std::collections::HashSet<u64> = base.iter().map(|a| a.pw.start.get()).collect();
        let revisits = scaled
            .slice(n..2 * n)
            .iter()
            .filter(|a| first.contains(&a.pw.start.get()))
            .count();
        assert!(revisits * 10 > n * 5, "{revisits} of {n} accesses shared");
    }

    #[test]
    fn custom_spec_is_respected() {
        let mut spec = AppId::Python.spec();
        spec.regions = 50;
        let t = build_trace_with_spec(&spec, InputVariant(0), 2000);
        assert!(t.unique_starts() < 50 * 60);
    }
}
