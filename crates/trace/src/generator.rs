//! Top-level trace generation entry points.

use crate::program::Program;
use crate::pwstream::collect_trace;
use crate::walker::Walker;
use crate::workload::{AppId, InputVariant, WorkloadSpec};
use uopcache_model::LookupTrace;

/// Generates `accesses` micro-op cache lookups for an application and input
/// variant. Deterministic: the same arguments always produce the same trace.
///
/// # Examples
///
/// ```
/// use uopcache_trace::{build_trace, AppId, InputVariant};
///
/// let a = build_trace(AppId::Postgres, InputVariant::default(), 1000);
/// let b = build_trace(AppId::Postgres, InputVariant::default(), 1000);
/// assert_eq!(a, b);
/// ```
pub fn build_trace(app: AppId, variant: InputVariant, accesses: usize) -> LookupTrace {
    build_trace_with_spec(&app.spec(), variant, accesses)
}

/// As [`build_trace`] with an explicit (possibly customised) workload spec.
pub fn build_trace_with_spec(
    spec: &WorkloadSpec,
    variant: InputVariant,
    accesses: usize,
) -> LookupTrace {
    let program = Program::synthesize(spec);
    let walker = Walker::new(&program, spec, variant);
    collect_trace(&program, walker, 64, accesses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length() {
        let t = build_trace(AppId::Finagle, InputVariant(2), 777);
        assert_eq!(t.len(), 777);
    }

    #[test]
    fn variants_share_the_static_code() {
        let a = build_trace(AppId::Kafka, InputVariant(0), 30_000);
        let b = build_trace(AppId::Kafka, InputVariant(1), 30_000);
        // Dynamic streams differ...
        assert_ne!(a, b);
        // ...but the bulk of variant-b *accesses* go to addresses variant-a
        // also touched (same binary, shared hot code; the cold Zipf tail may
        // differ by sampling).
        let sa: std::collections::HashSet<u64> = a.iter().map(|x| x.pw.start.get()).collect();
        let shared_accesses = b.iter().filter(|x| sa.contains(&x.pw.start.get())).count();
        assert!(
            shared_accesses * 10 > b.len() * 6,
            "{shared_accesses} of {} accesses hit shared code",
            b.len()
        );
    }

    #[test]
    fn custom_spec_is_respected() {
        let mut spec = AppId::Python.spec();
        spec.regions = 50;
        let t = build_trace_with_spec(&spec, InputVariant(0), 2000);
        assert!(t.unique_starts() < 50 * 60);
    }
}
