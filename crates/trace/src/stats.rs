//! Descriptive statistics of a lookup trace, for calibration and reporting.

use uopcache_model::hash::FastHashMap;
use uopcache_model::json_struct;
use uopcache_model::{Addr, LookupTrace};

/// Summary statistics of a PW lookup trace.
///
/// # Examples
///
/// ```
/// use uopcache_trace::{build_trace, AppId, InputVariant, TraceStats};
///
/// let t = build_trace(AppId::Kafka, InputVariant::default(), 20_000);
/// let s = TraceStats::from_trace(&t, 8);
/// assert!(s.mean_pw_uops > 1.0);
/// assert!(s.footprint_entries > 512);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Number of lookups.
    pub accesses: usize,
    /// Total micro-ops requested.
    pub total_uops: u64,
    /// Distinct PW start addresses.
    pub unique_starts: usize,
    /// Static footprint in micro-op cache entries.
    pub footprint_entries: u64,
    /// Mean micro-ops per PW lookup.
    pub mean_pw_uops: f64,
    /// Histogram of PW sizes in entries (index 0 = 1 entry).
    pub entry_histogram: Vec<u64>,
    /// Fraction of re-accesses whose PW-granularity stack reuse distance
    /// exceeds 30 (the paper reports >20 % for data-center apps).
    pub reuse_gt_30: f64,
    /// Fraction of accesses flagged as mispredicted.
    pub mispredict_rate: f64,
    /// Approximate branch MPKI implied by the mispredict flags
    /// (mispredictions per 1000 instructions, instructions estimated from
    /// micro-ops).
    pub implied_mpki: f64,
}

impl TraceStats {
    /// Computes statistics for `trace` with the given micro-ops per entry.
    pub fn from_trace(trace: &LookupTrace, uops_per_entry: u32) -> Self {
        let accesses = trace.len();
        let total_uops = trace.total_uops();
        let unique_starts = trace.unique_starts();
        let footprint_entries = trace.footprint_entries(uops_per_entry);

        let mut entry_histogram = vec![0u64; 8];
        for a in trace.iter() {
            let e = a.pw.entries(uops_per_entry) as usize;
            let idx = (e - 1).min(entry_histogram.len() - 1);
            entry_histogram[idx] += 1;
        }

        // PW-granularity LRU stack distance, capped at 64 for tractability.
        const CAP: usize = 64;
        let mut stack: Vec<Addr> = Vec::with_capacity(CAP + 1);
        let mut reaccesses = 0u64;
        let mut far = 0u64;
        let mut seen: FastHashMap<Addr, ()> = FastHashMap::default();
        for a in trace.iter() {
            let start = a.pw.start;
            if let Some(pos) = stack.iter().position(|&s| s == start) {
                reaccesses += 1;
                if pos > 30 {
                    far += 1;
                }
                stack.remove(pos);
            } else if seen.contains_key(&start) {
                // Fell off the capped stack: distance certainly > CAP > 30.
                reaccesses += 1;
                far += 1;
            }
            seen.insert(start, ());
            stack.insert(0, start);
            stack.truncate(CAP);
        }

        let mispredicted = trace.iter().filter(|a| a.mispredicted).count();
        let instructions = total_uops as f64 / 1.12;
        TraceStats {
            accesses,
            total_uops,
            unique_starts,
            footprint_entries,
            mean_pw_uops: if accesses == 0 {
                0.0
            } else {
                total_uops as f64 / accesses as f64
            },
            entry_histogram,
            reuse_gt_30: if reaccesses == 0 {
                0.0
            } else {
                far as f64 / reaccesses as f64
            },
            mispredict_rate: if accesses == 0 {
                0.0
            } else {
                mispredicted as f64 / accesses as f64
            },
            implied_mpki: if instructions <= 0.0 {
                0.0
            } else {
                mispredicted as f64 / instructions * 1000.0
            },
        }
    }
}

json_struct!(TraceStats {
    accesses,
    total_uops,
    unique_starts,
    footprint_entries,
    mean_pw_uops,
    entry_histogram,
    reuse_gt_30,
    mispredict_rate,
    implied_mpki,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::build_trace;
    use crate::workload::{AppId, InputVariant};

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::from_trace(&LookupTrace::new(), 8);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.mean_pw_uops, 0.0);
        assert_eq!(s.reuse_gt_30, 0.0);
    }

    #[test]
    fn scattered_reuse_distance_property() {
        // The paper: >20% of PWs have reuse distance larger than 30.
        let t = build_trace(AppId::Clang, InputVariant(0), 60_000);
        let s = TraceStats::from_trace(&t, 8);
        assert!(
            s.reuse_gt_30 > 0.20,
            "reuse>30 fraction = {}",
            s.reuse_gt_30
        );
    }

    #[test]
    fn implied_mpki_is_in_a_plausible_band() {
        let t = build_trace(AppId::Wordpress, InputVariant(0), 60_000);
        let s = TraceStats::from_trace(&t, 8);
        let target = AppId::Wordpress.branch_mpki();
        assert!(
            s.implied_mpki > target * 0.4 && s.implied_mpki < target * 2.5,
            "implied {} vs target {}",
            s.implied_mpki,
            target
        );
    }

    #[test]
    fn histogram_covers_all_accesses() {
        let t = build_trace(AppId::Kafka, InputVariant(0), 10_000);
        let s = TraceStats::from_trace(&t, 8);
        assert_eq!(s.entry_histogram.iter().sum::<u64>(), 10_000);
    }
}
