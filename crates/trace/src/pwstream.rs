//! Prediction-window formation: converts the executed basic-block stream into
//! the micro-op cache lookup stream.
//!
//! Windows terminate at predicted-taken branches and at i-cache line
//! boundaries (§II-B): a fall-through run of blocks is cut wherever the next
//! instruction would start in a new line. Because conditional branches are
//! sometimes taken and sometimes not, the same start address yields windows
//! of different lengths — the *overlapping PWs* that cause partial hits.

use crate::program::{Bb, Program};
use crate::walker::BlockExec;
use uopcache_model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination};

/// Incremental PW builder.
///
/// Feed it executed blocks via [`PwBuilder::push`]; completed windows are
/// appended to the output. Call [`PwBuilder::flush`] at end of stream.
///
/// # Examples
///
/// ```
/// use uopcache_trace::{AppId, InputVariant, Program, PwBuilder, Walker};
///
/// let spec = AppId::Kafka.spec();
/// let program = Program::synthesize(&spec);
/// let mut builder = PwBuilder::new(64);
/// let mut out = Vec::new();
/// for exec in Walker::new(&program, &spec, InputVariant::default()).take(100) {
///     builder.push(&program, &exec, &mut out);
/// }
/// builder.flush(&mut out);
/// assert!(!out.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct PwBuilder {
    line_bytes: u64,
    accum: Option<Accum>,
    /// The window after a mispredicted branch is fetched behind a flush.
    pending_mispredict: bool,
}

#[derive(Copy, Clone, Debug)]
struct Accum {
    start: Addr,
    next_addr: u64,
    bytes: u32,
    uops: u32,
    mispredicted: bool,
}

impl PwBuilder {
    /// Creates a builder cutting windows at `line_bytes` boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        PwBuilder {
            line_bytes,
            accum: None,
            pending_mispredict: false,
        }
    }

    /// Processes one executed block, appending any completed windows to
    /// `out`.
    pub fn push(&mut self, program: &Program, exec: &BlockExec, out: &mut Vec<PwAccess>) {
        let bb = &program.regions[exec.region as usize].bbs[exec.bb as usize];
        // Discontinuity (we arrived via a taken branch elsewhere): close the
        // open window first.
        if let Some(acc) = self.accum {
            if acc.next_addr != bb.addr.get() {
                self.finalize(PwTermination::TakenBranch, out);
            }
        }
        let before = out.len();
        self.append_block(bb, out);
        if exec.taken {
            if self.accum.is_some() {
                self.finalize(PwTermination::TakenBranch, out);
            } else if out.len() > before {
                // The line-boundary cut coincided with the block's last
                // instruction; the branch is what really ended the window.
                if let Some(last) = out.last_mut() {
                    last.pw.term = PwTermination::TakenBranch;
                }
            }
        }
        if exec.mispredicted {
            // The *next* window is fetched after the flush resolves.
            self.finalize(PwTermination::TakenBranch, out);
            self.pending_mispredict = true;
        }
    }

    /// Closes any open window at end of stream.
    pub fn flush(&mut self, out: &mut Vec<PwAccess>) {
        self.finalize(PwTermination::TakenBranch, out);
    }

    /// Appends the block's instructions, cutting at line boundaries.
    fn append_block(&mut self, bb: &Bb, out: &mut Vec<PwAccess>) {
        // Approximate the block as `insts` equally-sized instructions with
        // the remainder bytes on the last one, and the micro-ops distributed
        // as evenly as possible.
        let insts = bb.insts.max(1);
        let base_bytes = bb.bytes / insts;
        let extra_bytes = bb.bytes % insts;
        let base_uops = bb.uops / insts;
        let extra_uops = bb.uops % insts;
        let mut addr = bb.addr.get();
        for i in 0..insts {
            let ibytes = base_bytes + u32::from(i < extra_bytes);
            let iuops = base_uops + u32::from(i < extra_uops);
            let acc = self.accum.get_or_insert(Accum {
                start: Addr::new(addr),
                next_addr: addr,
                bytes: 0,
                uops: 0,
                mispredicted: std::mem::take(&mut self.pending_mispredict),
            });
            acc.bytes += ibytes.max(1);
            acc.uops += iuops;
            acc.next_addr += u64::from(ibytes.max(1));
            addr = acc.next_addr;
            // The PW terminates with the last instruction of a cache line.
            let start_line = acc.start.line(self.line_bytes);
            let next_line = Addr::new(acc.next_addr).line(self.line_bytes);
            if next_line != start_line {
                self.finalize(PwTermination::LineBoundary, out);
            }
        }
    }

    fn finalize(&mut self, term: PwTermination, out: &mut Vec<PwAccess>) {
        if let Some(acc) = self.accum.take() {
            // Zero-uop fragments (e.g. a cut right at a block edge whose uops
            // all landed earlier) merge into nothing; skip them.
            if acc.uops > 0 {
                let pw = PwDesc::new(acc.start, acc.uops, acc.bytes.max(1), term);
                out.push(PwAccess {
                    pw,
                    mispredicted: acc.mispredicted,
                });
            }
        }
    }
}

/// Convenience: runs `walker`-style block streams through a builder into a
/// [`LookupTrace`] of exactly `accesses` lookups.
pub fn collect_trace<I>(
    program: &Program,
    execs: I,
    line_bytes: u64,
    accesses: usize,
) -> LookupTrace
where
    I: IntoIterator<Item = BlockExec>,
{
    let mut builder = PwBuilder::new(line_bytes);
    let mut out = Vec::with_capacity(accesses + 8);
    for exec in execs {
        builder.push(program, &exec, &mut out);
        if out.len() >= accesses {
            break;
        }
    }
    if out.len() < accesses {
        builder.flush(&mut out);
    }
    out.truncate(accesses);
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::Walker;
    use crate::workload::{AppId, InputVariant};
    use std::collections::HashMap;

    fn trace(app: AppId, n: usize) -> LookupTrace {
        let spec = app.spec();
        let program = Program::synthesize(&spec);
        let walker = Walker::new(&program, &spec, InputVariant(0));
        collect_trace(&program, walker, 64, n)
    }

    #[test]
    fn windows_fit_within_a_line_plus_overhang() {
        let t = trace(AppId::Kafka, 20_000);
        for a in t.iter() {
            // A PW never spans more than one full line plus the final
            // instruction's overhang (max x86 instruction is 15 bytes).
            assert!(a.pw.bytes <= 64 + 15, "{:?}", a.pw);
            assert!(a.pw.uops >= 1);
        }
    }

    #[test]
    fn overlapping_windows_exist() {
        let t = trace(AppId::Tomcat, 30_000);
        let mut lens: HashMap<u64, std::collections::HashSet<u32>> = HashMap::new();
        for a in t.iter() {
            lens.entry(a.pw.start.get()).or_default().insert(a.pw.uops);
        }
        let overlapping = lens.values().filter(|s| s.len() > 1).count();
        assert!(
            overlapping * 10 > lens.len(),
            "expected >10% overlapping start addresses, got {overlapping}/{}",
            lens.len()
        );
    }

    #[test]
    fn variable_costs_exist() {
        let t = trace(AppId::Clang, 20_000);
        let mut sizes = std::collections::HashSet::new();
        for a in t.iter() {
            sizes.insert(a.pw.entries(8));
        }
        assert!(
            sizes.len() >= 2,
            "PWs should span multiple entry sizes: {sizes:?}"
        );
    }

    #[test]
    fn both_termination_kinds_occur() {
        let t = trace(AppId::Drupal, 20_000);
        let taken = t
            .iter()
            .filter(|a| a.pw.term == PwTermination::TakenBranch)
            .count();
        let line = t
            .iter()
            .filter(|a| a.pw.term == PwTermination::LineBoundary)
            .count();
        assert!(taken > 0 && line > 0, "taken={taken} line={line}");
    }

    #[test]
    fn collect_trace_truncates_exactly() {
        let t = trace(AppId::Python, 1234);
        assert_eq!(t.len(), 1234);
    }

    #[test]
    fn mispredicted_flags_present_for_high_mpki_apps() {
        let t = trace(AppId::Wordpress, 50_000);
        let flagged = t.iter().filter(|a| a.mispredicted).count();
        assert!(flagged > 0);
    }

    #[test]
    fn windows_tile_fallthrough_runs_without_gaps() {
        // Within a fall-through run, each next window starts where the
        // previous ended.
        let spec = AppId::Mysql.spec();
        let program = Program::synthesize(&spec);
        let walker = Walker::new(&program, &spec, InputVariant(0));
        let t = collect_trace(&program, walker.take(2000), 64, 5000);
        for w in t.accesses().windows(2) {
            if w[0].pw.term == PwTermination::LineBoundary {
                assert_eq!(
                    w[0].pw.end(),
                    w[1].pw.start,
                    "line-boundary cut must fall through contiguously"
                );
            }
        }
    }
}
