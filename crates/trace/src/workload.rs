//! The 11 data-center applications of Table II, as calibrated workload
//! specifications.

use std::fmt;

/// One of the paper's 11 data-center applications (Table II).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum AppId {
    /// Apache Cassandra (DaCapo suite). Branch MPKI 1.78.
    Cassandra,
    /// Apache Kafka (DaCapo suite). Branch MPKI 1.77.
    Kafka,
    /// Apache Tomcat (DaCapo suite). Branch MPKI 4.45.
    Tomcat,
    /// Drupal (Facebook OSS-performance). Branch MPKI 1.89.
    Drupal,
    /// MediaWiki (Facebook OSS-performance). Branch MPKI 2.35.
    Mediawiki,
    /// WordPress (Facebook OSS-performance). Branch MPKI 5.64.
    Wordpress,
    /// PostgreSQL serving pgbench. Branch MPKI 0.41.
    Postgres,
    /// MySQL serving TPC-C. Branch MPKI 0.66.
    Mysql,
    /// CPython running pyperformance. Branch MPKI 4.73.
    Python,
    /// Twitter Finagle microblogging service. Branch MPKI 4.76.
    Finagle,
    /// Clang building LLVM. Branch MPKI 1.86.
    Clang,
}

impl AppId {
    /// All 11 applications in the paper's presentation order.
    pub const ALL: [AppId; 11] = [
        AppId::Cassandra,
        AppId::Kafka,
        AppId::Tomcat,
        AppId::Drupal,
        AppId::Mediawiki,
        AppId::Wordpress,
        AppId::Postgres,
        AppId::Mysql,
        AppId::Python,
        AppId::Finagle,
        AppId::Clang,
    ];

    /// Lowercase display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Cassandra => "cassandra",
            AppId::Kafka => "kafka",
            AppId::Tomcat => "tomcat",
            AppId::Drupal => "drupal",
            AppId::Mediawiki => "mediawiki",
            AppId::Wordpress => "wordpress",
            AppId::Postgres => "postgres",
            AppId::Mysql => "mysql",
            AppId::Python => "python",
            AppId::Finagle => "finagle",
            AppId::Clang => "clang",
        }
    }

    /// Short description from Table II.
    pub fn description(&self) -> &'static str {
        match self {
            AppId::Cassandra | AppId::Kafka | AppId::Tomcat => {
                "from the Java DaCapo benchmark suite"
            }
            AppId::Drupal | AppId::Mediawiki | AppId::Wordpress => {
                "from Facebook's OSS-performance benchmark suite"
            }
            AppId::Postgres => "collected when used to serve pgbench queries",
            AppId::Mysql => "collected while serving TPC-C queries",
            AppId::Python => "collected while running the pyperformance benchmark suite",
            AppId::Finagle => "Twitter's microblogging service",
            AppId::Clang => "collected while building LLVM",
        }
    }

    /// Branch MPKI from Table II.
    pub fn branch_mpki(&self) -> f64 {
        match self {
            AppId::Cassandra => 1.78,
            AppId::Kafka => 1.77,
            AppId::Tomcat => 4.45,
            AppId::Drupal => 1.89,
            AppId::Mediawiki => 2.35,
            AppId::Wordpress => 5.64,
            AppId::Postgres => 0.41,
            AppId::Mysql => 0.66,
            AppId::Python => 4.73,
            AppId::Finagle => 4.76,
            AppId::Clang => 1.86,
        }
    }

    /// The calibrated workload specification for this application.
    pub fn spec(&self) -> WorkloadSpec {
        WorkloadSpec::for_app(*self)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An input variant of an application, used for the cross-validation study
/// (Fig. 18): same binary, different dynamic behaviour (request mix, data
/// size, seeds).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct InputVariant(pub u32);

impl InputVariant {
    /// The default input used for the main evaluation.
    pub const DEFAULT: InputVariant = InputVariant(0);

    /// An alternative input.
    pub const fn new(i: u32) -> Self {
        InputVariant(i)
    }
}

impl fmt::Display for InputVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input-{}", self.0)
    }
}

/// Parameters steering static program synthesis and the dynamic walk for one
/// application.
///
/// The static parameters (regions, blocks, layout) are chosen so the
/// instruction footprint far exceeds the 512-entry micro-op cache — the paper
/// reports >99 % of misses are capacity/conflict misses — while the dynamic
/// parameters (skew, phases, branch bias) reproduce the reuse behaviour that
/// separates the replacement policies.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct WorkloadSpec {
    /// Which application this spec models.
    pub app: AppId,
    /// Number of code regions (functions / loop nests).
    pub regions: u32,
    /// Mean basic blocks per region.
    pub bbs_per_region: f64,
    /// Zipf skew of region popularity.
    pub zipf_alpha: f64,
    /// Number of program phases.
    pub phases: u32,
    /// Block executions per phase before rotating.
    pub phase_len: u32,
    /// Mean loop iterations per region activation.
    pub loop_mean: f64,
    /// Mean instructions per basic block.
    pub insts_per_bb: f64,
    /// Micro-ops per instruction.
    pub uops_per_inst: f64,
    /// Mean conditional-branch taken probability inside regions.
    pub taken_bias: f64,
    /// Branch MPKI target (drives the mispredicted flags).
    pub branch_mpki: f64,
    /// Fraction of regions that are only hot in a single phase
    /// (globally cold, locally hot — what FURBYS's pitfall detector targets).
    pub phase_local_fraction: f64,
}

impl WorkloadSpec {
    /// The calibrated spec for `app`.
    pub fn for_app(app: AppId) -> Self {
        // Base values common to the suite; per-app deltas follow.
        let mut s = WorkloadSpec {
            app,
            regions: 700,
            bbs_per_region: 9.0,
            zipf_alpha: 1.08,
            phases: 4,
            phase_len: 60_000,
            loop_mean: 3.0,
            insts_per_bb: 5.0,
            uops_per_inst: 1.12,
            taken_bias: 0.45,
            branch_mpki: app.branch_mpki(),
            phase_local_fraction: 0.12,
        };
        match app {
            // Large managed-runtime footprints, moderate skew.
            AppId::Cassandra => {
                s.regions = 1100;
                s.zipf_alpha = 1.0;
                s.phases = 5;
            }
            AppId::Kafka => {
                s.regions = 950;
                s.zipf_alpha = 1.05;
                s.phase_local_fraction = 0.16;
            }
            AppId::Tomcat => {
                s.regions = 1250;
                s.zipf_alpha = 0.95;
                s.insts_per_bb = 4.4;
            }
            // PHP request-serving: very large flat footprints.
            AppId::Drupal => {
                s.regions = 1400;
                s.zipf_alpha = 0.93;
                s.phases = 6;
            }
            AppId::Mediawiki => {
                s.regions = 1350;
                s.zipf_alpha = 0.96;
            }
            AppId::Wordpress => {
                s.regions = 1500;
                s.zipf_alpha = 0.9;
                s.insts_per_bb = 4.2;
            }
            // Databases: tighter loops, smaller hot sets, long basic blocks.
            AppId::Postgres => {
                s.regions = 650;
                s.zipf_alpha = 1.18;
                s.loop_mean = 5.0;
                s.insts_per_bb = 6.5;
                s.phases = 3;
            }
            AppId::Mysql => {
                s.regions = 750;
                s.zipf_alpha = 1.12;
                s.loop_mean = 4.5;
                s.insts_per_bb = 6.0;
            }
            // Interpreters: hot dispatch loop + long cold tail.
            AppId::Python => {
                s.regions = 1050;
                s.zipf_alpha = 1.2;
                s.insts_per_bb = 3.8;
                s.phase_local_fraction = 0.2;
            }
            AppId::Finagle => {
                s.regions = 1200;
                s.zipf_alpha = 0.98;
                s.phases = 6;
                s.phase_local_fraction = 0.18;
            }
            // Compiler: biggest footprint, phase-heavy.
            AppId::Clang => {
                s.regions = 1300;
                s.zipf_alpha = 1.0;
                s.phases = 7;
                s.insts_per_bb = 5.5;
                s.phase_local_fraction = 0.15;
            }
        }
        s
    }

    /// Deterministic seed for static program synthesis: depends only on the
    /// application so all input variants share one binary.
    pub fn program_seed(&self) -> u64 {
        0x5eed_0000 + self.app as u64
    }

    /// Deterministic seed for the dynamic walk of a given input variant.
    pub fn walk_seed(&self, variant: InputVariant) -> u64 {
        0x3a11_0000 + (self.app as u64) * 1_000 + u64::from(variant.0)
    }

    /// Probability that a conditional branch is mispredicted, derived from
    /// the Table II MPKI and the branch density of this workload.
    pub fn mispredict_prob(&self) -> f64 {
        // branches per kilo-instruction = 1000 / insts_per_bb;
        // MPKI = bpki * p  =>  p = MPKI * insts_per_bb / 1000.
        (self.branch_mpki * self.insts_per_bb / 1000.0).clamp(0.0, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_eleven_unique_apps() {
        assert_eq!(AppId::ALL.len(), 11);
        let mut names: Vec<_> = AppId::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn table_ii_mpki_values() {
        assert_eq!(AppId::Postgres.branch_mpki(), 0.41);
        assert_eq!(AppId::Wordpress.branch_mpki(), 5.64);
        assert_eq!(AppId::Clang.branch_mpki(), 1.86);
    }

    #[test]
    fn program_seed_ignores_variant() {
        let s = WorkloadSpec::for_app(AppId::Kafka);
        assert_eq!(s.program_seed(), s.program_seed());
        assert_ne!(s.walk_seed(InputVariant(0)), s.walk_seed(InputVariant(1)));
        assert_ne!(
            WorkloadSpec::for_app(AppId::Kafka).program_seed(),
            WorkloadSpec::for_app(AppId::Clang).program_seed()
        );
    }

    #[test]
    fn mispredict_prob_tracks_mpki() {
        let hot = WorkloadSpec::for_app(AppId::Wordpress).mispredict_prob();
        let cold = WorkloadSpec::for_app(AppId::Postgres).mispredict_prob();
        assert!(hot > cold);
        assert!(hot < 0.1);
    }

    #[test]
    fn specs_have_large_footprints() {
        for app in AppId::ALL {
            let s = app.spec();
            // regions * bbs * ~1 entry each must exceed 512 entries severalfold.
            assert!(s.regions as f64 * s.bbs_per_region > 3.0 * 512.0, "{app}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AppId::Mediawiki.to_string(), "mediawiki");
        assert_eq!(InputVariant(3).to_string(), "input-3");
    }
}
