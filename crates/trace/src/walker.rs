//! The dynamic walk: executes the static program with phase behaviour,
//! Zipfian region popularity and stochastic branch outcomes.

use crate::program::{BbTarget, BranchKind, Program};
use crate::workload::{InputVariant, WorkloadSpec};
use crate::zipf::Zipf;
use uopcache_model::rng::{Prng, Rng};

/// One executed basic block with its branch outcome.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct BlockExec {
    /// Region index in the program.
    pub region: u32,
    /// Block index within the region.
    pub bb: u32,
    /// Whether the terminal branch was taken.
    pub taken: bool,
    /// Whether the branch predictor would have mispredicted this branch.
    pub mispredicted: bool,
}

/// An infinite iterator over executed basic blocks.
///
/// Popularity structure:
/// * A **base ranking** of regions derived from the application seed only, so
///   all input variants agree on what is globally hot (the property the
///   cross-validation study relies on).
/// * A per-variant **perturbation** swapping a fraction of ranks.
/// * Per-phase **local boosts**: a slice of globally-cold regions becomes hot
///   within a single phase — the "locally hot, globally cold" PWs that trip
///   purely profile-based policies.
/// * **Call chains**: execution proceeds in short chains of regions
///   (overlapping windows over the popularity ranking), mirroring the call
///   sequences of real server software. Chains give control flow the history
///   correlation that history-based predictors such as GHRP exploit: the
///   same region reached through a hotter chain is reused sooner than
///   through a colder one.
///
/// # Examples
///
/// ```
/// use uopcache_trace::{AppId, InputVariant, Program, Walker};
///
/// let spec = AppId::Kafka.spec();
/// let program = Program::synthesize(&spec);
/// let mut walker = Walker::new(&program, &spec, InputVariant::default());
/// let exec = walker.next().unwrap();
/// assert!((exec.region as usize) < program.regions.len());
/// ```
/// Regions per call chain.
const CHAIN_LEN: usize = 4;
/// Ranking stride between consecutive chains (< CHAIN_LEN, so chains overlap
/// and the same region is reachable through differently-ranked chains).
const CHAIN_STRIDE: usize = 2;

pub struct Walker<'a> {
    program: &'a Program,
    rng: Prng,
    zipf: Zipf,
    /// Per-phase rank → region index.
    phase_ranking: Vec<Vec<u32>>,
    phase: usize,
    phase_remaining: u32,
    phase_len: u32,
    mispredict_prob: f64,
    /// Current region execution; `None` means advance the chain.
    cursor: Option<(usize, usize)>,
    /// Remaining regions of the active call chain (chain rank, next offset).
    chain: Option<(usize, usize)>,
}

impl<'a> Walker<'a> {
    /// Creates a walker over `program` for the given input variant.
    ///
    /// # Panics
    ///
    /// Panics if the program has no regions.
    pub fn new(program: &'a Program, spec: &WorkloadSpec, variant: InputVariant) -> Self {
        Walker::with_epoch(program, spec, variant, 0)
    }

    /// As [`Walker::new`], but for execution epoch `epoch` of a long-running
    /// process: the walk RNG stream is re-keyed per epoch and the phase clock
    /// starts rotated by `epoch`, so consecutive epochs of the same program
    /// repeat its phase structure without replaying an identical access
    /// stream. Epoch 0 is byte-identical to [`Walker::new`].
    ///
    /// # Panics
    ///
    /// Panics if the program has no regions.
    pub fn with_epoch(
        program: &'a Program,
        spec: &WorkloadSpec,
        variant: InputVariant,
        epoch: u64,
    ) -> Self {
        assert!(!program.regions.is_empty(), "program must have regions");
        let n = program.regions.len();
        // Base ranking: deterministic per application (shared by all variants
        // and epochs — what is globally hot stays hot across epochs).
        let mut base_rng = Prng::seed_from_u64(spec.program_seed() ^ 0x9e37_79b9);
        let mut base: Vec<u32> = (0..n as u32).collect();
        shuffle(&mut base, &mut base_rng);

        // Epoch 0 multiplies by zero, keeping the original walk seed.
        let epoch_mix = epoch.wrapping_mul(0xd1b5_4a32_d192_ed03);
        let mut rng = Prng::seed_from_u64(spec.walk_seed(variant) ^ epoch_mix);
        // Variant perturbation: swap ~4% of adjacent-ish ranks.
        let swaps = n / 24;
        for _ in 0..swaps {
            let i = rng.gen_range(0..n);
            let j = (i + rng.gen_range(1..8usize)).min(n - 1);
            base.swap(i, j);
        }

        // Per-phase rankings with local boosts from the cold half.
        let local = ((n as f64 * spec.phase_local_fraction) as usize).max(1);
        let mut phase_ranking = Vec::with_capacity(spec.phases as usize);
        for p in 0..spec.phases as usize {
            let mut ranking = base.clone();
            // Choose this phase's locally-hot set deterministically from the
            // cold half (application-level, not variant-level, so profiles
            // see consistent phase structure).
            let cold_start = n / 2;
            for k in 0..local {
                let cold_idx = cold_start + (p * local * 7 + k * 13) % (n - cold_start);
                // Promote to a top rank (interleaved below the very hottest).
                let hot_slot = 3 + k * 5;
                if hot_slot < ranking.len() {
                    ranking.swap(hot_slot, cold_idx);
                }
            }
            phase_ranking.push(ranking);
        }

        let chains = if n > CHAIN_LEN {
            (n - CHAIN_LEN) / CHAIN_STRIDE + 1
        } else {
            1
        };
        Walker {
            program,
            rng,
            zipf: Zipf::new(chains, spec.zipf_alpha),
            phase: (epoch % u64::from(spec.phases.max(1))) as usize % phase_ranking.len().max(1),
            phase_ranking,
            phase_remaining: spec.phase_len,
            phase_len: spec.phase_len,
            mispredict_prob: spec.mispredict_prob(),
            cursor: None,
            chain: None,
        }
    }

    /// Advances to the next region: either the next member of the active
    /// call chain, or the head of a freshly sampled chain.
    fn pick_region(&mut self) -> usize {
        let ranking = &self.phase_ranking[self.phase];
        let n = ranking.len();
        let (chain_rank, offset) = match self.chain {
            Some((c, o)) if o < CHAIN_LEN => (c, o),
            _ => (self.zipf.sample(&mut self.rng), 0),
        };
        self.chain = Some((chain_rank, offset + 1));
        let pos = (chain_rank * CHAIN_STRIDE + offset).min(n - 1);
        ranking[pos] as usize
    }

    fn advance_phase_clock(&mut self) {
        self.phase_remaining = self.phase_remaining.saturating_sub(1);
        if self.phase_remaining == 0 {
            self.phase = (self.phase + 1) % self.phase_ranking.len();
            self.phase_remaining = self.phase_len;
        }
    }

    /// The current phase index (for tests and diagnostics).
    pub fn phase(&self) -> usize {
        self.phase
    }
}

impl Iterator for Walker<'_> {
    type Item = BlockExec;

    fn next(&mut self) -> Option<BlockExec> {
        let (region_idx, bb_idx) = match self.cursor.take() {
            Some(c) => c,
            None => (self.pick_region(), 0),
        };
        let region = &self.program.regions[region_idx];
        let bb = &region.bbs[bb_idx];
        let taken = match bb.branch {
            BranchKind::Unconditional => true,
            BranchKind::Conditional => self.rng.gen_bool(bb.taken_prob),
        };
        let mispredicted =
            matches!(bb.branch, BranchKind::Conditional) && self.rng.gen_bool(self.mispredict_prob);

        // Compute the next block.
        let next = if taken {
            match bb.target {
                BbTarget::Skip(k) => {
                    let t = bb_idx + usize::from(k);
                    (t < region.bbs.len()).then_some((region_idx, t))
                }
                BbTarget::LoopBack => Some((region_idx, 0)),
                BbTarget::Exit => None,
            }
        } else {
            let t = bb_idx + 1;
            (t < region.bbs.len()).then_some((region_idx, t))
        };
        // Leaving a region is always a control transfer (a return), even
        // when the simulated branch fell through past the last block — the
        // next fetch address is discontinuous either way.
        let taken = taken || next.is_none();
        self.cursor = next;
        self.advance_phase_clock();
        Some(BlockExec {
            region: region_idx as u32,
            bb: bb_idx as u32,
            taken,
            mispredicted,
        })
    }
}

/// Fisher-Yates shuffle.
fn shuffle(v: &mut [u32], rng: &mut Prng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AppId;
    use std::collections::HashMap;

    fn walk(app: AppId, variant: u32, n: usize) -> Vec<BlockExec> {
        let spec = app.spec();
        let program = Program::synthesize(&spec);
        Walker::new(&program, &spec, InputVariant(variant))
            .take(n)
            .collect()
    }

    #[test]
    fn deterministic_per_variant() {
        assert_eq!(walk(AppId::Kafka, 0, 500), walk(AppId::Kafka, 0, 500));
        assert_ne!(walk(AppId::Kafka, 0, 500), walk(AppId::Kafka, 1, 500));
    }

    #[test]
    fn popularity_is_skewed() {
        let execs = walk(AppId::Python, 0, 50_000);
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for e in &execs {
            *counts.entry(e.region).or_insert(0) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Top 10% of regions account for most executions.
        let top: u64 = freq.iter().take(freq.len() / 10 + 1).sum();
        let total: u64 = freq.iter().sum();
        assert!(top * 2 > total, "top decile {top} of {total}");
    }

    #[test]
    fn control_flow_stays_within_regions() {
        let spec = AppId::Mysql.spec();
        let program = Program::synthesize(&spec);
        for e in Walker::new(&program, &spec, InputVariant(0)).take(10_000) {
            let r = &program.regions[e.region as usize];
            assert!((e.bb as usize) < r.bbs.len());
        }
    }

    #[test]
    fn mispredictions_track_mpki_order() {
        let low = walk(AppId::Postgres, 0, 50_000); // MPKI 0.41
        let high = walk(AppId::Wordpress, 0, 50_000); // MPKI 5.64
        let rate =
            |v: &[BlockExec]| v.iter().filter(|e| e.mispredicted).count() as f64 / v.len() as f64;
        assert!(rate(&high) > rate(&low));
    }

    #[test]
    fn variants_agree_on_hot_regions() {
        // The hottest regions of two variants overlap substantially — the
        // property Fig. 18's cross-validation depends on.
        let top_regions = |variant| {
            let execs = walk(AppId::Clang, variant, 40_000);
            let mut counts: HashMap<u32, u64> = HashMap::new();
            for e in &execs {
                *counts.entry(e.region).or_insert(0) += 1;
            }
            let mut v: Vec<(u64, u32)> = counts.into_iter().map(|(r, c)| (c, r)).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.into_iter()
                .take(50)
                .map(|(_, r)| r)
                .collect::<std::collections::HashSet<_>>()
        };
        let a = top_regions(0);
        let b = top_regions(1);
        let overlap = a.intersection(&b).count();
        assert!(overlap >= 25, "only {overlap}/50 hot regions shared");
    }

    #[test]
    fn loops_revisit_block_zero() {
        let execs = walk(AppId::Postgres, 0, 5_000);
        // Some consecutive pair must loop back to bb 0 of the same region.
        let looped = execs
            .windows(2)
            .any(|w| w[0].region == w[1].region && w[1].bb == 0 && w[0].bb != 0);
        assert!(looped);
    }
}
