//! # uopcache-trace
//!
//! Synthetic data-center workload generation for the `uopcache` simulator.
//!
//! The paper drives its evaluation with Intel PT traces of 11 open-source
//! data center applications (Table II). Those traces are not redistributable
//! here, so this crate synthesizes statistically equivalent **prediction
//! window lookup streams**:
//!
//! 1. [`Program::synthesize`] builds a static program — code regions made of
//!    basic blocks with realistic instruction byte/micro-op counts and branch
//!    behaviour — seeded **per application only**, so every input variant of
//!    an application shares the same binary (a requirement for profile-guided
//!    policies to transfer across inputs, as in the paper's Fig. 18).
//! 2. [`Walker`] walks the program with phase behaviour, Zipfian region
//!    popularity and stochastic branch outcomes, seeded per
//!    `(application, input variant)`.
//! 3. [`PwBuilder`] reconstructs the PW lookup stream from the dynamic
//!    basic-block stream: windows terminate at predicted-taken branches and
//!    64-byte i-cache line boundaries, which yields variable PW costs and
//!    overlapping windows with shared start addresses — the properties FLACK
//!    and FURBYS exploit.
//!
//! # Examples
//!
//! ```
//! use uopcache_trace::{build_trace, AppId, InputVariant};
//!
//! let trace = build_trace(AppId::Kafka, InputVariant::default(), 10_000);
//! assert_eq!(trace.len(), 10_000);
//! // Data-center footprints dwarf a 512-entry micro-op cache.
//! assert!(trace.footprint_entries(8) > 512);
//! ```

pub mod generator;
pub mod io;
pub mod program;
pub mod pwstream;
pub mod stats;
pub mod walker;
pub mod workload;
pub mod zipf;

pub use generator::{
    build_trace, build_trace_scaled, build_trace_scaled_with_spec, build_trace_with_spec,
};
pub use io::TraceIoError;
pub use program::{Bb, BbTarget, BranchKind, Program, Region};
pub use pwstream::PwBuilder;
pub use stats::TraceStats;
pub use walker::{BlockExec, Walker};
pub use workload::{AppId, InputVariant, WorkloadSpec};
pub use zipf::Zipf;
