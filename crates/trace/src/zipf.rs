//! Zipfian sampling over ranked items.

use uopcache_model::rng::Rng;

/// A Zipf distribution over ranks `0..n`: rank `k` has weight
/// `1 / (k + 1)^alpha`. Sampling is O(log n) via a precomputed CDF.
///
/// # Examples
///
/// ```
/// use uopcache_trace::Zipf;
/// use uopcache_model::rng::Prng;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = Prng::seed_from_u64(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a distribution over `n` ranks with skew `alpha`
    /// (`alpha = 0` is uniform; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true — kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_model::rng::Prng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 0.9);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(10, 1.2);
        for k in 1..10 {
            assert!(z.pmf(0) > z.pmf(k));
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_follow_skew() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Prng::seed_from_u64(42);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
