//! Trace serialisation: JSON (interoperable) and a compact binary format
//! (what you would actually store for 100M-instruction traces).
//!
//! The binary format is deliberately simple and versioned:
//!
//! ```text
//! magic   4 bytes  b"UOPT"
//! version u32 LE   1
//! count   u64 LE   number of accesses
//! then per access:
//!   start  u64 LE
//!   uops   u32 LE
//!   bytes  u32 LE
//!   flags  u8      bit0 = mispredicted, bit1 = line-boundary termination
//! ```

use std::fmt;
use std::io::{Read, Write};
use uopcache_model::json;
use uopcache_model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination};

const MAGIC: &[u8; 4] = b"UOPT";
const VERSION: u32 = 1;

/// Errors arising while reading or writing trace files.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the `UOPT` magic.
    BadMagic([u8; 4]),
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The stream ended before `count` records were read, or a record is
    /// malformed.
    Truncated,
    /// A record violates a model invariant (e.g. zero micro-ops).
    InvalidRecord(String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "bad magic {m:?}, expected \"UOPT\""),
            TraceIoError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Truncated => f.write_str("trace stream ended early"),
            TraceIoError::InvalidRecord(why) => write!(f, "invalid trace record: {why}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes `trace` in the binary format. A `&mut` reference works as a
/// writer too.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_binary<W: Write>(mut w: W, trace: &LookupTrace) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for a in trace.iter() {
        w.write_all(&a.pw.start.get().to_le_bytes())?;
        w.write_all(&a.pw.uops.to_le_bytes())?;
        w.write_all(&a.pw.bytes.to_le_bytes())?;
        let mut flags = 0u8;
        if a.mispredicted {
            flags |= 1;
        }
        if a.pw.term == PwTermination::LineBoundary {
            flags |= 2;
        }
        w.write_all(&[flags])?;
    }
    Ok(())
}

/// Reads a binary trace.
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed input, version mismatch or I/O
/// failure.
pub fn read_binary<R: Read>(mut r: R) -> Result<LookupTrace, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|_| TraceIoError::Truncated)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let count = read_u64(&mut r)?;
    let mut trace = LookupTrace::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let start = read_u64(&mut r)?;
        let uops = read_u32(&mut r)?;
        let bytes = read_u32(&mut r)?;
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)
            .map_err(|_| TraceIoError::Truncated)?;
        if uops == 0 || bytes == 0 {
            return Err(TraceIoError::InvalidRecord(format!(
                "window at {start:#x} has uops={uops}, bytes={bytes}"
            )));
        }
        let term = if flags[0] & 2 != 0 {
            PwTermination::LineBoundary
        } else {
            PwTermination::TakenBranch
        };
        trace.push(PwAccess {
            pw: PwDesc::new(Addr::new(start), uops, bytes, term),
            mispredicted: flags[0] & 1 != 0,
        });
    }
    Ok(trace)
}

/// Saves a trace to a file, choosing the format by extension: `.json` writes
/// JSON, anything else the binary format.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure.
pub fn save(path: &std::path::Path, trace: &LookupTrace) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    let mut buf = std::io::BufWriter::new(file);
    if path.extension().is_some_and(|e| e == "json") {
        use std::io::Write as _;
        buf.write_all(json::to_string(trace).as_bytes())?;
        Ok(())
    } else {
        write_binary(&mut buf, trace)
    }
}

/// Loads a trace saved by [`save`] (format chosen by extension).
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed input or I/O failure.
pub fn load(path: &std::path::Path) -> Result<LookupTrace, TraceIoError> {
    let file = std::fs::File::open(path)?;
    let mut buf = std::io::BufReader::new(file);
    if path.extension().is_some_and(|e| e == "json") {
        let mut text = String::new();
        std::io::Read::read_to_string(&mut buf, &mut text)?;
        json::from_str(&text).map_err(|e| TraceIoError::InvalidRecord(e.to_string()))
    } else {
        read_binary(&mut buf)
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|_| TraceIoError::Truncated)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|_| TraceIoError::Truncated)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::build_trace;
    use crate::workload::{AppId, InputVariant};

    #[test]
    fn binary_round_trip() {
        let trace = build_trace(AppId::Kafka, InputVariant(0), 5_000);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &trace).unwrap();
        let back = read_binary(bytes.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let trace = build_trace(AppId::Mysql, InputVariant(0), 2_000);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &trace).unwrap();
        let json = json::to_string(&trace);
        assert!(
            bytes.len() * 2 < json.len(),
            "{} vs {}",
            bytes.len(),
            json.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic(_)), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"UOPT");
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::UnsupportedVersion(9)), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let trace = build_trace(AppId::Kafka, InputVariant(0), 10);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &trace).unwrap();
        bytes.truncate(bytes.len() - 3);
        let err = read_binary(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Truncated), "{err}");
    }

    #[test]
    fn zero_uop_record_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"UOPT");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0x40u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // uops = 0
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.push(0);
        let err = read_binary(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::InvalidRecord(_)), "{err}");
    }

    #[test]
    fn file_round_trip_both_formats() {
        let dir = std::env::temp_dir();
        let trace = build_trace(AppId::Python, InputVariant(1), 1_000);
        for name in ["uopcache_io_test.json", "uopcache_io_test.bin"] {
            let path = dir.join(name);
            save(&path, &trace).unwrap();
            let back = load(&path).unwrap();
            assert_eq!(back, trace, "{name}");
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Property: for seeded generator output across every app, several
    /// variants and lengths (including the empty trace), write→read is the
    /// identity on the PW stream, and re-serialising the read-back trace
    /// reproduces the original bytes exactly.
    #[test]
    fn binary_round_trip_property_over_seeded_generator() {
        for app in AppId::ALL {
            for variant in [0u32, 1, 7] {
                for len in [0usize, 1, 257, 3_000] {
                    let trace = build_trace(app, InputVariant(variant), len);
                    let mut bytes = Vec::new();
                    write_binary(&mut bytes, &trace).unwrap();
                    let back = read_binary(bytes.as_slice()).unwrap();
                    assert_eq!(
                        back, trace,
                        "write→read must be identity for {app} v{variant} len{len}"
                    );
                    let mut again = Vec::new();
                    write_binary(&mut again, &back).unwrap();
                    assert_eq!(
                        again, bytes,
                        "re-serialisation must be byte-identical for {app} v{variant} len{len}"
                    );
                }
            }
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceIoError::UnsupportedVersion(3);
        assert!(e.to_string().contains('3'));
        let e = TraceIoError::Truncated;
        assert!(!e.to_string().is_empty());
    }
}
