//! Deterministic pseudo-random number generation for trace synthesis and
//! property tests.
//!
//! The workspace builds and tests offline, so instead of the `rand` crate it
//! uses this self-contained xoshiro256++ generator. Determinism is a feature,
//! not a convenience: every synthetic trace and every randomized test is a
//! pure function of its seed, which is what the reproduction's
//! "pure function of its parameters" guarantee rests on.
//!
//! # Examples
//!
//! ```
//! use uopcache_model::rng::{Prng, Rng};
//!
//! let mut a = Prng::seed_from_u64(7);
//! let mut b = Prng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(0..10) < 10);
//! let p: f64 = a.gen_f64();
//! assert!((0.0..1.0).contains(&p));
//! ```

/// A source of uniform random bits with convenience samplers.
///
/// Mirrors the subset of `rand::Rng` the workspace uses, so call sites read
/// the same as they would against the external crate.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_f64() < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// A range type [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            // The value is reduced modulo the range span before narrowing,
            // so the cast back to $t cannot truncate.
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// xoshiro256++ seeded via SplitMix64 — the standard small, fast,
/// well-distributed generator pairing.
#[derive(Clone, Debug)]
pub struct Prng {
    state: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Prng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl Rng for Prng {
    fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
            let v = rng.gen_range(1..=3u8);
            assert!((1..=3).contains(&v));
            let f = rng.gen_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = Prng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Prng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u32);
    }
}
