//! Hardware configuration for the simulated frontend, with presets matching
//! the paper's Table I (AMD Zen3-like) and the Zen4-like sensitivity setup.

use crate::json_struct;

/// Micro-op cache geometry and behaviour.
///
/// Defaults mirror Table I: 512 entries, 8-way, 8 micro-ops per entry,
/// inclusive with L1i, 1-cycle switch delay between the micro-op cache path
/// and the legacy decode path.
///
/// # Examples
///
/// ```
/// use uopcache_model::UopCacheConfig;
///
/// let cfg = UopCacheConfig::zen3();
/// assert_eq!(cfg.sets(), 64);
/// assert_eq!(cfg.capacity_uops(), 4096);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct UopCacheConfig {
    /// Total number of entries (entries = sets × ways).
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Micro-op slots per entry.
    pub uops_per_entry: u32,
    /// Cycles lost when switching between the micro-op cache path and the
    /// legacy decode path.
    pub switch_penalty: u32,
    /// Whether the micro-op cache contents are strictly included in L1i
    /// (an L1i eviction invalidates the corresponding PWs).
    pub inclusive_with_l1i: bool,
    /// Maximum number of entries a single PW may occupy within one set.
    /// PWs larger than this are never cached (they stream from the decoder).
    pub max_entries_per_pw: u32,
}

impl UopCacheConfig {
    /// Table I / AMD Zen3-like preset: 512-entry, 8-way, 8 uops/entry.
    pub const fn zen3() -> Self {
        UopCacheConfig {
            entries: 512,
            ways: 8,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 4,
        }
    }

    /// AMD Zen4-like preset: a larger (864-entry, 12-way) op cache holding
    /// roughly 6.75K micro-ops, per public microarchitecture documentation.
    pub const fn zen4() -> Self {
        UopCacheConfig {
            entries: 864,
            ways: 12,
            uops_per_entry: 8,
            switch_penalty: 1,
            inclusive_with_l1i: true,
            max_entries_per_pw: 6,
        }
    }

    /// Returns a copy with a different total entry count (ways preserved).
    pub fn with_entries(mut self, entries: u32) -> Self {
        self.entries = entries;
        self
    }

    /// Returns a copy with a different associativity.
    pub fn with_ways(mut self, ways: u32) -> Self {
        self.ways = ways;
        self
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`.
    pub fn sets(&self) -> u32 {
        assert!(
            self.ways > 0 && self.entries.is_multiple_of(self.ways),
            "entries must divide into ways"
        );
        self.entries / self.ways
    }

    /// Total micro-op capacity.
    pub const fn capacity_uops(&self) -> u32 {
        self.entries * self.uops_per_entry
    }

    /// The set index a PW with the given start address maps to.
    ///
    /// The micro-op cache is indexed by the PW start address at i-cache line
    /// granularity, matching the industry organisation in which all entries of
    /// a PW live in one set.
    pub fn set_index_for(&self, start: crate::Addr, line_bytes: u64) -> usize {
        let sets = u64::from(self.sets());
        if sets.is_power_of_two() {
            start.line(line_bytes).set_index(sets, line_bytes)
        } else {
            // Reduced modulo `sets`, so the value always fits in usize.
            #[allow(clippy::cast_possible_truncation)]
            let idx = ((start.get() / line_bytes) % sets) as usize;
            idx
        }
    }
}

impl Default for UopCacheConfig {
    fn default() -> Self {
        Self::zen3()
    }
}

/// L1 instruction cache geometry (Table I: 32 KiB, 8-way, 64 B lines, LRU).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct IcacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles.
    pub latency: u32,
}

impl IcacheConfig {
    /// Table I preset: 32 KiB, 8-way, 64 B lines, 1-cycle.
    pub const fn zen3() -> Self {
        IcacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 1,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> u32 {
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            self.ways > 0 && lines.is_multiple_of(self.ways),
            "lines must divide into ways"
        );
        lines / self.ways
    }
}

impl Default for IcacheConfig {
    fn default() -> Self {
        Self::zen3()
    }
}

/// Legacy decode pipeline (Table I: 4-wide, 5-cycle latency).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct DecoderConfig {
    /// Instructions decoded per cycle.
    pub width: u32,
    /// Pipeline depth in cycles; this latency is what makes micro-op cache
    /// insertion *asynchronous* with respect to lookups.
    pub latency: u32,
}

impl DecoderConfig {
    /// Table I preset: 4-wide, 5-cycle.
    pub const fn zen3() -> Self {
        DecoderConfig {
            width: 4,
            latency: 5,
        }
    }
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self::zen3()
    }
}

/// Branch prediction unit (Table I: 8192-entry 4-way BTB, 32-entry RAS,
/// TAGE-SC-L-class conditional predictor, 4096-entry IBTB).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct BpuConfig {
    /// Branch target buffer entries.
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_ways: u32,
    /// Return address stack depth.
    pub ras_entries: u32,
    /// Indirect-branch target buffer entries.
    pub ibtb_entries: u32,
    /// Conditional predictor history-table entries (abstraction of
    /// TAGE-SC-L storage).
    pub cond_entries: u32,
    /// Branch misprediction pipeline-flush penalty in cycles.
    pub mispredict_penalty: u32,
}

impl BpuConfig {
    /// Table I preset.
    pub const fn zen3() -> Self {
        BpuConfig {
            btb_entries: 8192,
            btb_ways: 4,
            ras_entries: 32,
            ibtb_entries: 4096,
            cond_entries: 65536,
            mispredict_penalty: 14,
        }
    }
}

impl Default for BpuConfig {
    fn default() -> Self {
        Self::zen3()
    }
}

/// Out-of-order backend abstraction (Table I: 3.2 GHz, 6-wide, 256-entry ROB).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct BackendConfig {
    /// Core frequency in GHz (for energy/PPW reporting).
    pub freq_ghz: f64,
    /// Issue/retire width in micro-ops per cycle.
    pub width: u32,
    /// Reorder buffer entries.
    pub rob_entries: u32,
    /// Reservation station entries.
    pub rs_entries: u32,
    /// Average backend IPC ceiling imposed by data dependencies and memory
    /// (micro-ops per cycle the backend can absorb on these workloads).
    pub uop_ipc_ceiling: f64,
}

impl BackendConfig {
    /// Table I preset.
    pub const fn zen3() -> Self {
        BackendConfig {
            freq_ghz: 3.2,
            width: 6,
            rob_entries: 256,
            rs_entries: 96,
            uop_ipc_ceiling: 3.0,
        }
    }
}

impl Default for BackendConfig {
    fn default() -> Self {
        Self::zen3()
    }
}

/// Which structures are modelled as *perfect* (always hit / always correct),
/// for the Figure 2 limit study.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, Default)]
pub struct PerfectStructures {
    /// Micro-op cache always hits (after first touch).
    pub uop_cache: bool,
    /// Instruction cache always hits.
    pub icache: bool,
    /// BTB always holds the target.
    pub btb: bool,
    /// Conditional/indirect predictor never mispredicts.
    pub branch_predictor: bool,
}

impl PerfectStructures {
    /// Nothing perfect: the realistic baseline.
    pub const fn none() -> Self {
        PerfectStructures {
            uop_cache: false,
            icache: false,
            btb: false,
            branch_predictor: false,
        }
    }
}

/// Complete frontend configuration: the argument to the simulator.
///
/// # Examples
///
/// ```
/// use uopcache_model::FrontendConfig;
///
/// let zen3 = FrontendConfig::zen3();
/// assert_eq!(zen3.uop_cache.entries, 512);
/// let zen4 = FrontendConfig::zen4();
/// assert!(zen4.uop_cache.entries > zen3.uop_cache.entries);
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct FrontendConfig {
    /// Micro-op cache.
    pub uop_cache: UopCacheConfig,
    /// L1 instruction cache.
    pub icache: IcacheConfig,
    /// Legacy decode pipeline.
    pub decoder: DecoderConfig,
    /// Branch prediction unit.
    pub bpu: BpuConfig,
    /// Backend abstraction.
    pub backend: BackendConfig,
    /// Perfect-structure switches for limit studies.
    pub perfect: PerfectStructures,
}

impl FrontendConfig {
    /// Table I / AMD Zen3-like preset.
    pub fn zen3() -> Self {
        FrontendConfig {
            uop_cache: UopCacheConfig::zen3(),
            icache: IcacheConfig::zen3(),
            decoder: DecoderConfig::zen3(),
            bpu: BpuConfig::zen3(),
            backend: BackendConfig::zen3(),
            perfect: PerfectStructures::none(),
        }
    }

    /// AMD Zen4-like preset used by the paper's frontend-configuration
    /// sensitivity study (Fig. 17): larger op cache, wider frontend.
    pub fn zen4() -> Self {
        let mut cfg = Self::zen3();
        cfg.uop_cache = UopCacheConfig::zen4();
        cfg.bpu.btb_entries = 16384;
        cfg.icache.size_bytes = 32 * 1024;
        cfg.decoder = DecoderConfig {
            width: 4,
            latency: 4,
        };
        cfg.backend.width = 8;
        cfg.backend.uop_ipc_ceiling = 3.3;
        cfg
    }
}

json_struct!(UopCacheConfig {
    entries,
    ways,
    uops_per_entry,
    switch_penalty,
    inclusive_with_l1i,
    max_entries_per_pw,
});
json_struct!(IcacheConfig {
    size_bytes,
    ways,
    line_bytes,
    latency
});
json_struct!(DecoderConfig { width, latency });
json_struct!(BpuConfig {
    btb_entries,
    btb_ways,
    ras_entries,
    ibtb_entries,
    cond_entries,
    mispredict_penalty,
});
json_struct!(BackendConfig {
    freq_ghz,
    width,
    rob_entries,
    rs_entries,
    uop_ipc_ceiling
});
json_struct!(PerfectStructures {
    uop_cache,
    icache,
    btb,
    branch_predictor
});
json_struct!(FrontendConfig {
    uop_cache,
    icache,
    decoder,
    bpu,
    backend,
    perfect
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;

    #[test]
    fn zen3_matches_table_i() {
        let c = FrontendConfig::zen3();
        assert_eq!(c.uop_cache.entries, 512);
        assert_eq!(c.uop_cache.ways, 8);
        assert_eq!(c.uop_cache.uops_per_entry, 8);
        assert_eq!(c.uop_cache.sets(), 64);
        assert_eq!(c.icache.size_bytes, 32 * 1024);
        assert_eq!(c.icache.sets(), 64);
        assert_eq!(c.decoder.width, 4);
        assert_eq!(c.decoder.latency, 5);
        assert_eq!(c.bpu.btb_entries, 8192);
        assert_eq!(c.backend.rob_entries, 256);
    }

    #[test]
    fn capacity_in_uops() {
        assert_eq!(UopCacheConfig::zen3().capacity_uops(), 4096);
    }

    #[test]
    fn set_index_is_stable_and_bounded() {
        let c = UopCacheConfig::zen3();
        for raw in [0u64, 64, 4096, 0xdead_beef] {
            let idx = c.set_index_for(Addr::new(raw), 64);
            assert!(idx < c.sets() as usize);
            assert_eq!(idx, c.set_index_for(Addr::new(raw), 64));
        }
    }

    #[test]
    fn set_index_handles_non_power_of_two_sets() {
        let c = UopCacheConfig::zen4(); // 864 / 12 = 72 sets
        assert_eq!(c.sets(), 72);
        for raw in (0..10_000u64).step_by(37) {
            assert!(c.set_index_for(Addr::new(raw), 64) < 72);
        }
    }

    #[test]
    fn with_builders_change_geometry() {
        let c = UopCacheConfig::zen3().with_entries(1024).with_ways(16);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.entries, 1024);
    }

    #[test]
    #[should_panic(expected = "divide into ways")]
    fn bad_geometry_panics() {
        let _ = UopCacheConfig::zen3().with_entries(100).sets();
    }

    #[test]
    fn zen4_differs() {
        assert_ne!(FrontendConfig::zen4(), FrontendConfig::zen3());
    }
}
