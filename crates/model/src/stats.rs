//! Statistics containers: cache statistics, per-structure event counts for the
//! power model, and the top-level simulation result.

use crate::json_struct;
use std::ops::AddAssign;

/// Generic cache statistics (used for L1i, BTB and similar structures).
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Lines filled.
    pub fills: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.misses, self.accesses)
    }

    /// Hit ratio in `[0, 1]`; zero when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.accesses)
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.fills += rhs.fills;
    }
}

/// Micro-op cache statistics.
///
/// The paper defines the miss rate at **micro-op granularity** (§II-C): a
/// partial hit contributes hit micro-ops *and* missed micro-ops. Use
/// [`UopCacheStats::uop_miss_rate`] for the metric every figure reports.
///
/// # Examples
///
/// ```
/// use uopcache_model::UopCacheStats;
///
/// let mut s = UopCacheStats::default();
/// s.uops_requested = 100;
/// s.uops_hit = 80;
/// s.uops_missed = 20;
/// assert!((s.uop_miss_rate() - 0.2).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct UopCacheStats {
    /// PW lookups issued to the micro-op cache.
    pub lookups: u64,
    /// Lookups fully served from the cache (including via a larger stored PW).
    pub pw_hits: u64,
    /// Lookups partially served (stored PW shorter than the request).
    pub pw_partial_hits: u64,
    /// Lookups that missed entirely.
    pub pw_misses: u64,
    /// Micro-ops requested across all lookups.
    pub uops_requested: u64,
    /// Micro-ops served from the micro-op cache.
    pub uops_hit: u64,
    /// Micro-ops that had to come from the legacy decode path.
    pub uops_missed: u64,
    /// PWs inserted into the cache.
    pub insertions: u64,
    /// Entries written during insertions (insertion energy scales with this).
    pub entries_written: u64,
    /// PWs whose insertion was bypassed by the policy.
    pub bypasses: u64,
    /// PWs evicted by replacement.
    pub evicted_pws: u64,
    /// Entries freed by replacement evictions.
    pub evicted_entries: u64,
    /// PWs invalidated because their L1i line was evicted (inclusion).
    pub inclusion_invalidations: u64,
    /// Missed micro-ops attributed to cold (first-touch) misses.
    pub cold_miss_uops: u64,
    /// Missed micro-ops attributed to capacity misses.
    pub capacity_miss_uops: u64,
    /// Missed micro-ops attributed to conflict misses.
    pub conflict_miss_uops: u64,
    /// Victim selections made by the primary policy (vs. a fallback such as
    /// SRRIP under FURBYS's pitfall detector) — Fig. "replacement coverage".
    pub primary_victim_selections: u64,
    /// Victim selections delegated to the fallback policy.
    pub fallback_victim_selections: u64,
}

impl UopCacheStats {
    /// Micro-op-granularity miss rate in `[0, 1]`.
    pub fn uop_miss_rate(&self) -> f64 {
        ratio(self.uops_missed, self.uops_requested)
    }

    /// Micro-op-granularity hit rate in `[0, 1]`.
    pub fn uop_hit_rate(&self) -> f64 {
        ratio(self.uops_hit, self.uops_requested)
    }

    /// PW-granularity miss rate (partial hits count as half a miss is *not*
    /// assumed; a partial hit is not a full miss, so only full misses count).
    pub fn pw_miss_rate(&self) -> f64 {
        ratio(self.pw_misses, self.lookups)
    }

    /// Fraction of insertions avoided by bypassing.
    pub fn bypass_rate(&self) -> f64 {
        ratio(self.bypasses, self.insertions + self.bypasses)
    }

    /// Fraction of victim selections made by the primary policy
    /// (the paper's *replacement coverage*, §VI-C).
    pub fn replacement_coverage(&self) -> f64 {
        ratio(
            self.primary_victim_selections,
            self.primary_victim_selections + self.fallback_victim_selections,
        )
    }

    /// Relative miss reduction of `self` versus a `baseline`, in percent.
    /// Positive means fewer missed micro-ops than the baseline.
    pub fn miss_reduction_vs(&self, baseline: &UopCacheStats) -> f64 {
        if baseline.uops_missed == 0 {
            return 0.0;
        }
        (1.0 - self.uops_missed as f64 / baseline.uops_missed as f64) * 100.0
    }
}

impl std::ops::Sub for UopCacheStats {
    type Output = UopCacheStats;

    /// Field-wise difference: `run_end - run_start` gives the statistics of
    /// one run on a cache that has already accumulated history.
    fn sub(self, rhs: Self) -> Self {
        UopCacheStats {
            lookups: self.lookups - rhs.lookups,
            pw_hits: self.pw_hits - rhs.pw_hits,
            pw_partial_hits: self.pw_partial_hits - rhs.pw_partial_hits,
            pw_misses: self.pw_misses - rhs.pw_misses,
            uops_requested: self.uops_requested - rhs.uops_requested,
            uops_hit: self.uops_hit - rhs.uops_hit,
            uops_missed: self.uops_missed - rhs.uops_missed,
            insertions: self.insertions - rhs.insertions,
            entries_written: self.entries_written - rhs.entries_written,
            bypasses: self.bypasses - rhs.bypasses,
            evicted_pws: self.evicted_pws - rhs.evicted_pws,
            evicted_entries: self.evicted_entries - rhs.evicted_entries,
            inclusion_invalidations: self.inclusion_invalidations - rhs.inclusion_invalidations,
            cold_miss_uops: self.cold_miss_uops - rhs.cold_miss_uops,
            capacity_miss_uops: self.capacity_miss_uops - rhs.capacity_miss_uops,
            conflict_miss_uops: self.conflict_miss_uops - rhs.conflict_miss_uops,
            primary_victim_selections: self.primary_victim_selections
                - rhs.primary_victim_selections,
            fallback_victim_selections: self.fallback_victim_selections
                - rhs.fallback_victim_selections,
        }
    }
}

impl AddAssign for UopCacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.lookups += rhs.lookups;
        self.pw_hits += rhs.pw_hits;
        self.pw_partial_hits += rhs.pw_partial_hits;
        self.pw_misses += rhs.pw_misses;
        self.uops_requested += rhs.uops_requested;
        self.uops_hit += rhs.uops_hit;
        self.uops_missed += rhs.uops_missed;
        self.insertions += rhs.insertions;
        self.entries_written += rhs.entries_written;
        self.bypasses += rhs.bypasses;
        self.evicted_pws += rhs.evicted_pws;
        self.evicted_entries += rhs.evicted_entries;
        self.inclusion_invalidations += rhs.inclusion_invalidations;
        self.cold_miss_uops += rhs.cold_miss_uops;
        self.capacity_miss_uops += rhs.capacity_miss_uops;
        self.conflict_miss_uops += rhs.conflict_miss_uops;
        self.primary_victim_selections += rhs.primary_victim_selections;
        self.fallback_victim_selections += rhs.fallback_victim_selections;
    }
}

/// Per-structure activity counts consumed by the power model
/// (the "dynamic activity statistics" fed to McPAT in the paper's flow).
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct EventCounts {
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Retired micro-ops.
    pub retired_uops: u64,
    /// Retired x86 instructions.
    pub retired_instructions: u64,
    /// L1i line reads (legacy-path fetches).
    pub icache_reads: u64,
    /// L1i line fills.
    pub icache_fills: u64,
    /// Micro-op cache set lookups.
    pub uopc_lookups: u64,
    /// Micro-op cache entries read on hits.
    pub uopc_entry_reads: u64,
    /// Micro-op cache entries written on insertions.
    pub uopc_entry_writes: u64,
    /// Micro-ops that went through the legacy decoders.
    pub decoded_uops: u64,
    /// Cycles in which the decode pipeline was active (not clock-gated).
    pub decoder_active_cycles: u64,
    /// Branch predictor lookups.
    pub bp_accesses: u64,
    /// BTB lookups.
    pub btb_accesses: u64,
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.cycles += rhs.cycles;
        self.retired_uops += rhs.retired_uops;
        self.retired_instructions += rhs.retired_instructions;
        self.icache_reads += rhs.icache_reads;
        self.icache_fills += rhs.icache_fills;
        self.uopc_lookups += rhs.uopc_lookups;
        self.uopc_entry_reads += rhs.uopc_entry_reads;
        self.uopc_entry_writes += rhs.uopc_entry_writes;
        self.decoded_uops += rhs.decoded_uops;
        self.decoder_active_cycles += rhs.decoder_active_cycles;
        self.bp_accesses += rhs.bp_accesses;
        self.btb_accesses += rhs.btb_accesses;
    }
}

/// Result of one simulation run: timing, micro-op cache behaviour, i-cache
/// behaviour, and the activity counts for the power model.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct SimResult {
    /// Micro-op cache statistics.
    pub uopc: UopCacheStats,
    /// Instruction cache statistics.
    pub icache: CacheStats,
    /// BTB statistics.
    pub btb: CacheStats,
    /// Activity counts for the power model.
    pub events: EventCounts,
    /// Branch mispredictions observed.
    pub mispredictions: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.events.cycles == 0 {
            return 0.0;
        }
        self.events.retired_instructions as f64 / self.events.cycles as f64
    }

    /// Micro-ops per cycle.
    pub fn upc(&self) -> f64 {
        if self.events.cycles == 0 {
            return 0.0;
        }
        self.events.retired_uops as f64 / self.events.cycles as f64
    }

    /// IPC speedup of `self` over `baseline`, in percent.
    pub fn ipc_speedup_vs(&self, baseline: &SimResult) -> f64 {
        let b = baseline.ipc();
        // A zero (or denormal/NaN) baseline has no meaningful speedup; the
        // guard avoids both the division and a float equality comparison.
        if !b.is_normal() {
            return 0.0;
        }
        (self.ipc() / b - 1.0) * 100.0
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

json_struct!(CacheStats {
    accesses,
    hits,
    misses,
    evictions,
    fills
});
json_struct!(UopCacheStats {
    lookups,
    pw_hits,
    pw_partial_hits,
    pw_misses,
    uops_requested,
    uops_hit,
    uops_missed,
    insertions,
    entries_written,
    bypasses,
    evicted_pws,
    evicted_entries,
    inclusion_invalidations,
    cold_miss_uops,
    capacity_miss_uops,
    conflict_miss_uops,
    primary_victim_selections,
    fallback_victim_selections,
});
json_struct!(EventCounts {
    cycles,
    retired_uops,
    retired_instructions,
    icache_reads,
    icache_fills,
    uopc_lookups,
    uopc_entry_reads,
    uopc_entry_writes,
    decoded_uops,
    decoder_active_cycles,
    bp_accesses,
    btb_accesses,
});
json_struct!(SimResult {
    uopc,
    icache,
    btb,
    events,
    mispredictions
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // the zero-denominator rates are exactly 0.0
    fn rates_handle_zero_denominator() {
        let s = UopCacheStats::default();
        assert_eq!(s.uop_miss_rate(), 0.0);
        assert_eq!(s.bypass_rate(), 0.0);
        assert_eq!(s.replacement_coverage(), 0.0);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        assert_eq!(SimResult::default().ipc(), 0.0);
    }

    #[test]
    fn miss_reduction_is_relative() {
        let base = UopCacheStats {
            uops_missed: 100,
            ..Default::default()
        };
        let better = UopCacheStats {
            uops_missed: 70,
            ..Default::default()
        };
        assert!((better.miss_reduction_vs(&base) - 30.0).abs() < 1e-12);
        assert!((base.miss_reduction_vs(&base)).abs() < 1e-12);
        // Worse than baseline is negative.
        let worse = UopCacheStats {
            uops_missed: 120,
            ..Default::default()
        };
        assert!(worse.miss_reduction_vs(&base) < 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = UopCacheStats {
            lookups: 1,
            uops_hit: 3,
            ..Default::default()
        };
        let b = UopCacheStats {
            lookups: 2,
            uops_hit: 4,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.lookups, 3);
        assert_eq!(a.uops_hit, 7);

        let mut c = CacheStats {
            accesses: 1,
            hits: 1,
            ..Default::default()
        };
        c += CacheStats {
            accesses: 2,
            misses: 2,
            ..Default::default()
        };
        assert_eq!(c.accesses, 3);
        assert_eq!(c.misses, 2);

        let mut e = EventCounts {
            cycles: 5,
            ..Default::default()
        };
        e += EventCounts {
            cycles: 7,
            decoded_uops: 2,
            ..Default::default()
        };
        assert_eq!(e.cycles, 12);
        assert_eq!(e.decoded_uops, 2);
    }

    #[test]
    fn ipc_speedup() {
        let mut base = SimResult::default();
        base.events.cycles = 100;
        base.events.retired_instructions = 100;
        let mut fast = SimResult::default();
        fast.events.cycles = 100;
        fast.events.retired_instructions = 105;
        assert!((fast.ipc_speedup_vs(&base) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = SimResult::default();
        r.events.cycles = 42;
        let json = crate::json::to_string(&r);
        let back: SimResult = crate::json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
