//! Byte and cache-line address newtypes.

use crate::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A virtual byte address of an instruction.
///
/// Newtype over `u64` so that byte addresses, line addresses and plain
/// counters cannot be confused ([C-NEWTYPE]).
///
/// # Examples
///
/// ```
/// use uopcache_model::Addr;
///
/// let a = Addr::new(0x40_0123);
/// assert_eq!(a.line(64).base().get(), 0x40_0100);
/// assert_eq!(a.line_offset(64), 0x23);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: u64) -> LineAddr {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 & !(line_bytes - 1))
    }

    /// Returns the offset of this address within its cache line.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line_offset(self, line_bytes: u64) -> u64 {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        self.0 & (line_bytes - 1)
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// The base address of a cache line (always aligned to the line size it was
/// produced with).
///
/// # Examples
///
/// ```
/// use uopcache_model::Addr;
///
/// let line = Addr::new(0x1234).line(64);
/// assert_eq!(line.base().get(), 0x1200);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Returns the first byte address of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0)
    }

    /// Returns the set index for a cache with `sets` sets and the given line
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two.
    pub fn set_index(self, sets: u64, line_bytes: u64) -> usize {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        // Masked by `sets - 1`, so the value always fits in usize.
        #[allow(clippy::cast_possible_truncation)]
        let idx = ((self.0 / line_bytes) & (sets - 1)) as usize;
        idx
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl ToJson for Addr {
    /// Serialises transparently as the raw byte value.
    fn to_json(&self) -> Json {
        Json::U64(self.0)
    }
}

impl FromJson for Addr {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j).map(Addr)
    }
}

impl ToJson for LineAddr {
    /// Serialises transparently as the line base address.
    fn to_json(&self) -> Json {
        Json::U64(self.0)
    }
}

impl FromJson for LineAddr {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        u64::from_json(j).map(LineAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounds_down() {
        assert_eq!(Addr::new(127).line(64).base(), Addr::new(64));
        assert_eq!(Addr::new(64).line(64).base(), Addr::new(64));
        assert_eq!(Addr::new(63).line(64).base(), Addr::new(0));
    }

    #[test]
    fn line_offset_wraps_within_line() {
        assert_eq!(Addr::new(130).line_offset(64), 2);
        assert_eq!(Addr::new(64).line_offset(64), 0);
    }

    #[test]
    fn set_index_masks_low_bits() {
        let line = Addr::new(0x1000).line(64);
        assert_eq!(line.set_index(64, 64), 0x1000 / 64 % 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_panics() {
        let _ = Addr::new(0).line(48);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{:X}", Addr::new(255)), "FF");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Addr::new(1) < Addr::new(2));
        assert_eq!(Addr::from(7u64).get(), 7);
    }
}
