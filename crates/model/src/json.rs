//! Minimal, dependency-free JSON serialisation.
//!
//! The workspace's on-disk artifacts (traces, hint maps, results) use JSON as
//! their interoperable format. To keep the build dependency-free offline,
//! this module provides a small JSON value model, a parser, a writer, and the
//! [`ToJson`]/[`FromJson`] traits with a [`json_struct!`] derive macro for
//! named-field structs.
//!
//! # Examples
//!
//! ```
//! use uopcache_model::json::{self, FromJson, Json, ToJson};
//!
//! let v = Json::parse(r#"{"a": 1, "b": [true, null, "x"]}"#).unwrap();
//! assert_eq!(v.field("a").unwrap().as_u64().unwrap(), 1);
//! let s = json::to_string(&vec![1u32, 2, 3]);
//! assert_eq!(s, "[1,2,3]");
//! let back: Vec<u32> = json::from_str(&s).unwrap();
//! assert_eq!(back, vec![1, 2, 3]);
//! ```

use std::fmt;

/// A parsed JSON value.
///
/// Integers are kept exact: non-negative integers parse to [`Json::U64`],
/// negative ones to [`Json::I64`], and only values with a fraction or
/// exponent become [`Json::F64`]. Object fields preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fractional part or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion failure, with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed construct.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field {name:?}"))),
            other => Err(JsonError::new(format!(
                "expected object for field {name:?}, got {other:?}"
            ))),
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` (accepts any in-range integer).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::U64(v) => i64::try_from(v).ok(),
            Json::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts any number).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(JsonError::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("non-scalar \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass through).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| JsonError::new("unterminated string"))?;
                    if ch.is_control() {
                        return Err(JsonError::new("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
    }
}

impl fmt::Display for Json {
    /// Writes compact JSON (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip formatting preserves the value.
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if c.is_control() => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the value has the wrong shape.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Parses and converts a JSON string.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or a shape mismatch.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(s)?)
}

macro_rules! json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(u64::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let v = j.as_u64().ok_or_else(|| {
                    JsonError::new(format!("expected unsigned integer, got {j:?}"))
                })?;
                <$t>::try_from(v)
                    .map_err(|_| JsonError::new(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )+};
}

json_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let v = j
            .as_u64()
            .ok_or_else(|| JsonError::new(format!("expected unsigned integer, got {j:?}")))?;
        usize::try_from(v).map_err(|_| JsonError::new(format!("{v} out of range for usize")))
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::U64(*self as u64)
        } else {
            Json::I64(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_i64()
            .ok_or_else(|| JsonError::new(format!("expected integer, got {j:?}")))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, got {j:?}")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, got {j:?}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new(format!("expected string, got {j:?}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_arr()
            .ok_or_else(|| JsonError::new(format!("expected array, got {j:?}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new(format!(
                "expected two-element array, got {j:?}"
            ))),
        }
    }
}

/// Implements [`ToJson`] and [`FromJson`] for a named-field struct, mapping
/// each listed field to an object key of the same name.
///
/// # Examples
///
/// ```
/// use uopcache_model::{json, json_struct};
///
/// #[derive(Debug, PartialEq)]
/// struct P { x: u32, y: f64 }
/// json_struct!(P { x, y });
///
/// let p = P { x: 3, y: 0.5 };
/// let s = json::to_string(&p);
/// assert_eq!(json::from_str::<P>(&s).unwrap(), p);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::json::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                j: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self {
                    $(
                        $field: $crate::json::FromJson::from_json(
                            j.field(stringify!($field))?,
                        )?,
                    )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let text = r#"{"a":1,"b":[true,null,"x\ny"],"c":-2,"d":0.5}"#;
        let v = Json::parse(text).expect("valid document");
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let v = Json::parse(&big.to_string()).expect("u64 literal");
        assert_eq!(v.as_u64(), Some(big));
        let v = Json::parse("-42").expect("negative literal");
        assert_eq!(v.as_i64(), Some(-42));
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact roundtrip is the property under test
    fn floats_roundtrip_via_shortest_form() {
        for x in [0.1, 1.0 / 3.0, 2.5e-9, 1234.5678] {
            let s = Json::F64(x).to_string();
            let back = Json::parse(&s)
                .expect("float literal")
                .as_f64()
                .expect("number");
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\q\"", "{a:1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn field_lookup_errors_name_the_field() {
        let v = Json::parse(r#"{"x":1}"#).expect("valid");
        let err = v.field("missing").expect_err("absent field");
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote\" slash\\ newline\n tab\t unicode€".to_string();
        let s = to_string(&original);
        let back: String = from_str(&s).expect("roundtrip");
        assert_eq!(back, original);
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<(u64, u8)> = vec![(0x4000, 3), (0x8000, 7)];
        let s = to_string(&v);
        let back: Vec<(u64, u8)> = from_str(&s).expect("roundtrip");
        assert_eq!(back, v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt), "null");
        assert_eq!(from_str::<Option<u32>>("null").expect("null"), None);
        assert_eq!(from_str::<Option<u32>>("5").expect("some"), Some(5));
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(from_str::<u32>("\"x\"").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<bool>("1").is_err());
        assert!(from_str::<Vec<u32>>("{}").is_err());
    }
}
