//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The hot policies (Mockingjay's reuse-distance predictor, FOO's interval
//! builder, the oracle occurrence index) key hash maps by addresses — small,
//! trusted, fixed-width integers. The standard library's default SipHash is
//! DoS-resistant but costs more than the table probe it guards; this module
//! provides an FxHash-style multiply-and-rotate hasher that is several times
//! cheaper and — unlike SipHash — deterministic across runs and platforms.
//!
//! **Not** collision-resistant against adversarial keys: use it only for
//! simulator-internal state, never for externally supplied input.
//!
//! # Examples
//!
//! ```
//! use uopcache_model::hash::FastHashMap;
//! use uopcache_model::Addr;
//!
//! let mut m: FastHashMap<Addr, u64> = FastHashMap::default();
//! m.insert(Addr::new(0x40), 3);
//! assert_eq!(m.get(&Addr::new(0x40)), Some(&3));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier with high entropy (the 64-bit golden-ratio constant).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Multiply-and-rotate hasher over 64-bit words.
#[derive(Default, Clone, Debug)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(SEED).rotate_left(26);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Hasher state for [`FastHasher`]-backed maps.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
///
/// This alias is the blessed deterministic map: the audit's `no-std-hashmap`
/// rule forbids bare `std::collections::HashMap` in simulation code and
/// points here instead.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>; // audit:allow(no-std-hashmap) — the definition site of the blessed alias

/// A `HashSet` keyed with [`FastHasher`] (see [`FastHashMap`]).
pub type FastHashSet<T> = std::collections::HashSet<T, FastBuildHasher>; // audit:allow(no-std-hashmap) — the definition site of the blessed alias

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(n: u64) -> u64 {
        let mut h = FastHasher::default();
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn deterministic_and_spreading() {
        assert_eq!(hash_of(0x40), hash_of(0x40));
        // Aligned addresses (the common key shape) must not collapse into
        // the same buckets: check the low bits differ across a small run.
        let lows: std::collections::HashSet<u64> =
            (0..64u64).map(|i| hash_of(i * 64) & 0xff).collect();
        assert!(
            lows.len() > 32,
            "low bits collapse: {} distinct",
            lows.len()
        );
    }

    #[test]
    fn byte_stream_matches_word_writes_for_round_trips() {
        // Same value hashed as a byte slice or as a word must be stable
        // (not necessarily equal to each other; each path is deterministic).
        let mut a = FastHasher::default();
        a.write(&0x1234_5678_u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write(&0x1234_5678_u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastHashMap<(u64, u32), usize> = FastHashMap::default();
        for i in 0..1_000u32 {
            m.insert((u64::from(i) * 64, 4), i as usize);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m.get(&(640, 4)), Some(&10));
        assert_eq!(m.get(&(640, 5)), None);
    }
}
