//! Prediction-window lookup traces: the input consumed by the simulator and
//! by the offline (oracle) replacement policies.

use crate::hash::FastHashMap;
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::json_struct;
use crate::pw::PwDesc;
use crate::Addr;

/// One micro-op cache lookup: a prediction window requested by the frontend.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct PwAccess {
    /// The requested window.
    pub pw: PwDesc,
    /// Whether the branch predictor mispredicted the branch that *produced*
    /// this window (the simulator charges the flush penalty and the offline
    /// policies can ignore it).
    pub mispredicted: bool,
}

impl PwAccess {
    /// Creates a correctly-predicted access.
    pub fn new(pw: PwDesc) -> Self {
        PwAccess {
            pw,
            mispredicted: false,
        }
    }
}

/// An ordered sequence of micro-op cache lookups.
///
/// This is the paper's "PW lookup sequence" (STEP 2 of the FURBYS pipeline):
/// the access stream observed with a zero-size micro-op cache, i.e. independent
/// of replacement decisions.
///
/// # Examples
///
/// ```
/// use uopcache_model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination};
///
/// let mut trace = LookupTrace::new();
/// trace.push(PwAccess::new(PwDesc::new(Addr::new(0x10), 4, 12, PwTermination::TakenBranch)));
/// trace.push(PwAccess::new(PwDesc::new(Addr::new(0x40), 8, 20, PwTermination::LineBoundary)));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.total_uops(), 12);
/// assert_eq!(trace.unique_starts(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LookupTrace {
    accesses: Vec<PwAccess>,
}

impl LookupTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        LookupTrace {
            accesses: Vec::new(),
        }
    }

    /// Creates a trace with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        LookupTrace {
            accesses: Vec::with_capacity(n),
        }
    }

    /// Appends an access.
    pub fn push(&mut self, access: PwAccess) {
        self.accesses.push(access);
    }

    /// Number of lookups.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses as a slice.
    pub fn accesses(&self) -> &[PwAccess] {
        &self.accesses
    }

    /// Iterates over the accesses in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, PwAccess> {
        self.accesses.iter()
    }

    /// Total micro-ops requested across all lookups.
    pub fn total_uops(&self) -> u64 {
        self.accesses.iter().map(|a| u64::from(a.pw.uops)).sum()
    }

    /// Number of distinct PW start addresses (the static footprint in PWs).
    pub fn unique_starts(&self) -> usize {
        let mut seen: FastHashMap<Addr, ()> = FastHashMap::default();
        for a in &self.accesses {
            seen.insert(a.pw.start, ());
        }
        seen.len()
    }

    /// Static footprint in micro-op cache entries: for every start address,
    /// the largest window observed, measured in entries.
    pub fn footprint_entries(&self, uops_per_entry: u32) -> u64 {
        let mut max_uops: FastHashMap<Addr, u32> = FastHashMap::default();
        for a in &self.accesses {
            let e = max_uops.entry(a.pw.start).or_insert(0);
            *e = (*e).max(a.pw.uops);
        }
        max_uops
            .values()
            .map(|&u| u64::from(u.div_ceil(uops_per_entry)))
            .sum()
    }

    /// Per-start-address access counts, for hotness classification (Fig. 22).
    pub fn access_counts(&self) -> FastHashMap<Addr, u64> {
        let mut counts = FastHashMap::default();
        for a in &self.accesses {
            *counts.entry(a.pw.start).or_insert(0) += 1;
        }
        counts
    }

    /// A sub-trace covering `range` (used by the windowed offline solvers).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> LookupTrace {
        LookupTrace {
            accesses: self.accesses[range].to_vec(),
        }
    }
}

impl FromIterator<PwAccess> for LookupTrace {
    fn from_iter<T: IntoIterator<Item = PwAccess>>(iter: T) -> Self {
        LookupTrace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<PwAccess> for LookupTrace {
    fn extend<T: IntoIterator<Item = PwAccess>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a LookupTrace {
    type Item = &'a PwAccess;
    type IntoIter = std::slice::Iter<'a, PwAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for LookupTrace {
    type Item = PwAccess;
    type IntoIter = std::vec::IntoIter<PwAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

json_struct!(PwAccess { pw, mispredicted });

impl ToJson for LookupTrace {
    /// Serialises transparently as the array of accesses.
    fn to_json(&self) -> Json {
        self.accesses.to_json()
    }
}

impl FromJson for LookupTrace {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Vec::<PwAccess>::from_json(j).map(|accesses| LookupTrace { accesses })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pw::PwTermination;

    fn acc(start: u64, uops: u32) -> PwAccess {
        PwAccess::new(PwDesc::new(
            Addr::new(start),
            uops,
            uops * 3,
            PwTermination::TakenBranch,
        ))
    }

    #[test]
    fn collect_and_iterate() {
        let trace: LookupTrace = [acc(0, 2), acc(64, 3)].into_iter().collect();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.iter().count(), 2);
        let owned: Vec<_> = trace.clone().into_iter().collect();
        assert_eq!(owned.len(), 2);
        let borrowed: Vec<_> = (&trace).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }

    #[test]
    fn totals_and_footprint() {
        // Same start address twice with different lengths: footprint counts
        // the larger window only.
        let trace: LookupTrace = [acc(0, 2), acc(0, 10), acc(64, 8)].into_iter().collect();
        assert_eq!(trace.total_uops(), 20);
        assert_eq!(trace.unique_starts(), 2);
        assert_eq!(trace.footprint_entries(8), 2 + 1);
    }

    #[test]
    fn access_counts_group_by_start() {
        let trace: LookupTrace = [acc(0, 2), acc(0, 4), acc(64, 8)].into_iter().collect();
        let counts = trace.access_counts();
        assert_eq!(counts[&Addr::new(0)], 2);
        assert_eq!(counts[&Addr::new(64)], 1);
    }

    #[test]
    fn slice_extracts_window() {
        let trace: LookupTrace = (0..10).map(|i| acc(i * 64, 1)).collect();
        let sub = trace.slice(3..6);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.accesses()[0].pw.start, Addr::new(3 * 64));
    }

    #[test]
    fn extend_appends() {
        let mut trace = LookupTrace::with_capacity(4);
        trace.extend([acc(0, 1), acc(64, 1)]);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }
}
