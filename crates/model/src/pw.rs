//! Prediction windows: the unit of micro-op cache lookup and insertion.

use crate::addr::{Addr, LineAddr};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::json_struct;
use std::fmt;

/// Why a prediction window ended.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum PwTermination {
    /// The PW ends at a predicted-taken branch (including calls, returns and
    /// unconditional jumps).
    TakenBranch,
    /// The PW ends at an instruction-cache line boundary.
    LineBoundary,
}

impl fmt::Display for PwTermination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PwTermination::TakenBranch => f.write_str("taken-branch"),
            PwTermination::LineBoundary => f.write_str("line-boundary"),
        }
    }
}

/// Descriptor of a prediction window: what the frontend looks up in, and the
/// decoder inserts into, the micro-op cache.
///
/// A PW is identified by its *start address*. Two PWs with the same start
/// address but different micro-op counts are *overlapping* windows: the longer
/// one runs through a sometimes-taken branch that terminates the shorter one.
/// The micro-op cache can serve the shorter window from the longer one
/// (a *partial hit* in the paper's terminology, §II-D).
///
/// # Examples
///
/// ```
/// use uopcache_model::{Addr, PwDesc, PwTermination};
///
/// let long = PwDesc::new(Addr::new(0x100), 12, 30, PwTermination::TakenBranch);
/// let short = PwDesc::new(Addr::new(0x100), 5, 12, PwTermination::TakenBranch);
/// assert!(long.covers(&short));
/// assert!(!short.covers(&long));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct PwDesc {
    /// First instruction address of the window (the lookup key).
    pub start: Addr,
    /// Number of micro-ops in the window — the PW's **cost**.
    pub uops: u32,
    /// Number of x86 instruction bytes the window spans (used for the L1i
    /// inclusion relationship).
    pub bytes: u32,
    /// Why the window terminated.
    pub term: PwTermination,
}

impl PwDesc {
    /// Creates a new descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `uops` or `bytes` is zero — an empty prediction window cannot
    /// exist.
    pub fn new(start: Addr, uops: u32, bytes: u32, term: PwTermination) -> Self {
        assert!(
            uops > 0,
            "a prediction window contains at least one micro-op"
        );
        assert!(bytes > 0, "a prediction window spans at least one byte");
        PwDesc {
            start,
            uops,
            bytes,
            term,
        }
    }

    /// The PW's **cost**: the number of micro-ops it supplies, i.e. the number
    /// of decode slots saved when it hits (paper §II-C).
    pub const fn cost(&self) -> u32 {
        self.uops
    }

    /// The PW's **size**: the number of micro-op cache entries it occupies
    /// given `uops_per_entry` micro-op slots per entry.
    ///
    /// # Panics
    ///
    /// Panics if `uops_per_entry` is zero.
    pub fn entries(&self, uops_per_entry: u32) -> u32 {
        assert!(
            uops_per_entry > 0,
            "entries must hold at least one micro-op"
        );
        self.uops.div_ceil(uops_per_entry)
    }

    /// The address one past the last byte of the window.
    pub fn end(&self) -> Addr {
        self.start.offset(u64::from(self.bytes))
    }

    /// Whether this window fully covers `other`: same start address and at
    /// least as many micro-ops. A stored PW that covers a lookup serves it via
    /// an intermediate exit point (full hit).
    pub fn covers(&self, other: &PwDesc) -> bool {
        self.start == other.start && self.uops >= other.uops
    }

    /// The i-cache lines `[start, start + bytes)` touches, for inclusion
    /// tracking.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn lines(&self, line_bytes: u64) -> impl Iterator<Item = LineAddr> + '_ {
        let first = self.start.line(line_bytes);
        let last = Addr::new(self.end().get() - 1).line(line_bytes);
        let step = line_bytes;
        (first.base().get()..=last.base().get())
            .step_by(usize::try_from(step).expect("line size fits in usize"))
            .map(move |b| Addr::new(b).line(step))
    }
}

impl fmt::Display for PwDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PW[{} +{}B, {} uops, {}]",
            self.start, self.bytes, self.uops, self.term
        )
    }
}

impl ToJson for PwTermination {
    /// Serialises as the display string (`"taken-branch"` / `"line-boundary"`).
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for PwTermination {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str() {
            Some("taken-branch") => Ok(PwTermination::TakenBranch),
            Some("line-boundary") => Ok(PwTermination::LineBoundary),
            _ => Err(JsonError(format!(
                "expected PW termination string, got {j:?}"
            ))),
        }
    }
}

json_struct!(PwDesc {
    start,
    uops,
    bytes,
    term
});

#[cfg(test)]
mod tests {
    use super::*;

    fn pw(start: u64, uops: u32, bytes: u32) -> PwDesc {
        PwDesc::new(Addr::new(start), uops, bytes, PwTermination::TakenBranch)
    }

    #[test]
    fn entries_round_up() {
        assert_eq!(pw(0, 1, 4).entries(8), 1);
        assert_eq!(pw(0, 8, 4).entries(8), 1);
        assert_eq!(pw(0, 9, 4).entries(8), 2);
        assert_eq!(pw(0, 16, 4).entries(8), 2);
        assert_eq!(pw(0, 17, 4).entries(8), 3);
    }

    #[test]
    fn cost_is_uop_count() {
        assert_eq!(pw(0, 5, 12).cost(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one micro-op")]
    fn zero_uops_rejected() {
        let _ = pw(0, 0, 4);
    }

    #[test]
    fn covers_requires_same_start_and_geq_uops() {
        assert!(pw(0x10, 6, 20).covers(&pw(0x10, 6, 20)));
        assert!(pw(0x10, 7, 20).covers(&pw(0x10, 6, 12)));
        assert!(!pw(0x10, 5, 20).covers(&pw(0x10, 6, 12)));
        assert!(!pw(0x20, 9, 20).covers(&pw(0x10, 6, 12)));
    }

    #[test]
    fn lines_span_the_window() {
        // 0x3e..0x3e+10 crosses the 0x40 line boundary.
        let w = pw(0x3e, 4, 10);
        let lines: Vec<_> = w.lines(64).map(|l| l.base().get()).collect();
        assert_eq!(lines, vec![0x00, 0x40]);
        // Fully inside one line.
        let w = pw(0x42, 4, 10);
        let lines: Vec<_> = w.lines(64).map(|l| l.base().get()).collect();
        assert_eq!(lines, vec![0x40]);
    }

    #[test]
    fn end_is_exclusive() {
        assert_eq!(pw(0x100, 3, 9).end(), Addr::new(0x109));
    }

    #[test]
    fn display_mentions_fields() {
        let s = pw(0x100, 3, 9).to_string();
        assert!(s.contains("0x100") && s.contains("3 uops"), "{s}");
    }
}
