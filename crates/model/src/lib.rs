//! # uopcache-model
//!
//! Core vocabulary types shared by every crate in the `uopcache` workspace:
//! byte/line addresses, prediction windows (PWs), hardware configuration
//! presets, and statistics containers.
//!
//! The micro-op cache operates on *prediction windows*: sequences of decoded
//! micro-ops that start at a branch target and terminate on a predicted-taken
//! branch or an instruction-cache line boundary. A PW's **cost** is its number
//! of micro-ops and its **size** is the number of micro-op cache entries it
//! occupies — the two quantities every replacement decision in the paper
//! revolves around.
//!
//! # Examples
//!
//! ```
//! use uopcache_model::{Addr, PwDesc, PwTermination};
//!
//! let pw = PwDesc::new(Addr::new(0x4000), 11, 24, PwTermination::TakenBranch);
//! assert_eq!(pw.cost(), 11);            // 11 micro-ops
//! assert_eq!(pw.entries(8), 2);         // spans two 8-uop entries
//! ```

pub mod access;
pub mod addr;
pub mod config;
pub mod hash;
pub mod json;
pub mod pw;
pub mod rng;
pub mod stats;

pub use access::{LookupTrace, PwAccess};
pub use addr::{Addr, LineAddr};
pub use config::{
    BackendConfig, BpuConfig, DecoderConfig, FrontendConfig, IcacheConfig, PerfectStructures,
    UopCacheConfig,
};
pub use pw::{PwDesc, PwTermination};
pub use stats::{CacheStats, EventCounts, SimResult, UopCacheStats};
