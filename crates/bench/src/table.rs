//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table with a title, printed by every bench target.
///
/// # Examples
///
/// ```
/// use uopcache_bench::Table;
///
/// let mut t = Table::new("Figure X", &["app", "value"]);
/// t.row(&["kafka".into(), format!("{:.2}", 1.5)]);
/// let s = t.render();
/// assert!(s.contains("kafka"));
/// assert!(s.contains("Figure X"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut first = true;
            for (cell, w) in cells.iter().zip(widths) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders as a Markdown table (for `EXPERIMENTS.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        out.push('\n');
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(out, "|{}|", vec!["---"; self.header.len()].join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("M", &["c1", "c2"]);
        t.row(&["v1".into(), "v2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| v1 | v2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("T", &["a"]);
        t.row(&["x".into(), "y".into()]);
    }
}
