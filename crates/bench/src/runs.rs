//! Memoised simulation runs shared by the experiment drivers.

use crate::apps::{trace_for, TRACE_LEN};
use crate::policies::{PolicyId, ProfileInputs};
use crate::sweep::{self, config_label};
use std::sync::Arc;
use uopcache_cache::UopCache;
use uopcache_core::Flack;
use uopcache_exec::TaskKey;
use uopcache_model::hash::FastHashMap;
use uopcache_model::{FrontendConfig, LookupTrace, SimResult, UopCacheStats};
use uopcache_offline::BeladyPolicy;
use uopcache_policies::run_trace;
use uopcache_sim::{Frontend, SimOptions};
use uopcache_trace::AppId;

/// A lab session: one frontend configuration, cached traces, profiles and
/// runs. Experiment drivers create one `Lab` and query it.
///
/// Methodology note: **online** policies run through the timed frontend
/// simulator (asynchronous insertion, L1i inclusion, switch penalties);
/// **offline** oracles (Belady, FOO, FLACK) are idealized bounds and run
/// through the synchronous placement replay, with a synchronous LRU baseline
/// for their miss-reduction figures — mirroring the paper's use of perfect
/// setups for the offline bound studies.
pub struct Lab {
    /// The frontend configuration under test.
    pub cfg: FrontendConfig,
    /// Trace length per app.
    pub len: usize,
    traces: FastHashMap<(AppId, u32), LookupTrace>,
    profiles: FastHashMap<(AppId, u32), ProfileInputs>,
    online: FastHashMap<(AppId, u32, PolicyId), SimResult>,
    sim_opts: SimOptions,
}

impl Lab {
    /// Creates a lab for `cfg` with the default trace length.
    pub fn new(cfg: FrontendConfig) -> Self {
        Self::with_len(cfg, TRACE_LEN)
    }

    /// Creates a lab with an explicit trace length (sensitivity sweeps use
    /// shorter traces to bound runtime).
    pub fn with_len(cfg: FrontendConfig, len: usize) -> Self {
        Lab {
            cfg,
            len,
            traces: FastHashMap::default(),
            profiles: FastHashMap::default(),
            online: FastHashMap::default(),
            sim_opts: SimOptions::default(),
        }
    }

    /// Enables 3C miss classification on subsequent online runs.
    pub fn classify_misses(&mut self, on: bool) {
        self.sim_opts.classify_misses = on;
    }

    /// The (cached) trace for an app and input variant.
    pub fn trace(&mut self, app: AppId, variant: u32) -> &LookupTrace {
        let len = self.len;
        self.traces
            .entry((app, variant))
            .or_insert_with(|| trace_for(app, variant, len))
    }

    /// The (cached) profile inputs for an app/variant (profiled on that same
    /// variant's trace).
    pub fn profiles(&mut self, app: AppId, variant: u32) -> &ProfileInputs {
        if !self.profiles.contains_key(&(app, variant)) {
            let trace = self.trace(app, variant).clone();
            let inputs = ProfileInputs::build(&self.cfg, &trace);
            self.profiles.insert((app, variant), inputs);
        }
        &self.profiles[&(app, variant)]
    }

    /// Pre-computes every missing `(app, policy)` online run for input
    /// variant 0 in parallel, through the experiment engine, so subsequent
    /// serial queries hit the memo. Results are bit-identical to the serial
    /// path: each task is a pure function of `(cfg, len, app, policy)`, and
    /// the memo is filled in submission order.
    ///
    /// # Panics
    ///
    /// Panics with the full list of structured task failures if any task
    /// panicked (the experiment cannot render from partial results).
    pub fn prewarm_online(&mut self, policies: &[PolicyId], apps: &[AppId]) {
        let engine = sweep::engine();
        let variant = 0u32;
        let cfg = self.cfg;
        let len = self.len;
        let label = config_label(&cfg);
        let key_for = |app: AppId, stage: &str| {
            TaskKey::new([
                label.as_str(),
                &format!("v{variant}"),
                &format!("len{len}"),
                app.name(),
                stage,
            ])
        };

        // Stage 1: prepare missing traces + profiles, one task per app.
        let missing: Vec<(TaskKey, AppId)> = apps
            .iter()
            .copied()
            .filter(|&a| !self.profiles.contains_key(&(a, variant)))
            .map(|a| (key_for(a, "prepare"), a))
            .collect();
        let prepared = engine
            .run(missing, move |_key, _seed, app| {
                let trace = trace_for(app, variant, len);
                let profiles = ProfileInputs::build(&cfg, &trace);
                (app, trace, profiles)
            })
            .expect_all("prewarm preparation");
        for (app, trace, profiles) in prepared {
            self.traces.entry((app, variant)).or_insert(trace);
            self.profiles.insert((app, variant), profiles);
        }

        // Stage 2: one task per missing (app, policy) simulation.
        let mut tasks = Vec::new();
        for &app in apps {
            let shared = Arc::new((
                self.traces[&(app, variant)].clone(),
                self.profiles[&(app, variant)].clone(),
            ));
            for &policy in policies {
                if self.online.contains_key(&(app, variant, policy)) {
                    continue;
                }
                tasks.push((
                    key_for(app, policy.name()),
                    (app, policy, Arc::clone(&shared)),
                ));
            }
        }
        let opts = self.sim_opts;
        let results = engine
            .run(tasks, move |_key, seed, (app, policy, shared)| {
                let (trace, profiles): &(LookupTrace, ProfileInputs) = &shared;
                let policy_box = policy.build(&cfg, profiles, seed);
                let result = Frontend::builder(cfg)
                    .policy(policy_box)
                    .options(opts)
                    .build()
                    .run(trace);
                (app, policy, result)
            })
            .expect_all("prewarm simulation");
        for (app, policy, result) in results {
            self.online.insert((app, variant, policy), result);
        }
    }

    /// Runs (and caches) an online policy through the timed frontend. A
    /// randomized policy ([`PolicyId::Random`]) is seeded from the same task
    /// key the parallel prewarm uses, so cold and prewarmed queries agree
    /// exactly.
    pub fn run_online(&mut self, policy: PolicyId, app: AppId, variant: u32) -> SimResult {
        let key = (app, variant, policy);
        if let Some(r) = self.online.get(&key) {
            return *r;
        }
        self.profiles(app, variant);
        let trace = self.traces[&(app, variant)].clone();
        let profiles = &self.profiles[&(app, variant)];
        let seed = TaskKey::new([
            config_label(&self.cfg).as_str(),
            &format!("v{variant}"),
            &format!("len{}", self.len),
            app.name(),
            policy.name(),
        ])
        .seed();
        let policy_box = policy.build(&self.cfg, profiles, seed);
        let mut frontend = Frontend::builder(self.cfg)
            .policy(policy_box)
            .options(self.sim_opts)
            .build();
        let result = frontend.run(&trace);
        self.online.insert(key, result);
        result
    }

    /// Miss reduction of an online policy vs. the online LRU baseline, in
    /// percent.
    pub fn online_miss_reduction(&mut self, policy: PolicyId, app: AppId) -> f64 {
        let lru = self.run_online(PolicyId::Lru, app, 0);
        let r = self.run_online(policy, app, 0);
        r.uopc.miss_reduction_vs(&lru.uopc)
    }

    /// Runs an offline FLACK variant (synchronous replay) on an app.
    pub fn run_offline(&mut self, variant: Flack, app: AppId) -> UopCacheStats {
        let trace = self.trace(app, 0).clone();
        variant.run(&trace, &self.cfg.uop_cache).stats
    }

    /// Runs Belady (synchronous) on an app.
    pub fn run_belady(&mut self, app: AppId) -> UopCacheStats {
        let trace = self.trace(app, 0).clone();
        let mut cache = UopCache::new(
            self.cfg.uop_cache,
            Box::new(BeladyPolicy::from_trace(&trace)),
        );
        run_trace(&mut cache, &trace)
    }

    /// Synchronous LRU baseline for the offline-bound comparisons.
    pub fn run_sync_lru(&mut self, app: AppId) -> UopCacheStats {
        let trace = self.trace(app, 0).clone();
        let mut cache = UopCache::new(
            self.cfg.uop_cache,
            Box::new(uopcache_cache::LruPolicy::new()),
        );
        run_trace(&mut cache, &trace)
    }

    /// Miss reduction of an offline variant vs. the synchronous LRU baseline.
    pub fn offline_miss_reduction(&mut self, variant: Flack, app: AppId) -> f64 {
        let lru = self.run_sync_lru(app);
        let s = self.run_offline(variant, app);
        s.miss_reduction_vs(&lru)
    }
}

/// Arithmetic mean helper for per-app series.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_are_reused() {
        let mut lab = Lab::with_len(FrontendConfig::zen3(), 2_000);
        let a = lab.run_online(PolicyId::Lru, AppId::Kafka, 0);
        let b = lab.run_online(PolicyId::Lru, AppId::Kafka, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
