//! Memoised simulation runs shared by the experiment drivers.

use crate::apps::{trace_for, TRACE_LEN};
use crate::policies::{make_policy, ProfileInputs};
use std::collections::HashMap;
use uopcache_cache::UopCache;
use uopcache_core::Flack;
use uopcache_model::{FrontendConfig, LookupTrace, SimResult, UopCacheStats};
use uopcache_offline::BeladyPolicy;
use uopcache_policies::run_trace;
use uopcache_sim::{Frontend, SimOptions};
use uopcache_trace::AppId;

/// A lab session: one frontend configuration, cached traces, profiles and
/// runs. Experiment drivers create one `Lab` and query it.
///
/// Methodology note: **online** policies run through the timed frontend
/// simulator (asynchronous insertion, L1i inclusion, switch penalties);
/// **offline** oracles (Belady, FOO, FLACK) are idealized bounds and run
/// through the synchronous placement replay, with a synchronous LRU baseline
/// for their miss-reduction figures — mirroring the paper's use of perfect
/// setups for the offline bound studies.
pub struct Lab {
    /// The frontend configuration under test.
    pub cfg: FrontendConfig,
    /// Trace length per app.
    pub len: usize,
    traces: HashMap<(AppId, u32), LookupTrace>,
    profiles: HashMap<(AppId, u32), ProfileInputs>,
    online: HashMap<(AppId, u32, String), SimResult>,
    sim_opts: SimOptions,
}

impl Lab {
    /// Creates a lab for `cfg` with the default trace length.
    pub fn new(cfg: FrontendConfig) -> Self {
        Self::with_len(cfg, TRACE_LEN)
    }

    /// Creates a lab with an explicit trace length (sensitivity sweeps use
    /// shorter traces to bound runtime).
    pub fn with_len(cfg: FrontendConfig, len: usize) -> Self {
        Lab {
            cfg,
            len,
            traces: HashMap::new(),
            profiles: HashMap::new(),
            online: HashMap::new(),
            sim_opts: SimOptions::default(),
        }
    }

    /// Enables 3C miss classification on subsequent online runs.
    pub fn classify_misses(&mut self, on: bool) {
        self.sim_opts.classify_misses = on;
    }

    /// The (cached) trace for an app and input variant.
    pub fn trace(&mut self, app: AppId, variant: u32) -> &LookupTrace {
        let len = self.len;
        self.traces
            .entry((app, variant))
            .or_insert_with(|| trace_for(app, variant, len))
    }

    /// The (cached) profile inputs for an app/variant (profiled on that same
    /// variant's trace).
    pub fn profiles(&mut self, app: AppId, variant: u32) -> &ProfileInputs {
        if !self.profiles.contains_key(&(app, variant)) {
            let trace = self.trace(app, variant).clone();
            let inputs = ProfileInputs::build(&self.cfg, &trace);
            self.profiles.insert((app, variant), inputs);
        }
        &self.profiles[&(app, variant)]
    }

    /// Runs (and caches) an online policy through the timed frontend.
    pub fn run_online(&mut self, policy: &str, app: AppId, variant: u32) -> SimResult {
        let key = (app, variant, policy.to_string());
        if let Some(r) = self.online.get(&key) {
            return *r;
        }
        self.profiles(app, variant);
        let trace = self.traces[&(app, variant)].clone();
        let profiles = &self.profiles[&(app, variant)];
        let policy_box = make_policy(policy, &self.cfg, profiles);
        let mut frontend = Frontend::with_options(self.cfg, policy_box, self.sim_opts);
        let result = frontend.run(&trace);
        self.online.insert(key, result);
        result
    }

    /// Miss reduction of an online policy vs. the online LRU baseline, in
    /// percent.
    pub fn online_miss_reduction(&mut self, policy: &str, app: AppId) -> f64 {
        let lru = self.run_online("LRU", app, 0);
        let r = self.run_online(policy, app, 0);
        r.uopc.miss_reduction_vs(&lru.uopc)
    }

    /// Runs an offline FLACK variant (synchronous replay) on an app.
    pub fn run_offline(&mut self, variant: Flack, app: AppId) -> UopCacheStats {
        let trace = self.trace(app, 0).clone();
        variant.run(&trace, &self.cfg.uop_cache).stats
    }

    /// Runs Belady (synchronous) on an app.
    pub fn run_belady(&mut self, app: AppId) -> UopCacheStats {
        let trace = self.trace(app, 0).clone();
        let mut cache = UopCache::new(
            self.cfg.uop_cache,
            Box::new(BeladyPolicy::from_trace(&trace)),
        );
        run_trace(&mut cache, &trace)
    }

    /// Synchronous LRU baseline for the offline-bound comparisons.
    pub fn run_sync_lru(&mut self, app: AppId) -> UopCacheStats {
        let trace = self.trace(app, 0).clone();
        let mut cache = UopCache::new(
            self.cfg.uop_cache,
            Box::new(uopcache_cache::LruPolicy::new()),
        );
        run_trace(&mut cache, &trace)
    }

    /// Miss reduction of an offline variant vs. the synchronous LRU baseline.
    pub fn offline_miss_reduction(&mut self, variant: Flack, app: AppId) -> f64 {
        let lru = self.run_sync_lru(app);
        let s = self.run_offline(variant, app);
        s.miss_reduction_vs(&lru)
    }
}

/// Arithmetic mean helper for per-app series.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_are_reused() {
        let mut lab = Lab::with_len(FrontendConfig::zen3(), 2_000);
        let a = lab.run_online("LRU", AppId::Kafka, 0);
        let b = lab.run_online("LRU", AppId::Kafka, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
