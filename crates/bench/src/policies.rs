//! Name-indexed policy construction for the experiment drivers.

use std::collections::HashMap;
use uopcache_cache::{LruPolicy, PwReplacementPolicy};
use uopcache_core::{FurbysPipeline, Profile};
use uopcache_model::{Addr, FrontendConfig, LookupTrace};
use uopcache_policies::{
    profile::lru_pw_hit_rates, GhrpPolicy, MockingjayPolicy, RandomPolicy, ShipPlusPlusPolicy,
    SrripPolicy, ThermometerPolicy,
};

/// The online policies compared throughout the evaluation, in figure order
/// (LRU is the baseline and listed first).
pub const ONLINE_POLICIES: [&str; 7] = [
    "LRU",
    "SRRIP",
    "SHiP++",
    "Mockingjay",
    "GHRP",
    "Thermometer",
    "FURBYS",
];

/// Profile inputs needed by the profile-guided policies.
#[derive(Clone)]
pub struct ProfileInputs {
    /// Per-start PW-granularity LRU hit rates (Thermometer's profile — a
    /// straight BTB-style port, blind to micro-op costs).
    pub lru_rates: HashMap<Addr, f64>,
    /// The FURBYS profile (FLACK-derived hints).
    pub furbys: Profile,
}

impl ProfileInputs {
    /// Profiles `train` for all profile-guided policies under `cfg`.
    pub fn build(cfg: &FrontendConfig, train: &LookupTrace) -> Self {
        Self::build_with_pipeline(&FurbysPipeline::new(*cfg), train)
    }

    /// As [`ProfileInputs::build`] with an explicit (possibly customised)
    /// pipeline.
    pub fn build_with_pipeline(pipeline: &FurbysPipeline, train: &LookupTrace) -> Self {
        ProfileInputs {
            lru_rates: lru_pw_hit_rates(train, pipeline.frontend_cfg.uop_cache),
            furbys: pipeline.profile(train),
        }
    }
}

/// Instantiates an online policy by name. None of these policies consume a
/// seed (audited: the experiment drivers share no RNG state across
/// iterations — every listed policy is deterministic by construction).
/// Randomized policies go through [`make_policy_seeded`].
///
/// # Panics
///
/// Panics on an unknown name.
pub fn make_policy(
    name: &str,
    cfg: &FrontendConfig,
    profiles: &ProfileInputs,
) -> Box<dyn PwReplacementPolicy> {
    match name {
        "LRU" => Box::new(LruPolicy::new()),
        "SRRIP" => Box::new(SrripPolicy::new()),
        "SHiP++" => Box::new(ShipPlusPlusPolicy::new()),
        "Mockingjay" => Box::new(MockingjayPolicy::new()),
        "GHRP" => Box::new(GhrpPolicy::new()),
        "Thermometer" => Box::new(ThermometerPolicy::from_hit_rates(&profiles.lru_rates)),
        "FURBYS" => {
            let pipeline = FurbysPipeline::new(*cfg);
            Box::new(pipeline.policy(&profiles.furbys))
        }
        other => panic!("unknown policy {other:?}"),
    }
}

/// Instantiates a policy by name with a per-task seed. Superset of
/// [`make_policy`]: additionally accepts `"Random"`, whose eviction RNG is
/// seeded from the task key so parallel sweeps stay reproducible (the seed
/// is a pure function of the task, never of scheduling).
///
/// # Panics
///
/// Panics on an unknown name.
pub fn make_policy_seeded(
    name: &str,
    cfg: &FrontendConfig,
    profiles: &ProfileInputs,
    seed: u64,
) -> Box<dyn PwReplacementPolicy> {
    match name {
        "Random" => Box::new(RandomPolicy::new(seed)),
        known => make_policy(known, cfg, profiles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::trace_for;
    use uopcache_trace::AppId;

    #[test]
    fn factory_builds_every_listed_policy() {
        let cfg = FrontendConfig::zen3();
        let train = trace_for(AppId::Postgres, 0, 3_000);
        let profiles = ProfileInputs::build(&cfg, &train);
        for name in ONLINE_POLICIES {
            let p = make_policy(name, &cfg, &profiles);
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn seeded_factory_adds_random_and_delegates() {
        let cfg = FrontendConfig::zen3();
        let train = trace_for(AppId::Postgres, 0, 3_000);
        let profiles = ProfileInputs::build(&cfg, &train);
        assert_eq!(
            make_policy_seeded("Random", &cfg, &profiles, 7).name(),
            "Random"
        );
        assert_eq!(make_policy_seeded("LRU", &cfg, &profiles, 7).name(), "LRU");
    }
}
