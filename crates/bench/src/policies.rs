//! Name-indexed policy construction for the experiment drivers.

use std::collections::HashMap;
use uopcache_cache::{LruPolicy, PwReplacementPolicy};
use uopcache_core::{FurbysPipeline, Profile};
use uopcache_model::{Addr, FrontendConfig, LookupTrace};
use uopcache_policies::{
    profile::lru_pw_hit_rates, GhrpPolicy, MockingjayPolicy, ShipPlusPlusPolicy, SrripPolicy,
    ThermometerPolicy,
};

/// The online policies compared throughout the evaluation, in figure order
/// (LRU is the baseline and listed first).
pub const ONLINE_POLICIES: [&str; 7] = [
    "LRU",
    "SRRIP",
    "SHiP++",
    "Mockingjay",
    "GHRP",
    "Thermometer",
    "FURBYS",
];

/// Profile inputs needed by the profile-guided policies.
pub struct ProfileInputs {
    /// Per-start PW-granularity LRU hit rates (Thermometer's profile — a
    /// straight BTB-style port, blind to micro-op costs).
    pub lru_rates: HashMap<Addr, f64>,
    /// The FURBYS profile (FLACK-derived hints).
    pub furbys: Profile,
}

impl ProfileInputs {
    /// Profiles `train` for all profile-guided policies under `cfg`.
    pub fn build(cfg: &FrontendConfig, train: &LookupTrace) -> Self {
        Self::build_with_pipeline(&FurbysPipeline::new(*cfg), train)
    }

    /// As [`ProfileInputs::build`] with an explicit (possibly customised)
    /// pipeline.
    pub fn build_with_pipeline(pipeline: &FurbysPipeline, train: &LookupTrace) -> Self {
        ProfileInputs {
            lru_rates: lru_pw_hit_rates(train, pipeline.frontend_cfg.uop_cache),
            furbys: pipeline.profile(train),
        }
    }
}

/// Instantiates an online policy by name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn make_policy(
    name: &str,
    cfg: &FrontendConfig,
    profiles: &ProfileInputs,
) -> Box<dyn PwReplacementPolicy> {
    match name {
        "LRU" => Box::new(LruPolicy::new()),
        "SRRIP" => Box::new(SrripPolicy::new()),
        "SHiP++" => Box::new(ShipPlusPlusPolicy::new()),
        "Mockingjay" => Box::new(MockingjayPolicy::new()),
        "GHRP" => Box::new(GhrpPolicy::new()),
        "Thermometer" => Box::new(ThermometerPolicy::from_hit_rates(&profiles.lru_rates)),
        "FURBYS" => {
            let pipeline = FurbysPipeline::new(*cfg);
            Box::new(pipeline.policy(&profiles.furbys))
        }
        other => panic!("unknown policy {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::trace_for;
    use uopcache_trace::AppId;

    #[test]
    fn factory_builds_every_listed_policy() {
        let cfg = FrontendConfig::zen3();
        let train = trace_for(AppId::Postgres, 0, 3_000);
        let profiles = ProfileInputs::build(&cfg, &train);
        for name in ONLINE_POLICIES {
            let p = make_policy(name, &cfg, &profiles);
            assert_eq!(p.name(), name);
        }
    }
}
