//! Typed policy identities and construction for the experiment drivers.
//!
//! [`PolicyId`] replaces the old stringly `make_policy`/`make_policy_seeded`
//! pair: every policy the evaluation compares is an enum variant, so
//! construction is one exhaustive `match`, CLI round-tripping goes through
//! `FromStr`/`Display`, and the audit `unique-policy-names` rule keys off a
//! single authoritative list.

use std::str::FromStr;
use uopcache_cache::{LruPolicy, PwReplacementPolicy};
use uopcache_core::{FurbysPipeline, Profile};
use uopcache_model::hash::FastHashMap;
use uopcache_model::{Addr, FrontendConfig, LookupTrace};
use uopcache_policies::{
    profile::lru_pw_hit_rates, ArcPolicy, CarPolicy, ClockPolicy, FifoPolicy, GhrpPolicy,
    LfuPolicy, MockingjayPolicy, MruPolicy, RandomPolicy, SetDuelingPolicy, ShipPlusPlusPolicy,
    SlruPolicy, SrripPolicy, ThermometerPolicy, TwoQPolicy,
};

/// The identity of one replacement policy under evaluation.
///
/// `Display` renders the canonical figure label (`"SHiP++"`, `"FURBYS"`);
/// `FromStr` accepts those labels case-insensitively, so CLI flags
/// round-trip through the enum.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug, PartialOrd, Ord)]
pub enum PolicyId {
    /// Least-recently-used (the baseline).
    Lru,
    /// Static re-reference interval prediction.
    Srrip,
    /// Signature-based hit prediction (SHiP++).
    ShipPlusPlus,
    /// Mockingjay's estimated-time-of-arrival replacement.
    Mockingjay,
    /// Global-history reuse prediction.
    Ghrp,
    /// Thermometer's profile-guided BTB-style port.
    Thermometer,
    /// The paper's profile-guided policy (FLACK-derived hints).
    Furbys,
    /// Uniform-random victim selection (seeded per task).
    Random,
    /// First-in-first-out (insertion-order) victim selection.
    Fifo,
    /// Most-recently-used victim selection (anti-recency extreme).
    Mru,
    /// In-cache least-frequently-used (hit-count) victim selection.
    Lfu,
    /// Second-chance clock sweep over per-way reference bits.
    Clock,
    /// Segmented LRU: probation/protected segments within each set.
    Slru,
    /// 2Q: A1in/Am queues with an A1out ghost list.
    TwoQ,
    /// Adaptive replacement cache: T1/T2 lists balanced by B1/B2 ghost hits.
    Arc,
    /// Clock with adaptive replacement: CLOCK sweeps over ARC's lists.
    Car,
    /// Set-dueling dynamic selection over the zoo candidates.
    SetDueling,
}

impl PolicyId {
    /// The online policies compared throughout the evaluation, in figure
    /// order (LRU is the baseline and listed first).
    pub const ONLINE: [PolicyId; 7] = [
        PolicyId::Lru,
        PolicyId::Srrip,
        PolicyId::ShipPlusPlus,
        PolicyId::Mockingjay,
        PolicyId::Ghrp,
        PolicyId::Thermometer,
        PolicyId::Furbys,
    ];

    /// The classic zoo the set-dueling work selects over, plus the dueling
    /// meta-policy itself (listed last).
    pub const ZOO: [PolicyId; 9] = [
        PolicyId::Fifo,
        PolicyId::Mru,
        PolicyId::Lfu,
        PolicyId::Clock,
        PolicyId::Slru,
        PolicyId::TwoQ,
        PolicyId::Arc,
        PolicyId::Car,
        PolicyId::SetDueling,
    ];

    /// Every constructible policy: [`ONLINE`](Self::ONLINE), the seeded
    /// `Random` control, then the [`ZOO`](Self::ZOO).
    pub const ALL: [PolicyId; 17] = [
        PolicyId::Lru,
        PolicyId::Srrip,
        PolicyId::ShipPlusPlus,
        PolicyId::Mockingjay,
        PolicyId::Ghrp,
        PolicyId::Thermometer,
        PolicyId::Furbys,
        PolicyId::Random,
        PolicyId::Fifo,
        PolicyId::Mru,
        PolicyId::Lfu,
        PolicyId::Clock,
        PolicyId::Slru,
        PolicyId::TwoQ,
        PolicyId::Arc,
        PolicyId::Car,
        PolicyId::SetDueling,
    ];

    /// The canonical label, exactly as the figures and JSON reports spell
    /// it. Matches `PwReplacementPolicy::name` of the constructed policy.
    pub fn name(self) -> &'static str {
        match self {
            PolicyId::Lru => "LRU",
            PolicyId::Srrip => "SRRIP",
            PolicyId::ShipPlusPlus => "SHiP++",
            PolicyId::Mockingjay => "Mockingjay",
            PolicyId::Ghrp => "GHRP",
            PolicyId::Thermometer => "Thermometer",
            PolicyId::Furbys => "FURBYS",
            PolicyId::Random => "Random",
            PolicyId::Fifo => "FIFO",
            PolicyId::Mru => "MRU",
            PolicyId::Lfu => "LFU",
            PolicyId::Clock => "CLOCK",
            PolicyId::Slru => "SLRU",
            PolicyId::TwoQ => "2Q",
            PolicyId::Arc => "ARC",
            PolicyId::Car => "CAR",
            PolicyId::SetDueling => "set-dueling",
        }
    }

    /// Whether the policy consumes the per-task seed (only `Random` does;
    /// every other listed policy is deterministic by construction).
    pub fn is_seeded(self) -> bool {
        matches!(self, PolicyId::Random)
    }

    /// Instantiates the policy. `seed` is the task-key-derived seed and is
    /// only consumed by [`is_seeded`](Self::is_seeded) policies, so parallel
    /// sweeps stay reproducible (the seed is a pure function of the task,
    /// never of scheduling).
    pub fn build(
        self,
        cfg: &FrontendConfig,
        profiles: &ProfileInputs,
        seed: u64,
    ) -> Box<dyn PwReplacementPolicy> {
        match self {
            PolicyId::Lru => Box::new(LruPolicy::new()),
            PolicyId::Srrip => Box::new(SrripPolicy::new()),
            PolicyId::ShipPlusPlus => Box::new(ShipPlusPlusPolicy::new()),
            PolicyId::Mockingjay => Box::new(MockingjayPolicy::new()),
            PolicyId::Ghrp => Box::new(GhrpPolicy::new()),
            PolicyId::Thermometer => {
                Box::new(ThermometerPolicy::from_hit_rates(&profiles.lru_rates))
            }
            PolicyId::Furbys => {
                let pipeline = FurbysPipeline::new(*cfg);
                Box::new(pipeline.policy(&profiles.furbys))
            }
            PolicyId::Random => Box::new(RandomPolicy::new(seed)),
            PolicyId::Fifo => Box::new(FifoPolicy::new()),
            PolicyId::Mru => Box::new(MruPolicy::new()),
            PolicyId::Lfu => Box::new(LfuPolicy::new()),
            PolicyId::Clock => Box::new(ClockPolicy::new()),
            PolicyId::Slru => Box::new(SlruPolicy::new()),
            PolicyId::TwoQ => Box::new(TwoQPolicy::new()),
            PolicyId::Arc => Box::new(ArcPolicy::new()),
            PolicyId::Car => Box::new(CarPolicy::new()),
            PolicyId::SetDueling => Box::new(SetDuelingPolicy::default_zoo()),
        }
    }
}

impl std::fmt::Display for PolicyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PolicyId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyId::ALL
            .into_iter()
            .find(|id| id.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown policy {s:?}"))
    }
}

/// A fixed roster of policies, for call sites that resolve user input
/// against a specific subset (the CLI's `simulate` accepts any policy, its
/// `compare` only the online ones).
#[derive(Clone, Debug)]
pub struct PolicyRegistry {
    ids: Vec<PolicyId>,
}

impl PolicyRegistry {
    /// The online-policy roster ([`PolicyId::ONLINE`]).
    pub fn online() -> Self {
        PolicyRegistry {
            ids: PolicyId::ONLINE.to_vec(),
        }
    }

    /// Every constructible policy ([`PolicyId::ALL`]).
    pub fn all() -> Self {
        PolicyRegistry {
            ids: PolicyId::ALL.to_vec(),
        }
    }

    /// The roster, in figure order.
    pub fn ids(&self) -> &[PolicyId] {
        &self.ids
    }

    /// Resolves a user-supplied name (case-insensitive) against the roster.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names when `s` parses to no
    /// policy or to one outside the roster.
    pub fn resolve(&self, s: &str) -> Result<PolicyId, String> {
        let listed = || {
            self.ids
                .iter()
                .map(|id| id.name())
                .collect::<Vec<_>>()
                .join(", ")
        };
        match s.parse::<PolicyId>() {
            Ok(id) if self.ids.contains(&id) => Ok(id),
            Ok(id) => Err(format!(
                "policy {} is not in this roster (expected one of: {})",
                id.name(),
                listed()
            )),
            Err(_) => Err(format!(
                "unknown policy {s:?} (expected one of: {})",
                listed()
            )),
        }
    }
}

/// Profile inputs needed by the profile-guided policies.
#[derive(Clone)]
pub struct ProfileInputs {
    /// Per-start PW-granularity LRU hit rates (Thermometer's profile — a
    /// straight BTB-style port, blind to micro-op costs).
    pub lru_rates: FastHashMap<Addr, f64>,
    /// The FURBYS profile (FLACK-derived hints).
    pub furbys: Profile,
}

impl ProfileInputs {
    /// Profiles `train` for all profile-guided policies under `cfg`.
    pub fn build(cfg: &FrontendConfig, train: &LookupTrace) -> Self {
        Self::build_with_pipeline(&FurbysPipeline::new(*cfg), train)
    }

    /// As [`ProfileInputs::build`] with an explicit (possibly customised)
    /// pipeline.
    pub fn build_with_pipeline(pipeline: &FurbysPipeline, train: &LookupTrace) -> Self {
        ProfileInputs {
            lru_rates: lru_pw_hit_rates(train, pipeline.frontend_cfg.uop_cache),
            furbys: pipeline.profile(train),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::trace_for;
    use uopcache_trace::AppId;

    #[test]
    fn every_listed_policy_builds_under_its_own_name() {
        let cfg = FrontendConfig::zen3();
        let train = trace_for(AppId::Postgres, 0, 3_000);
        let profiles = ProfileInputs::build(&cfg, &train);
        for id in PolicyId::ALL {
            let p = id.build(&cfg, &profiles, 7);
            assert_eq!(p.name(), id.name());
        }
    }

    #[test]
    fn names_round_trip_case_insensitively() {
        for id in PolicyId::ALL {
            assert_eq!(id.name().parse::<PolicyId>(), Ok(id));
            assert_eq!(id.name().to_lowercase().parse::<PolicyId>(), Ok(id));
            assert_eq!(id.name().to_uppercase().parse::<PolicyId>(), Ok(id));
            assert_eq!(id.to_string(), id.name());
        }
        let err = "Belady".parse::<PolicyId>().expect_err("offline-only");
        assert!(err.contains("unknown policy"), "{err}");
    }

    #[test]
    fn registry_resolves_only_its_roster() {
        let online = PolicyRegistry::online();
        assert_eq!(online.resolve("furbys"), Ok(PolicyId::Furbys));
        let err = online.resolve("random").expect_err("seeded control");
        assert!(err.contains("not in this roster"), "{err}");
        assert_eq!(
            PolicyRegistry::all().resolve("RANDOM"),
            Ok(PolicyId::Random)
        );
        let err = PolicyRegistry::all().resolve("nope").expect_err("unknown");
        assert!(err.contains("expected one of"), "{err}");
    }

    #[test]
    fn online_roster_is_all_minus_random_and_zoo() {
        assert_eq!(
            PolicyId::ONLINE.len() + 1 + PolicyId::ZOO.len(),
            PolicyId::ALL.len()
        );
        assert!(!PolicyId::ONLINE.contains(&PolicyId::Random));
        for id in PolicyId::ONLINE {
            assert!(PolicyId::ALL.contains(&id));
            assert!(!PolicyId::ZOO.contains(&id));
            assert!(!id.is_seeded());
        }
        for id in PolicyId::ZOO {
            assert!(PolicyId::ALL.contains(&id));
            assert!(!id.is_seeded());
        }
        assert!(PolicyId::Random.is_seeded());
    }

    #[test]
    fn zoo_names_are_unique_and_cli_safe() {
        let mut names: Vec<&str> = PolicyId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PolicyId::ALL.len(), "duplicate policy label");
        // The dueling meta-policy resolves under its canonical CLI spelling.
        assert_eq!("set-dueling".parse::<PolicyId>(), Ok(PolicyId::SetDueling));
        assert_eq!("Set-Dueling".parse::<PolicyId>(), Ok(PolicyId::SetDueling));
    }
}
