//! The standard application set and trace construction.

use uopcache_model::LookupTrace;
use uopcache_trace::{build_trace, build_trace_scaled, AppId, InputVariant};

/// Default trace length per application. Large enough that the cache warms
/// up and phase behaviour is exercised (several phase rotations), small
/// enough that the full 11-app × 10-policy evaluation runs in minutes.
pub const TRACE_LEN: usize = 120_000;

/// The 11 applications in the paper's presentation order.
pub fn standard_apps() -> [AppId; 11] {
    AppId::ALL
}

/// Builds the evaluation trace for an application and input variant.
/// Deterministic; callers cache as needed.
pub fn trace_for(app: AppId, variant: u32, len: usize) -> LookupTrace {
    build_trace(app, InputVariant::new(variant), len)
}

/// As [`trace_for`], stretched to `len × scale` accesses by the generator's
/// epoch mechanism (phase-structured repetition with drift). `scale == 1`
/// is byte-identical to [`trace_for`].
pub fn trace_for_scaled(app: AppId, variant: u32, len: usize, scale: u64) -> LookupTrace {
    build_trace_scaled(app, InputVariant::new(variant), len, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_is_table_ii() {
        assert_eq!(standard_apps().len(), 11);
    }

    #[test]
    fn traces_are_deterministic() {
        let a = trace_for(AppId::Kafka, 0, 1000);
        let b = trace_for(AppId::Kafka, 0, 1000);
        assert_eq!(a, b);
    }
}
