//! Discussion-section studies: the non-inclusive micro-op cache (§VII) and
//! the FURBYS hardware overhead arithmetic (§VI).

use crate::experiments::{apps_for, len_for};
use crate::policies::PolicyId;
use crate::runs::{mean, Lab};
use crate::table::Table;
use uopcache_model::FrontendConfig;

/// §VII: a non-inclusive micro-op cache decouples it from L1i evictions and
/// effectively grows the instruction-supply capacity; the paper reports
/// FURBYS's IPC gain rising from ~0.48% (inclusive) to ~2.5% (non-inclusive).
pub fn sec7_noninclusive(quick: bool) -> Vec<Table> {
    let inclusive_cfg = FrontendConfig::zen3();
    let mut noninclusive_cfg = inclusive_cfg;
    noninclusive_cfg.uop_cache.inclusive_with_l1i = false;

    let mut t = Table::new(
        "SVII: FURBYS IPC speedup over LRU, inclusive vs non-inclusive uop cache",
        &["app", "inclusive", "non-inclusive"],
    );
    let mut inc_all = Vec::new();
    let mut non_all = Vec::new();
    let mut lab_inc = Lab::with_len(inclusive_cfg, len_for(quick));
    let mut lab_non = Lab::with_len(noninclusive_cfg, len_for(quick));
    let apps = apps_for(quick);
    lab_inc.prewarm_online(&[PolicyId::Lru, PolicyId::Furbys], &apps);
    lab_non.prewarm_online(&[PolicyId::Lru, PolicyId::Furbys], &apps);
    for app in apps {
        let lru_i = lab_inc.run_online(PolicyId::Lru, app, 0);
        let fur_i = lab_inc.run_online(PolicyId::Furbys, app, 0);
        let lru_n = lab_non.run_online(PolicyId::Lru, app, 0);
        let fur_n = lab_non.run_online(PolicyId::Furbys, app, 0);
        let inc = fur_i.ipc_speedup_vs(&lru_i);
        let non = fur_n.ipc_speedup_vs(&lru_n);
        inc_all.push(inc);
        non_all.push(non);
        t.row(&[
            app.name().to_string(),
            format!("{inc:.3}%"),
            format!("{non:.3}%"),
        ]);
    }
    t.row(&[
        "MEAN".into(),
        format!("{:.3}%", mean(&inc_all)),
        format!("{:.3}%", mean(&non_all)),
    ]);
    let mut t2 = Table::new("SVII summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "non-inclusive >= inclusive IPC gain".into(),
        "yes (2.5% vs 0.48%)".into(),
        format!("{}", mean(&non_all) >= mean(&inc_all)),
    ]);
    vec![t, t2]
}

/// §VI "Hardware and runtime overhead": FURBYS's metadata per set vs the set
/// payload — the paper computes 46 bits over 4608 bits = 1%.
pub fn sec6_hw_overhead(_quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3().uop_cache;
    let weight_bits = 3u32;
    let srrip_bits = 2u32;
    let detector_slots = 2u32;
    let way_bits = 3u32; // log2(8 ways)

    let per_set_overhead = (weight_bits + srrip_bits) * cfg.ways + detector_slots * way_bits;
    // Payload per set: 56 bits/uop x 8 uops/entry + 32-bit immediates x 4
    // per entry, per way (the paper's footnote 3).
    let uop_bits = 56u32;
    let imm_bits = 32u32;
    let imms_per_entry = 4u32;
    let per_set_payload = (uop_bits * cfg.uops_per_entry + imm_bits * imms_per_entry) * cfg.ways;

    let mut t = Table::new(
        "SVI: FURBYS hardware overhead per micro-op cache set",
        &["quantity", "paper", "measured"],
    );
    t.row(&[
        "metadata bits per set".into(),
        "46".into(),
        format!("{per_set_overhead}"),
    ]);
    t.row(&[
        "payload bits per set".into(),
        "4608".into(),
        format!("{per_set_payload}"),
    ]);
    t.row(&[
        "overhead".into(),
        "1%".into(),
        format!(
            "{:.2}%",
            f64::from(per_set_overhead) / f64::from(per_set_payload) * 100.0
        ),
    ]);
    vec![t]
}

/// Extension (§VII future work): phase-aware FURBYS — per-segment weight
/// tables elected at runtime — versus standard FURBYS, targeting globally
/// cold but locally hot PWs.
pub fn ext1_phased_furbys(quick: bool) -> Vec<Table> {
    use uopcache_core::{FurbysPipeline, PhasedFurbysPolicy, PhasedProfile};
    use uopcache_sim::Frontend;

    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let segments = 4;
    let mut t = Table::new(
        "EXT-1: phase-aware FURBYS vs standard FURBYS (miss reduction over LRU)",
        &["app", "FURBYS", "FURBYS-phased", "delta"],
    );
    let mut flat_all = Vec::new();
    let mut phased_all = Vec::new();
    let apps = apps_for(quick);
    // One engine task per app: flat and phase-aware FURBYS on that trace.
    let tasks: Vec<_> = apps
        .iter()
        .map(|&app| (crate::sweep::app_key("ext1-phased", app), app))
        .collect();
    let per_app = crate::sweep::par_map("ext1 phased", tasks, move |_key, _seed, app| {
        let trace = crate::apps::trace_for(app, 0, len);
        let lru = Frontend::builder(cfg)
            .policy(uopcache_cache::LruPolicy::new())
            .build()
            .run(&trace);
        let pipeline = FurbysPipeline::new(cfg);
        let profile = pipeline.profile(&trace);
        let flat = pipeline.deploy_and_run(&profile, &trace);
        let obs = pipeline.oracle_observations(&trace);
        let phased_profile =
            PhasedProfile::from_observations(&obs, &cfg.uop_cache, &pipeline.weight_cfg, segments);
        let phased = Frontend::builder(cfg)
            .policy(PhasedFurbysPolicy::new(phased_profile))
            .build()
            .run(&trace);
        (
            flat.uopc.miss_reduction_vs(&lru.uopc),
            phased.uopc.miss_reduction_vs(&lru.uopc),
        )
    });
    for (&app, (f, p)) in apps.iter().zip(per_app) {
        flat_all.push(f);
        phased_all.push(p);
        t.row(&[
            app.name().to_string(),
            format!("{f:.2}"),
            format!("{p:.2}"),
            format!("{:+.2}", p - f),
        ]);
    }
    t.row(&[
        "MEAN".into(),
        format!("{:.2}", mean(&flat_all)),
        format!("{:.2}", mean(&phased_all)),
        format!("{:+.2}", mean(&phased_all) - mean(&flat_all)),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ext1_produces_both_columns() {
        let t = &ext1_phased_furbys(true)[0];
        assert!(t.render().contains("FURBYS-phased"));
    }

    #[test]
    fn overhead_matches_paper_arithmetic() {
        let t = &sec6_hw_overhead(true)[0];
        let s = t.render();
        assert!(s.contains("46"), "{s}");
        assert!(s.contains("4608"), "{s}");
        assert!(s.contains("1.00%"), "{s}");
    }
}
