//! Sensitivity studies: Figs. 16, 19 and 20.

use crate::apps::trace_for;
use crate::experiments::{apps_for, len_for};
use crate::policies::PolicyId;
use crate::runs::{mean, Lab};
use crate::sweep::{app_key, par_map};
use crate::table::Table;
use std::sync::Arc;
use uopcache_core::FurbysPipeline;
use uopcache_exec::TaskKey;
use uopcache_model::FrontendConfig;
use uopcache_sim::Frontend;

/// Fig. 16: FURBYS vs the best existing policies across micro-op cache sizes
/// and associativities (paper: FURBYS wins everywhere; the gap shrinks as
/// capacity misses vanish).
pub fn fig16_size_assoc(quick: bool) -> Vec<Table> {
    let configs: &[(u32, u32)] = if quick {
        &[(256, 8), (512, 8)]
    } else {
        &[
            (256, 4),
            (256, 8),
            (512, 4),
            (512, 8),
            (512, 16),
            (1024, 8),
            (2048, 8),
        ]
    };
    let mut t = Table::new(
        "Fig. 16: avg miss reduction over LRU by geometry (entries x ways)",
        &["entries", "ways", "GHRP", "Thermometer", "FURBYS"],
    );
    for &(entries, ways) in configs {
        let mut cfg = FrontendConfig::zen3();
        cfg.uop_cache = cfg.uop_cache.with_entries(entries).with_ways(ways);
        let mut lab = Lab::with_len(cfg, len_for(quick));
        let apps = apps_for(quick);
        lab.prewarm_online(
            &[
                PolicyId::Lru,
                PolicyId::Ghrp,
                PolicyId::Thermometer,
                PolicyId::Furbys,
            ],
            &apps,
        );
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for app in apps {
            for (i, &p) in [PolicyId::Ghrp, PolicyId::Thermometer, PolicyId::Furbys]
                .iter()
                .enumerate()
            {
                cols[i].push(lab.online_miss_reduction(p, app));
            }
        }
        t.row(&[
            format!("{entries}"),
            format!("{ways}"),
            format!("{:.2}", mean(&cols[0])),
            format!("{:.2}", mean(&cols[1])),
            format!("{:.2}", mean(&cols[2])),
        ]);
    }
    vec![t]
}

/// Fig. 19: miss reduction as a function of the weight-group hint width
/// (paper: 3 bits is the sweet spot; more bits add hardware, not benefit).
pub fn fig19_weight_groups(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let bits: &[u8] = if quick {
        &[1, 3]
    } else {
        &[1, 2, 3, 4, 5, 6, 8]
    };
    let mut t = Table::new(
        "Fig. 19: avg miss reduction by weight-group bits (paper picks 3)",
        &["bits", "groups", "miss reduction"],
    );
    let apps = apps_for(quick);
    // Stage 1: one engine task per app prepares the trace and LRU baseline;
    // stage 2 fans out one task per (bits, app) cell.
    let prep_tasks: Vec<_> = apps
        .iter()
        .map(|&a| (app_key("fig19-prepare", a), a))
        .collect();
    let prepared = par_map("fig19 prepare", prep_tasks, move |_key, _seed, a| {
        let tr = trace_for(a, 0, len);
        let lru = Frontend::builder(cfg)
            .policy(uopcache_cache::LruPolicy::new())
            .build()
            .run(&tr);
        Arc::new((tr, lru))
    });
    let mut tasks = Vec::new();
    for &b in bits {
        for (&app, shared) in apps.iter().zip(&prepared) {
            tasks.push((
                TaskKey::new(["fig19-sweep", &format!("b{b}"), app.name()]),
                (b, Arc::clone(shared)),
            ));
        }
    }
    let reds = par_map(
        "fig19 weight bits",
        tasks,
        move |_key, _seed, (b, shared)| {
            let (tr, lru) = &*shared;
            let mut p = FurbysPipeline::new(cfg);
            p.weight_cfg.bits = b;
            let profile = p.profile(tr);
            let r = p.deploy_and_run(&profile, tr);
            r.uopc.miss_reduction_vs(&lru.uopc)
        },
    );
    for (bi, &b) in bits.iter().enumerate() {
        let vals = &reds[bi * apps.len()..(bi + 1) * apps.len()];
        t.row(&[
            format!("{b}"),
            format!("{}", 1u16 << b),
            format!("{:.2}%", mean(vals)),
        ]);
    }
    vec![t]
}

/// Fig. 20: miss reduction as a function of the local pitfall detector depth
/// (paper: depth 2 is best).
pub fn fig20_pitfall_depth(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let depths: &[usize] = if quick { &[0, 2] } else { &[0, 1, 2, 3, 4, 6] };
    let mut t = Table::new(
        "Fig. 20: avg miss reduction by pitfall-detector depth (paper picks 2)",
        &["depth", "miss reduction", "coverage"],
    );
    let apps = apps_for(quick);
    // Stage 1: per-app trace, LRU baseline and profile (profiles do not
    // depend on the detector depth); stage 2: one task per (depth, app).
    let prep_tasks: Vec<_> = apps
        .iter()
        .map(|&a| (app_key("fig20-prepare", a), a))
        .collect();
    let prepared = par_map("fig20 prepare", prep_tasks, move |_key, _seed, a| {
        let tr = trace_for(a, 0, len);
        let lru = Frontend::builder(cfg)
            .policy(uopcache_cache::LruPolicy::new())
            .build()
            .run(&tr);
        let profile = FurbysPipeline::new(cfg).profile(&tr);
        Arc::new((tr, lru, profile))
    });
    let mut tasks = Vec::new();
    for &d in depths {
        for (&app, shared) in apps.iter().zip(&prepared) {
            tasks.push((
                TaskKey::new(["fig20-sweep", &format!("d{d}"), app.name()]),
                (d, Arc::clone(shared)),
            ));
        }
    }
    let cells = par_map(
        "fig20 pitfall depth",
        tasks,
        move |_key, _seed, (d, shared)| {
            let (tr, lru, profile) = &*shared;
            let mut p = FurbysPipeline::new(cfg);
            p.detector_depth = d;
            let r = p.deploy_and_run(profile, tr);
            (
                r.uopc.miss_reduction_vs(&lru.uopc),
                r.uopc.replacement_coverage() * 100.0,
            )
        },
    );
    for (di, &d) in depths.iter().enumerate() {
        let chunk = &cells[di * apps.len()..(di + 1) * apps.len()];
        let vals: Vec<f64> = chunk.iter().map(|&(v, _)| v).collect();
        let covs: Vec<f64> = chunk.iter().map(|&(_, c)| c).collect();
        t.row(&[
            format!("{d}"),
            format!("{:.2}%", mean(&vals)),
            format!("{:.1}%", mean(&covs)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig19_has_requested_bit_rows() {
        let t = &fig19_weight_groups(true)[0];
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn quick_fig16_rows_match_configs() {
        let t = &fig16_size_assoc(true)[0];
        assert_eq!(t.len(), 2);
    }
}
