//! Sensitivity studies: Figs. 16, 19 and 20.

use crate::apps::trace_for;
use crate::experiments::{apps_for, len_for};
use crate::runs::{mean, Lab};
use crate::table::Table;
use uopcache_core::FurbysPipeline;
use uopcache_model::FrontendConfig;
use uopcache_sim::Frontend;

/// Fig. 16: FURBYS vs the best existing policies across micro-op cache sizes
/// and associativities (paper: FURBYS wins everywhere; the gap shrinks as
/// capacity misses vanish).
pub fn fig16_size_assoc(quick: bool) -> Vec<Table> {
    let configs: &[(u32, u32)] = if quick {
        &[(256, 8), (512, 8)]
    } else {
        &[
            (256, 4),
            (256, 8),
            (512, 4),
            (512, 8),
            (512, 16),
            (1024, 8),
            (2048, 8),
        ]
    };
    let mut t = Table::new(
        "Fig. 16: avg miss reduction over LRU by geometry (entries x ways)",
        &["entries", "ways", "GHRP", "Thermometer", "FURBYS"],
    );
    for &(entries, ways) in configs {
        let mut cfg = FrontendConfig::zen3();
        cfg.uop_cache = cfg.uop_cache.with_entries(entries).with_ways(ways);
        let mut lab = Lab::with_len(cfg, len_for(quick));
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for app in apps_for(quick) {
            for (i, p) in ["GHRP", "Thermometer", "FURBYS"].iter().enumerate() {
                cols[i].push(lab.online_miss_reduction(p, app));
            }
        }
        t.row(&[
            format!("{entries}"),
            format!("{ways}"),
            format!("{:.2}", mean(&cols[0])),
            format!("{:.2}", mean(&cols[1])),
            format!("{:.2}", mean(&cols[2])),
        ]);
    }
    vec![t]
}

/// Fig. 19: miss reduction as a function of the weight-group hint width
/// (paper: 3 bits is the sweet spot; more bits add hardware, not benefit).
pub fn fig19_weight_groups(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let bits: &[u8] = if quick {
        &[1, 3]
    } else {
        &[1, 2, 3, 4, 5, 6, 8]
    };
    let mut t = Table::new(
        "Fig. 19: avg miss reduction by weight-group bits (paper picks 3)",
        &["bits", "groups", "miss reduction"],
    );
    let apps = apps_for(quick);
    let traces: Vec<_> = apps.iter().map(|&a| trace_for(a, 0, len)).collect();
    let lrus: Vec<_> = traces
        .iter()
        .map(|tr| Frontend::new(cfg, Box::new(uopcache_cache::LruPolicy::new())).run(tr))
        .collect();
    for &b in bits {
        let mut vals = Vec::new();
        for (tr, lru) in traces.iter().zip(&lrus) {
            let mut p = FurbysPipeline::new(cfg);
            p.weight_cfg.bits = b;
            let profile = p.profile(tr);
            let r = p.deploy_and_run(&profile, tr);
            vals.push(r.uopc.miss_reduction_vs(&lru.uopc));
        }
        t.row(&[
            format!("{b}"),
            format!("{}", 1u16 << b),
            format!("{:.2}%", mean(&vals)),
        ]);
    }
    vec![t]
}

/// Fig. 20: miss reduction as a function of the local pitfall detector depth
/// (paper: depth 2 is best).
pub fn fig20_pitfall_depth(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let depths: &[usize] = if quick { &[0, 2] } else { &[0, 1, 2, 3, 4, 6] };
    let mut t = Table::new(
        "Fig. 20: avg miss reduction by pitfall-detector depth (paper picks 2)",
        &["depth", "miss reduction", "coverage"],
    );
    let apps = apps_for(quick);
    let traces: Vec<_> = apps.iter().map(|&a| trace_for(a, 0, len)).collect();
    let lrus: Vec<_> = traces
        .iter()
        .map(|tr| Frontend::new(cfg, Box::new(uopcache_cache::LruPolicy::new())).run(tr))
        .collect();
    // Profiles do not depend on the detector depth; compute once.
    let base_pipeline = FurbysPipeline::new(cfg);
    let profiles: Vec<_> = traces.iter().map(|tr| base_pipeline.profile(tr)).collect();
    for &d in depths {
        let mut vals = Vec::new();
        let mut covs = Vec::new();
        for ((tr, lru), profile) in traces.iter().zip(&lrus).zip(&profiles) {
            let mut p = FurbysPipeline::new(cfg);
            p.detector_depth = d;
            let r = p.deploy_and_run(profile, tr);
            vals.push(r.uopc.miss_reduction_vs(&lru.uopc));
            covs.push(r.uopc.replacement_coverage() * 100.0);
        }
        t.row(&[
            format!("{d}"),
            format!("{:.2}%", mean(&vals)),
            format!("{:.1}%", mean(&covs)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig19_has_requested_bit_rows() {
        let t = &fig19_weight_groups(true)[0];
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn quick_fig16_rows_match_configs() {
        let t = &fig16_size_assoc(true)[0];
        assert_eq!(t.len(), 2);
    }
}
