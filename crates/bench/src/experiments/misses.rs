//! Miss-rate experiments: §III-B, Figs. 5, 8, 10, 15, 18, 21, 22 and the
//! §VI-C coverage study.

use crate::apps::trace_for;
use crate::experiments::{apps_for, len_for};
use crate::policies::PolicyId;
use crate::runs::{mean, Lab};
use crate::sweep::{app_key, par_map};
use crate::table::Table;
use uopcache_core::{Flack, FurbysPipeline, OracleKind};
use uopcache_model::FrontendConfig;
use uopcache_offline::foo;
use uopcache_offline::replay::{replay_full, EvictionTiming};
use uopcache_sim::Frontend;
use uopcache_trace::AppId;

/// §III-B: miss classification under LRU and the reduction a near-optimal
/// policy (FLACK) achieves on capacity and conflict misses.
pub fn sec3b_miss_classes(quick: bool) -> Vec<Table> {
    let mut lab = Lab::with_len(FrontendConfig::zen3(), len_for(quick));
    lab.classify_misses(true);
    let apps = apps_for(quick);
    lab.prewarm_online(&[PolicyId::Lru], &apps);
    let mut t = Table::new(
        "SIII-B: LRU miss classes (paper: cold 0.89%, capacity 88.31%, conflict 10.8%)",
        &["app", "cold%", "capacity%", "conflict%"],
    );
    let mut cold = Vec::new();
    let mut cap = Vec::new();
    let mut conf = Vec::new();

    // Near-optimal (FLACK) classified misses vs the synchronous LRU baseline
    // classified the same way — one engine task per app.
    let cfg = lab.cfg.uop_cache;
    let offline_tasks: Vec<_> = apps
        .iter()
        .map(|&app| (app_key("sec3b-offline", app), lab.trace(app, 0).clone()))
        .collect();
    let offline = par_map("sec3b offline", offline_tasks, move |_key, _seed, trace| {
        let flack = Flack::new();
        let sol = foo::solve(&trace, &cfg, &flack.foo_config());
        let (opt, _) = replay_full(&trace, &cfg, &sol, EvictionTiming::Lazy, true);
        let mut lru_sync =
            uopcache_cache::UopCache::new(cfg, Box::new(uopcache_cache::LruPolicy::new()));
        lru_sync.enable_classification();
        let base = uopcache_policies::run_trace(&mut lru_sync, &trace);
        let red = |o: u64, b: u64| {
            if b == 0 {
                0.0
            } else {
                (1.0 - o as f64 / b as f64) * 100.0
            }
        };
        (
            red(opt.capacity_miss_uops, base.capacity_miss_uops),
            red(opt.conflict_miss_uops, base.conflict_miss_uops),
            red(opt.uops_missed, base.uops_missed),
        )
    });
    let (mut cap_red, mut conf_red, mut tot_red) = (Vec::new(), Vec::new(), Vec::new());
    for (c, f, tot) in offline {
        cap_red.push(c);
        conf_red.push(f);
        tot_red.push(tot);
    }

    for &app in &apps {
        let lru = lab.run_online(PolicyId::Lru, app, 0).uopc;
        let total = lru.uops_missed.max(1) as f64;
        cold.push(lru.cold_miss_uops as f64 / total * 100.0);
        cap.push(lru.capacity_miss_uops as f64 / total * 100.0);
        conf.push(lru.conflict_miss_uops as f64 / total * 100.0);
        t.row(&[
            app.name().to_string(),
            format!("{:.2}", cold.last().expect("pushed above")),
            format!("{:.2}", cap.last().expect("pushed above")),
            format!("{:.2}", conf.last().expect("pushed above")),
        ]);
    }
    t.row(&[
        "MEAN".into(),
        format!("{:.2}", mean(&cold)),
        format!("{:.2}", mean(&cap)),
        format!("{:.2}", mean(&conf)),
    ]);
    let mut t2 = Table::new(
        "SIII-B: near-optimal reduction (paper: capacity -23.9%, conflict -31.6%, total -24.5%)",
        &["metric", "paper", "measured"],
    );
    t2.row(&[
        "capacity miss reduction".into(),
        "23.9%".into(),
        format!("{:.1}%", mean(&cap_red)),
    ]);
    t2.row(&[
        "conflict miss reduction".into(),
        "31.6%".into(),
        format!("{:.1}%", mean(&conf_red)),
    ]);
    t2.row(&[
        "total miss reduction".into(),
        "24.5%".into(),
        format!("{:.1}%", mean(&tot_red)),
    ]);
    vec![t, t2]
}

/// Per-app offline FLACK miss reduction vs the synchronous LRU baseline,
/// computed through the engine (one task per app). Exactly
/// `lab.offline_miss_reduction(Flack::new(), app)`, parallelized.
fn offline_flack_reductions(stage: &str, lab: &mut Lab, apps: &[AppId]) -> Vec<f64> {
    let cfg = lab.cfg.uop_cache;
    let tasks: Vec<_> = apps
        .iter()
        .map(|&app| (app_key(stage, app), lab.trace(app, 0).clone()))
        .collect();
    par_map(stage, tasks, move |_key, _seed, trace| {
        let stats = Flack::new().run(&trace, &cfg).stats;
        let mut lru =
            uopcache_cache::UopCache::new(cfg, Box::new(uopcache_cache::LruPolicy::new()));
        let base = uopcache_policies::run_trace(&mut lru, &trace);
        stats.miss_reduction_vs(&base)
    })
}

/// Fig. 5: existing online policies achieve only a fraction of FLACK's miss
/// reduction (paper: GHRP, the best, reaches 31.52% of FLACK).
pub fn fig05_existing_policies(quick: bool) -> Vec<Table> {
    let mut lab = Lab::with_len(FrontendConfig::zen3(), len_for(quick));
    let policies = [
        PolicyId::Srrip,
        PolicyId::ShipPlusPlus,
        PolicyId::Mockingjay,
        PolicyId::Ghrp,
        PolicyId::Thermometer,
    ];
    let apps = apps_for(quick);
    lab.prewarm_online(
        &[
            PolicyId::Lru,
            PolicyId::Srrip,
            PolicyId::ShipPlusPlus,
            PolicyId::Mockingjay,
            PolicyId::Ghrp,
            PolicyId::Thermometer,
        ],
        &apps,
    );
    let flack_reds = offline_flack_reductions("fig05-flack", &mut lab, &apps);
    let mut t = Table::new(
        "Fig. 5: miss reduction over LRU (existing policies vs offline FLACK)",
        &[
            "app",
            "SRRIP",
            "SHiP++",
            "Mockingjay",
            "GHRP",
            "Thermometer",
            "FLACK",
        ],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len() + 1];
    for (&app, &flack) in apps.iter().zip(&flack_reds) {
        let mut row = vec![app.name().to_string()];
        for (i, &p) in policies.iter().enumerate() {
            let red = lab.online_miss_reduction(p, app);
            cols[i].push(red);
            row.push(format!("{red:.2}"));
        }
        cols[policies.len()].push(flack);
        row.push(format!("{flack:.2}"));
        t.row(&row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for c in &cols {
        mean_row.push(format!("{:.2}", mean(c)));
    }
    t.row(&mean_row);
    let mut t2 = Table::new("Fig. 5 summary", &["metric", "paper", "measured"]);
    let best = cols[..policies.len()]
        .iter()
        .map(|c| mean(c))
        .fold(f64::MIN, f64::max);
    t2.row(&[
        "best existing / FLACK".into(),
        "31.52%".into(),
        format!(
            "{:.1}%",
            best / mean(&cols[policies.len()]).max(1e-9) * 100.0
        ),
    ]);
    vec![t, t2]
}

/// Fig. 8: FURBYS miss reduction vs existing policies (paper: 14.34% avg,
/// GHRP best existing at 7.81%, FURBYS = 57.85% of FLACK).
pub fn fig08_furbys_miss_reduction(quick: bool) -> Vec<Table> {
    let mut lab = Lab::with_len(FrontendConfig::zen3(), len_for(quick));
    let policies = [
        PolicyId::Srrip,
        PolicyId::ShipPlusPlus,
        PolicyId::Mockingjay,
        PolicyId::Ghrp,
        PolicyId::Thermometer,
        PolicyId::Furbys,
    ];
    let apps = apps_for(quick);
    lab.prewarm_online(&PolicyId::ONLINE, &apps);
    let flack_reds = offline_flack_reductions("fig08-flack", &mut lab, &apps);
    let mut t = Table::new(
        "Fig. 8: miss reduction over LRU",
        &[
            "app",
            "SRRIP",
            "SHiP++",
            "Mockingjay",
            "GHRP",
            "Thermometer",
            "FURBYS",
            "FLACK",
        ],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len() + 1];
    for (&app, &flack) in apps.iter().zip(&flack_reds) {
        let mut row = vec![app.name().to_string()];
        for (i, &p) in policies.iter().enumerate() {
            let red = lab.online_miss_reduction(p, app);
            cols[i].push(red);
            row.push(format!("{red:.2}"));
        }
        cols[policies.len()].push(flack);
        row.push(format!("{flack:.2}"));
        t.row(&row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for c in &cols {
        mean_row.push(format!("{:.2}", mean(c)));
    }
    t.row(&mean_row);

    let furbys = mean(&cols[5]);
    let flack = mean(&cols[6]);
    let best_existing = cols[..5].iter().map(|c| mean(c)).fold(f64::MIN, f64::max);
    let mut t2 = Table::new("Fig. 8 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "FURBYS avg miss reduction".into(),
        "14.34%".into(),
        format!("{furbys:.2}%"),
    ]);
    t2.row(&[
        "FURBYS / best existing".into(),
        "1.84x (vs GHRP 7.81%)".into(),
        format!(
            "{:.2}x (vs {:.2}%)",
            furbys / best_existing.max(1e-9),
            best_existing
        ),
    ]);
    t2.row(&[
        "FURBYS / FLACK".into(),
        "57.85%".into(),
        format!("{:.1}%", furbys / flack.max(1e-9) * 100.0),
    ]);
    vec![t, t2]
}

/// Fig. 10: FLACK feature ablation vs FOO and Belady (perfect-icache-style
/// synchronous setting; paper: FLACK beats Belady by 4.46% on average).
pub fn fig10_flack_ablation(quick: bool) -> Vec<Table> {
    let lab = Lab::with_len(FrontendConfig::zen3(), len_for(quick));
    let variants = [
        Flack::ablation(false, false, false),
        Flack::ablation(true, false, false),
        Flack::ablation(true, true, false),
        Flack::new(),
    ];
    let mut t = Table::new(
        "Fig. 10: miss reduction over LRU (offline, perfect-icache setting)",
        &["app", "Belady", "FOO", "A", "A+VC", "A+VC+SB (FLACK)"],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let apps = apps_for(quick);
    // Offline-only study: each app is one engine task computing the sync LRU
    // baseline, Belady and all four ablation variants on its own trace.
    let cfg = lab.cfg.uop_cache;
    let len = lab.len;
    let tasks: Vec<_> = apps
        .iter()
        .map(|&app| (app_key("fig10-ablation", app), app))
        .collect();
    let per_app = par_map("fig10 ablation", tasks, move |_key, _seed, app| {
        let trace = trace_for(app, 0, len);
        let mut lru_cache =
            uopcache_cache::UopCache::new(cfg, Box::new(uopcache_cache::LruPolicy::new()));
        let lru = uopcache_policies::run_trace(&mut lru_cache, &trace);
        let mut bel_cache = uopcache_cache::UopCache::new(
            cfg,
            Box::new(uopcache_offline::BeladyPolicy::from_trace(&trace)),
        );
        let bel = uopcache_policies::run_trace(&mut bel_cache, &trace).miss_reduction_vs(&lru);
        let reds: Vec<f64> = variants
            .iter()
            .map(|v| v.run(&trace, &cfg).stats.miss_reduction_vs(&lru))
            .collect();
        (bel, reds)
    });
    for (&app, (bel, reds)) in apps.iter().zip(per_app) {
        let mut row = vec![app.name().to_string()];
        cols[0].push(bel);
        row.push(format!("{bel:.2}"));
        for (i, red) in reds.into_iter().enumerate() {
            cols[i + 1].push(red);
            row.push(format!("{red:.2}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for c in &cols {
        mean_row.push(format!("{:.2}", mean(c)));
    }
    t.row(&mean_row);
    let mut t2 = Table::new("Fig. 10 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "FLACK avg miss reduction".into(),
        "30.21%".into(),
        format!("{:.2}%", mean(&cols[4])),
    ]);
    t2.row(&[
        "FLACK - Belady".into(),
        "4.46%".into(),
        format!("{:.2}%", mean(&cols[4]) - mean(&cols[0])),
    ]);
    t2.row(&[
        "FLACK - FOO".into(),
        "17.93%".into(),
        format!("{:.2}%", mean(&cols[4]) - mean(&cols[1])),
    ]);
    vec![t, t2]
}

/// Fig. 15: FURBYS fed by profiles from Belady, FOO and FLACK (paper: FLACK
/// profiles give ~3.47% more reduction than Belady's, 4.39% more than FOO's).
pub fn fig15_profile_sources(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let mut t = Table::new(
        "Fig. 15: FURBYS miss reduction by profile source",
        &["app", "Belady-profile", "FOO-profile", "FLACK-profile"],
    );
    let oracles = [OracleKind::Belady, OracleKind::Foo, OracleKind::Flack];
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let apps = apps_for(quick);
    // One engine task per app: LRU baseline plus FURBYS under all three
    // profile oracles on that app's trace.
    let tasks: Vec<_> = apps
        .iter()
        .map(|&app| (app_key("fig15-oracles", app), app))
        .collect();
    let per_app = par_map("fig15 profile sources", tasks, move |_key, _seed, app| {
        let trace = trace_for(app, 0, len);
        let lru = Frontend::builder(cfg)
            .policy(uopcache_cache::LruPolicy::new())
            .build()
            .run(&trace);
        oracles.map(|oracle| {
            let mut p = FurbysPipeline::new(cfg);
            p.oracle = oracle;
            let profile = p.profile(&trace);
            let r = p.deploy_and_run(&profile, &trace);
            r.uopc.miss_reduction_vs(&lru.uopc)
        })
    });
    for (&app, reds) in apps.iter().zip(per_app) {
        let mut row = vec![app.name().to_string()];
        for (i, red) in reds.into_iter().enumerate() {
            cols[i].push(red);
            row.push(format!("{red:.2}"));
        }
        t.row(&row);
    }
    t.row(&[
        "MEAN".into(),
        format!("{:.2}", mean(&cols[0])),
        format!("{:.2}", mean(&cols[1])),
        format!("{:.2}", mean(&cols[2])),
    ]);
    let mut t2 = Table::new("Fig. 15 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "FLACK-profile - Belady-profile".into(),
        "3.47%".into(),
        format!("{:.2}%", mean(&cols[2]) - mean(&cols[0])),
    ]);
    t2.row(&[
        "FLACK-profile - FOO-profile".into(),
        "4.39%".into(),
        format!("{:.2}%", mean(&cols[2]) - mean(&cols[1])),
    ]);
    vec![t, t2]
}

/// Fig. 18: cross-validation — profile on training inputs, deploy on a
/// held-out input (paper: 94.34% of the same-input benefit, 13.51% vs LRU).
pub fn fig18_cross_validation(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let pipeline = FurbysPipeline::new(cfg);
    let mut t = Table::new(
        "Fig. 18: cross-validation (train on inputs 0+1, test on input 2)",
        &["app", "same-input", "cross-input", "retained"],
    );
    let mut same_all = Vec::new();
    let mut cross_all = Vec::new();
    let apps = apps_for(quick);
    // One engine task per app: the full train-on-0+1, test-on-2 protocol.
    let tasks: Vec<_> = apps
        .iter()
        .map(|&app| (app_key("fig18-crossval", app), app))
        .collect();
    let per_app = par_map("fig18 cross-validation", tasks, move |_key, _seed, app| {
        let train0 = trace_for(app, 0, len);
        let train1 = trace_for(app, 1, len);
        let test = trace_for(app, 2, len);
        let lru_test = Frontend::builder(cfg)
            .policy(uopcache_cache::LruPolicy::new())
            .build()
            .run(&test);
        // Same-input: profile the test input itself.
        let same_profile = pipeline.profile(&test);
        let same = pipeline
            .deploy_and_run(&same_profile, &test)
            .uopc
            .miss_reduction_vs(&lru_test.uopc);
        // Cross-input: merged profile of the training inputs.
        let cross_profile = pipeline.profile_merged(&[train0, train1]);
        let cross = pipeline
            .deploy_and_run(&cross_profile, &test)
            .uopc
            .miss_reduction_vs(&lru_test.uopc);
        (same, cross)
    });
    for (&app, (same, cross)) in apps.iter().zip(per_app) {
        same_all.push(same);
        cross_all.push(cross);
        t.row(&[
            app.name().to_string(),
            format!("{same:.2}"),
            format!("{cross:.2}"),
            format!(
                "{:.1}%",
                if same.abs() < 1e-9 {
                    0.0
                } else {
                    cross / same * 100.0
                }
            ),
        ]);
    }
    let mut t2 = Table::new("Fig. 18 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "cross-input avg reduction".into(),
        "13.51%".into(),
        format!("{:.2}%", mean(&cross_all)),
    ]);
    t2.row(&[
        "retained vs same-input".into(),
        "94.34%".into(),
        format!(
            "{:.1}%",
            mean(&cross_all) / mean(&same_all).max(1e-9) * 100.0
        ),
    ]);
    vec![t, t2]
}

/// Fig. 21: the dynamic bypass mechanism on vs off (paper: bypass adds 4.33%
/// more reduction and skips ~30% of insertions).
pub fn fig21_bypass(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let mut t = Table::new(
        "Fig. 21: FURBYS with bypass off/on",
        &[
            "app",
            "bypass off",
            "bypass on",
            "delta",
            "bypassed insertions",
        ],
    );
    let mut off_all = Vec::new();
    let mut on_all = Vec::new();
    let mut rate_all = Vec::new();
    let apps = apps_for(quick);
    // One engine task per app: LRU baseline, FURBYS with bypass on and off.
    let tasks: Vec<_> = apps
        .iter()
        .map(|&app| (app_key("fig21-bypass", app), app))
        .collect();
    let per_app = par_map("fig21 bypass", tasks, move |_key, _seed, app| {
        let trace = trace_for(app, 0, len);
        let lru = Frontend::builder(cfg)
            .policy(uopcache_cache::LruPolicy::new())
            .build()
            .run(&trace);
        let pipeline_on = FurbysPipeline::new(cfg);
        let profile = pipeline_on.profile(&trace);
        let on = pipeline_on.deploy_and_run(&profile, &trace);
        let mut pipeline_off = FurbysPipeline::new(cfg);
        pipeline_off.bypass_k = u8::MAX; // disables bypassing
        let off = pipeline_off.deploy_and_run(&profile, &trace);
        (
            off.uopc.miss_reduction_vs(&lru.uopc),
            on.uopc.miss_reduction_vs(&lru.uopc),
            on.uopc.bypass_rate() * 100.0,
        )
    });
    for (&app, (off_red, on_red, rate)) in apps.iter().zip(per_app) {
        on_all.push(on_red);
        off_all.push(off_red);
        rate_all.push(rate);
        t.row(&[
            app.name().to_string(),
            format!("{off_red:.2}"),
            format!("{on_red:.2}"),
            format!("{:.2}", on_red - off_red),
            format!("{:.1}%", rate_all.last().expect("pushed above")),
        ]);
    }
    let mut t2 = Table::new("Fig. 21 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "extra reduction from bypass".into(),
        "4.33%".into(),
        format!("{:.2}%", mean(&on_all) - mean(&off_all)),
    ]);
    t2.row(&[
        "insertions bypassed".into(),
        "~30%".into(),
        format!("{:.1}%", mean(&rate_all)),
    ]);
    vec![t, t2]
}

/// Fig. 22: per-hotness-class hit rates on Kafka (paper: all policies agree
/// on hot PWs; FURBYS wins on warm PWs; FLACK's remaining edge is in cold
/// PWs).
pub fn fig22_hotness(quick: bool) -> Vec<Table> {
    use uopcache_model::hash::FastHashMap;
    use uopcache_model::Addr;

    let cfg = FrontendConfig::zen3();
    let len = len_for(quick).max(20_000);
    let app = uopcache_trace::AppId::Kafka;
    let trace = trace_for(app, 0, len);

    // Hotness classes by access count: hot = top 10% of starts, warm = next
    // 40%, cold = the rest.
    let counts = trace.access_counts();
    let mut ranked: Vec<(Addr, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let n = ranked.len();
    let class_of = |idx: usize| -> usize {
        if idx < n / 10 {
            0 // hot
        } else if idx < n / 2 {
            1 // warm
        } else {
            2 // cold
        }
    };
    let index_of: FastHashMap<Addr, usize> = ranked
        .iter()
        .enumerate()
        .map(|(i, &(a, _))| (a, i))
        .collect();

    let class_rates = |obs: &[(Addr, u32, u32)]| -> [f64; 3] {
        let mut hit = [0u64; 3];
        let mut tot = [0u64; 3];
        for &(a, h, t) in obs {
            let c = class_of(index_of[&a]);
            hit[c] += u64::from(h);
            tot[c] += u64::from(t);
        }
        std::array::from_fn(|c| {
            if tot[c] == 0 {
                0.0
            } else {
                hit[c] as f64 / tot[c] as f64 * 100.0
            }
        })
    };

    let mut t = Table::new(
        "Fig. 22: hit rate (%) by PW hotness class on Kafka",
        &["policy", "hot (top 10%)", "warm (10-50%)", "cold (50-100%)"],
    );
    // Online policies through the synchronous observer for per-PW hit data.
    let profiles = crate::policies::ProfileInputs::build(&cfg, &trace);
    for id in [
        PolicyId::Lru,
        PolicyId::Srrip,
        PolicyId::Ghrp,
        PolicyId::Thermometer,
        PolicyId::Furbys,
    ] {
        let policy = id.build(&cfg, &profiles, 0);
        let mut cache = uopcache_cache::UopCache::new(cfg.uop_cache, policy);
        let (_, obs) = uopcache_policies::run_trace_observed(&mut cache, &trace);
        let rates = class_rates(&obs);
        t.row(&[
            id.to_string(),
            format!("{:.1}", rates[0]),
            format!("{:.1}", rates[1]),
            format!("{:.1}", rates[2]),
        ]);
    }
    // FLACK via replay observations.
    let flack = Flack::new();
    let sol = foo::solve(&trace, &cfg.uop_cache, &flack.foo_config());
    let (_, obs) =
        uopcache_offline::replay::replay_observed(&trace, &cfg.uop_cache, &sol, flack.timing());
    let rates = class_rates(&obs);
    t.row(&[
        "FLACK".to_string(),
        format!("{:.1}", rates[0]),
        format!("{:.1}", rates[1]),
        format!("{:.1}", rates[2]),
    ]);
    vec![t]
}

/// §VI-C: replacement coverage — the share of victim selections FURBYS makes
/// itself rather than its SRRIP fallback (paper: 88.68%).
pub fn sec6c_coverage(quick: bool) -> Vec<Table> {
    let mut lab = Lab::with_len(FrontendConfig::zen3(), len_for(quick));
    let apps = apps_for(quick);
    lab.prewarm_online(&[PolicyId::Furbys], &apps);
    let mut t = Table::new(
        "SVI-C: FURBYS replacement coverage (paper: 88.68% average)",
        &["app", "coverage"],
    );
    let mut all = Vec::new();
    for app in apps {
        let r = lab.run_online(PolicyId::Furbys, app, 0);
        let cov = r.uopc.replacement_coverage() * 100.0;
        all.push(cov);
        t.row(&[app.name().to_string(), format!("{cov:.2}%")]);
    }
    t.row(&["MEAN".into(), format!("{:.2}%", mean(&all))]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig10_preserves_monotone_ablation() {
        let tables = fig10_flack_ablation(true);
        assert_eq!(tables.len(), 2);
        // MEAN row: Belady, FOO, A, A+VC, FLACK.
        let t = &tables[0];
        let rendered = t.render();
        let mean_line = rendered.lines().last().unwrap();
        let nums: Vec<f64> = mean_line
            .split_whitespace()
            .skip(1)
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(nums[2] <= nums[4], "A <= FLACK: {nums:?}");
    }

    #[test]
    fn quick_fig21_reports_bypass_rate() {
        let tables = fig21_bypass(true);
        let s = tables[1].render();
        assert!(s.contains("insertions bypassed"));
    }

    #[test]
    fn quick_fig22_has_six_policies() {
        let tables = fig22_hotness(true);
        assert_eq!(tables[0].len(), 6);
    }
}
