//! IPC experiments: Figs. 11 and 12.

use crate::experiments::{apps_for, len_for};
use crate::policies::PolicyId;
use crate::runs::{mean, Lab};
use crate::table::Table;
use uopcache_model::FrontendConfig;

/// Fig. 11: IPC speedup over LRU (paper: FURBYS 0.47-0.49% on average —
/// miss reduction translates only partially into IPC).
pub fn fig11_ipc_speedup(quick: bool) -> Vec<Table> {
    let mut lab = Lab::with_len(FrontendConfig::zen3(), len_for(quick));
    let policies = [
        PolicyId::Srrip,
        PolicyId::ShipPlusPlus,
        PolicyId::Mockingjay,
        PolicyId::Ghrp,
        PolicyId::Thermometer,
        PolicyId::Furbys,
    ];
    let mut t = Table::new(
        "Fig. 11: IPC speedup over LRU (%)",
        &[
            "app",
            "SRRIP",
            "SHiP++",
            "Mockingjay",
            "GHRP",
            "Thermometer",
            "FURBYS",
        ],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let apps = apps_for(quick);
    lab.prewarm_online(&PolicyId::ONLINE, &apps);
    for app in apps {
        let lru = lab.run_online(PolicyId::Lru, app, 0);
        let mut row = vec![app.name().to_string()];
        for (i, &p) in policies.iter().enumerate() {
            let r = lab.run_online(p, app, 0);
            let s = r.ipc_speedup_vs(&lru);
            cols[i].push(s);
            row.push(format!("{s:.3}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for c in &cols {
        mean_row.push(format!("{:.3}", mean(c)));
    }
    t.row(&mean_row);
    let mut t2 = Table::new("Fig. 11 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "FURBYS IPC speedup".into(),
        "0.47%".into(),
        format!("{:.3}%", mean(&cols[5])),
    ]);
    t2.row(&[
        "speedup is much smaller than miss reduction".into(),
        "yes (0.47% vs 14.34%)".into(),
        format!("{}", mean(&cols[5]) < 5.0),
    ]);
    vec![t, t2]
}

/// Fig. 12: ISO-performance — how much larger an LRU-managed micro-op cache
/// must be to match FURBYS at 512 entries (paper: 1.5x on average, up to 2x).
pub fn fig12_iso_performance(quick: bool) -> Vec<Table> {
    let base_cfg = FrontendConfig::zen3();
    let len = len_for(quick);
    let sizes: &[u32] = &[512, 640, 768, 1024, 1536, 2048];
    let mut furbys_lab = Lab::with_len(base_cfg, len);

    let mut t = Table::new(
        "Fig. 12: LRU missed uops by capacity vs FURBYS@512 (per-app)",
        &[
            "app",
            "FURBYS@512",
            "LRU@512",
            "LRU@768",
            "LRU@1024",
            "LRU@2048",
            "ISO size",
        ],
    );
    let mut ratios = Vec::new();
    let apps = apps_for(quick);
    furbys_lab.prewarm_online(&[PolicyId::Furbys], &apps);
    let mut labs: Vec<(u32, Lab)> = sizes
        .iter()
        .map(|&s| {
            let mut cfg = base_cfg;
            cfg.uop_cache = cfg.uop_cache.with_entries(s);
            let mut lab = Lab::with_len(cfg, len);
            lab.prewarm_online(&[PolicyId::Lru], &apps);
            (s, lab)
        })
        .collect();
    for app in apps {
        let furbys = furbys_lab
            .run_online(PolicyId::Furbys, app, 0)
            .uopc
            .uops_missed;
        let mut by_size = Vec::new();
        for (s, lab) in labs.iter_mut() {
            by_size.push((*s, lab.run_online(PolicyId::Lru, app, 0).uopc.uops_missed));
        }
        // First LRU capacity whose misses drop to (or below) FURBYS's.
        let iso = by_size
            .iter()
            .find(|(_, m)| *m <= furbys)
            .map(|(s, _)| *s)
            .unwrap_or(*sizes.last().expect("sizes is nonempty"));
        ratios.push(f64::from(iso) / 512.0);
        let get = |s: u32| {
            by_size
                .iter()
                .find(|(x, _)| *x == s)
                .map(|(_, m)| *m)
                .unwrap_or(0)
        };
        t.row(&[
            app.name().to_string(),
            format!("{furbys}"),
            format!("{}", get(512)),
            format!("{}", get(768)),
            format!("{}", get(1024)),
            format!("{}", get(2048)),
            format!("{:.2}x", f64::from(iso) / 512.0),
        ]);
    }
    let mut t2 = Table::new("Fig. 12 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "avg ISO capacity for LRU".into(),
        "~1.5x (up to 2x)".into(),
        format!("{:.2}x", mean(&ratios)),
    ]);
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig12_reports_ratio() {
        let tables = fig12_iso_performance(true);
        assert!(tables[1].render().contains("ISO"));
    }
}
