//! Table I (simulation parameters) and Table II (applications).

use crate::experiments::{apps_for, len_for};
use crate::table::Table;
use uopcache_model::FrontendConfig;
use uopcache_trace::{build_trace, InputVariant, TraceStats};

/// Table I: the Zen3-like simulation parameters, paper vs. configured.
pub fn tab1_parameters(_quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let mut t = Table::new(
        "Table I: simulation parameters",
        &["parameter", "paper", "configured"],
    );
    let rows: Vec<(&str, String, String)> = vec![
        (
            "CPU",
            "3.2GHz, 6-wide OoO, 256-entry ROB, 96-entry RS".into(),
            format!(
                "{:.1}GHz, {}-wide OoO, {}-entry ROB, {}-entry RS",
                cfg.backend.freq_ghz,
                cfg.backend.width,
                cfg.backend.rob_entries,
                cfg.backend.rs_entries
            ),
        ),
        (
            "Decoder",
            "4-wide, 5-cycle latency".into(),
            format!(
                "{}-wide, {}-cycle latency",
                cfg.decoder.width, cfg.decoder.latency
            ),
        ),
        (
            "Branch predictor",
            "8192-entry 4-way BTB, 32-entry RAS, 4096-entry IBTB".into(),
            format!(
                "{}-entry {}-way BTB, {}-entry RAS, {}-entry IBTB",
                cfg.bpu.btb_entries, cfg.bpu.btb_ways, cfg.bpu.ras_entries, cfg.bpu.ibtb_entries
            ),
        ),
        (
            "Micro-op cache",
            "512-entry, 8-way, 8 uops/entry, inclusive with L1i, 1-cycle switch".into(),
            format!(
                "{}-entry, {}-way, {} uops/entry, inclusive={}, {}-cycle switch",
                cfg.uop_cache.entries,
                cfg.uop_cache.ways,
                cfg.uop_cache.uops_per_entry,
                cfg.uop_cache.inclusive_with_l1i,
                cfg.uop_cache.switch_penalty
            ),
        ),
        (
            "L1i",
            "64B-line, 32KiB, 8-way, 1-cycle, LRU".into(),
            format!(
                "{}B-line, {}KiB, {}-way, {}-cycle, LRU",
                cfg.icache.line_bytes,
                cfg.icache.size_bytes / 1024,
                cfg.icache.ways,
                cfg.icache.latency
            ),
        ),
    ];
    for (name, paper, ours) in rows {
        t.row(&[name.to_string(), paper, ours]);
    }
    vec![t]
}

/// Table II: applications, paper branch MPKI vs. the MPKI implied by the
/// synthetic traces, plus the static footprint pressure.
pub fn tab2_applications(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Table II: data center applications",
        &[
            "app",
            "description",
            "paper MPKI",
            "trace MPKI",
            "footprint (entries)",
            "reuse>30",
        ],
    );
    let len = len_for(quick);
    for app in apps_for(quick) {
        let trace = build_trace(app, InputVariant::DEFAULT, len);
        let stats = TraceStats::from_trace(&trace, 8);
        t.row(&[
            app.name().to_string(),
            app.description().to_string(),
            format!("{:.2}", app.branch_mpki()),
            format!("{:.2}", stats.implied_mpki),
            format!("{}", stats.footprint_entries),
            format!("{:.0}%", stats.reuse_gt_30 * 100.0),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_has_all_structures() {
        let t = &tab1_parameters(true)[0];
        let s = t.render();
        assert!(s.contains("Micro-op cache") && s.contains("512-entry"));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn tab2_quick_covers_quick_apps() {
        let t = &tab2_applications(true)[0];
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("kafka"));
    }
}
