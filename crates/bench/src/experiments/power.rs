//! Energy / performance-per-watt experiments: Figs. 2, 9, 13, 14, 17.

use crate::experiments::{apps_for, len_for};
use crate::policies::PolicyId;
use crate::runs::{mean, Lab};
use crate::table::Table;
use uopcache_model::FrontendConfig;
use uopcache_power::{ppw_gain_percent, EnergyModel};

/// Fig. 2: per-core PPW gain of making one structure perfect (paper: the
/// perfect micro-op cache gives the largest gain, 7.41% on average).
pub fn fig02_perfect_structures(quick: bool) -> Vec<Table> {
    let base_cfg = FrontendConfig::zen3();
    let model = EnergyModel::zen3_22nm(&base_cfg);
    let mut t = Table::new(
        "Fig. 2: PPW gain of perfect structures over the LRU baseline",
        &[
            "app",
            "perfect uop cache",
            "perfect icache",
            "perfect BTB",
            "perfect BP",
        ],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut labs: Vec<Lab> = (0..4)
        .map(|i| {
            let mut cfg = base_cfg;
            match i {
                0 => cfg.perfect.uop_cache = true,
                1 => cfg.perfect.icache = true,
                2 => cfg.perfect.btb = true,
                _ => cfg.perfect.branch_predictor = true,
            }
            Lab::with_len(cfg, len_for(quick))
        })
        .collect();
    let mut base_lab = Lab::with_len(base_cfg, len_for(quick));
    let apps = apps_for(quick);
    base_lab.prewarm_online(&[PolicyId::Lru], &apps);
    for lab in &mut labs {
        lab.prewarm_online(&[PolicyId::Lru], &apps);
    }
    for app in apps {
        let base = base_lab.run_online(PolicyId::Lru, app, 0);
        let mut row = vec![app.name().to_string()];
        for (i, lab) in labs.iter_mut().enumerate() {
            let perfect = lab.run_online(PolicyId::Lru, app, 0);
            let gain = ppw_gain_percent(&model, &perfect, &base);
            cols[i].push(gain);
            row.push(format!("{gain:.2}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for c in &cols {
        mean_row.push(format!("{:.2}", mean(c)));
    }
    t.row(&mean_row);
    let mut t2 = Table::new("Fig. 2 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "perfect uop cache PPW gain".into(),
        "7.41% (largest of all structures)".into(),
        format!("{:.2}%", mean(&cols[0])),
    ]);
    t2.row(&[
        "uop cache is the largest lever".into(),
        "yes".into(),
        format!(
            "{}",
            cols.iter().map(|c| mean(c)).fold(f64::MIN, f64::max) <= mean(&cols[0]) + 1e-9
        ),
    ]);
    vec![t, t2]
}

/// Fig. 9: PPW gain of FURBYS and the baselines over LRU (paper: FURBYS
/// 3.10%, surpassing existing policies by 5.1x).
pub fn fig09_ppw_gain(quick: bool) -> Vec<Table> {
    ppw_table(
        FrontendConfig::zen3(),
        quick,
        "Fig. 9: per-core PPW gain over LRU (Zen3)",
        "3.10%",
    )
}

/// Fig. 17: the same study on the Zen4-like frontend (paper: FURBYS 2.41%).
pub fn fig17_zen4_ppw(quick: bool) -> Vec<Table> {
    ppw_table(
        FrontendConfig::zen4(),
        quick,
        "Fig. 17: per-core PPW gain over LRU (Zen4-like)",
        "2.41%",
    )
}

fn ppw_table(cfg: FrontendConfig, quick: bool, title: &str, paper_furbys: &str) -> Vec<Table> {
    let model = EnergyModel::zen3_22nm(&cfg);
    let mut lab = Lab::with_len(cfg, len_for(quick));
    let policies = [
        PolicyId::Srrip,
        PolicyId::ShipPlusPlus,
        PolicyId::Mockingjay,
        PolicyId::Ghrp,
        PolicyId::Thermometer,
        PolicyId::Furbys,
    ];
    let mut t = Table::new(
        title,
        &[
            "app",
            "SRRIP",
            "SHiP++",
            "Mockingjay",
            "GHRP",
            "Thermometer",
            "FURBYS",
        ],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let apps = apps_for(quick);
    lab.prewarm_online(&PolicyId::ONLINE, &apps);
    for app in apps {
        let lru = lab.run_online(PolicyId::Lru, app, 0);
        let mut row = vec![app.name().to_string()];
        for (i, &p) in policies.iter().enumerate() {
            let r = lab.run_online(p, app, 0);
            let gain = ppw_gain_percent(&model, &r, &lru);
            cols[i].push(gain);
            row.push(format!("{gain:.2}"));
        }
        t.row(&row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for c in &cols {
        mean_row.push(format!("{:.2}", mean(c)));
    }
    t.row(&mean_row);
    let mut t2 = Table::new("summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "FURBYS avg PPW gain".into(),
        paper_furbys.into(),
        format!("{:.2}%", mean(&cols[5])),
    ]);
    vec![t, t2]
}

/// Fig. 13: per-core energy breakdown on Clang for (a) no micro-op cache,
/// (b) LRU micro-op cache, (c) FURBYS — normalised to (a).
pub fn fig13_energy_breakdown(quick: bool) -> Vec<Table> {
    let app = uopcache_trace::AppId::Clang;
    let len = len_for(quick);
    let cfg = FrontendConfig::zen3();
    let model = EnergyModel::zen3_22nm(&cfg);

    // (a) Baseline without a micro-op cache: smallest legal geometry so
    // effectively everything streams through the decoders.
    let mut no_uopc = cfg;
    no_uopc.uop_cache.entries = 1;
    no_uopc.uop_cache.ways = 1;
    no_uopc.uop_cache.uops_per_entry = 1;
    no_uopc.uop_cache.max_entries_per_pw = 1;
    let mut lab_none = Lab::with_len(no_uopc, len);
    let base = lab_none.run_online(PolicyId::Lru, app, 0);
    let base_b = model.evaluate(&base);

    let mut lab = Lab::with_len(cfg, len);
    lab.prewarm_online(&[PolicyId::Lru, PolicyId::Furbys], &[app]);
    let lru = lab.run_online(PolicyId::Lru, app, 0);
    let lru_b = model.evaluate(&lru);
    let furbys = lab.run_online(PolicyId::Furbys, app, 0);
    let furbys_b = model.evaluate(&furbys);

    let mut t = Table::new(
        "Fig. 13: per-core energy on Clang, normalised to no-uop-cache baseline",
        &["component", "(a) no uop cache", "(b) LRU", "(c) FURBYS"],
    );
    let total = base_b.total();
    let pct = |v: f64| format!("{:.1}%", v / total * 100.0);
    t.row(&[
        "decoder".into(),
        pct(base_b.decoder),
        pct(lru_b.decoder),
        pct(furbys_b.decoder),
    ]);
    t.row(&[
        "icache".into(),
        pct(base_b.icache),
        pct(lru_b.icache),
        pct(furbys_b.icache),
    ]);
    t.row(&[
        "uop cache".into(),
        pct(base_b.uop_cache),
        pct(lru_b.uop_cache),
        pct(furbys_b.uop_cache),
    ]);
    t.row(&[
        "others".into(),
        pct(base_b.others()),
        pct(lru_b.others()),
        pct(furbys_b.others()),
    ]);
    t.row(&[
        "TOTAL".into(),
        pct(total),
        pct(lru_b.total()),
        pct(furbys_b.total()),
    ]);

    let mut t2 = Table::new("Fig. 13 summary", &["metric", "paper", "measured"]);
    t2.row(&[
        "decoder share of baseline".into(),
        "12.5%".into(),
        format!("{:.1}%", base_b.decoder / total * 100.0),
    ]);
    t2.row(&[
        "icache share of baseline".into(),
        "7.7%".into(),
        format!("{:.1}%", base_b.icache / total * 100.0),
    ]);
    t2.row(&[
        "LRU uop cache saving".into(),
        "8.1%".into(),
        format!("{:.1}%", (1.0 - lru_b.total() / total) * 100.0),
    ]);
    t2.row(&[
        "additional FURBYS saving".into(),
        "2.2%".into(),
        format!("{:.1}%", (lru_b.total() - furbys_b.total()) / total * 100.0),
    ]);
    vec![t, t2]
}

/// Fig. 14: where FURBYS's energy reduction over LRU comes from (paper:
/// 73.26% fewer micro-op cache insertions, 16.35% decoder, 7.75% icache).
pub fn fig14_energy_reduction(quick: bool) -> Vec<Table> {
    let cfg = FrontendConfig::zen3();
    let model = EnergyModel::zen3_22nm(&cfg);
    let mut lab = Lab::with_len(cfg, len_for(quick));
    let mut decoder = Vec::new();
    let mut icache = Vec::new();
    let mut uopc = Vec::new();
    let mut other = Vec::new();
    let mut t = Table::new(
        "Fig. 14: energy-reduction breakdown of FURBYS vs LRU",
        &[
            "app",
            "decoder",
            "icache",
            "uop cache (insertions)",
            "others",
        ],
    );
    let apps = apps_for(quick);
    lab.prewarm_online(&[PolicyId::Lru, PolicyId::Furbys], &apps);
    for app in apps {
        let lru = model.evaluate(&lab.run_online(PolicyId::Lru, app, 0));
        let fur = model.evaluate(&lab.run_online(PolicyId::Furbys, app, 0));
        let saved = (lru.total() - fur.total()).max(1e-12);
        let d = (lru.decoder - fur.decoder) / saved * 100.0;
        let i = (lru.icache - fur.icache) / saved * 100.0;
        let u = (lru.uop_cache - fur.uop_cache) / saved * 100.0;
        let o = 100.0 - d - i - u;
        decoder.push(d);
        icache.push(i);
        uopc.push(u);
        other.push(o);
        t.row(&[
            app.name().to_string(),
            format!("{d:.1}%"),
            format!("{i:.1}%"),
            format!("{u:.1}%"),
            format!("{o:.1}%"),
        ]);
    }
    t.row(&[
        "MEAN".into(),
        format!("{:.1}%", mean(&decoder)),
        format!("{:.1}%", mean(&icache)),
        format!("{:.1}%", mean(&uopc)),
        format!("{:.1}%", mean(&other)),
    ]);
    let mut t2 = Table::new("Fig. 14 summary", &["source", "paper", "measured"]);
    t2.row(&[
        "uop cache insertions".into(),
        "73.26%".into(),
        format!("{:.1}%", mean(&uopc)),
    ]);
    t2.row(&[
        "decoder".into(),
        "16.35%".into(),
        format!("{:.1}%", mean(&decoder)),
    ]);
    t2.row(&[
        "icache".into(),
        "7.75%".into(),
        format!("{:.1}%", mean(&icache)),
    ]);
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig02_runs() {
        let tables = fig02_perfect_structures(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3); // 2 quick apps + MEAN
    }

    #[test]
    fn quick_fig13_normalises_to_baseline() {
        let tables = fig13_energy_breakdown(true);
        let s = tables[0].render();
        assert!(s.contains("TOTAL") && s.contains("100.0%"));
    }
}
