//! Runs every experiment in the registry and rewrites `EXPERIMENTS.md` with
//! the paper-vs-measured results.
//!
//! ```text
//! cargo run -p uopcache-bench --release --bin reproduce-all [-- quick] [out.md]
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use uopcache_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick") || std::env::var("UOPCACHE_QUICK").is_ok();
    let out_path = args
        .iter()
        .find(|a| a.ends_with(".md"))
        .cloned()
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());

    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        md,
        "Reproduction of every table and figure of *From Optimal to Practical: \
         Efficient Micro-op Cache Replacement Policies for Data Center Applications* \
         (HPCA 2025) on the synthetic workload substrate described in `DESIGN.md`. \
         Absolute numbers differ from the paper (different traces, simplified \
         simulator); the *shapes* — orderings, ratios, crossovers — are the \
         reproduction target. Regenerate with \
         `cargo run -p uopcache-bench --release --bin reproduce-all`{}.\n",
        if quick {
            " (this file was produced in QUICK mode)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        md,
        "## Known deviations\n\n\
         1. **GHRP does not replicate as the strongest prior policy.** On the \
         synthetic traces its history-indexed dead-block predictor lands between \
         SRRIP and SHiP++ rather than at the paper's 7.81 %; the strongest prior \
         policy here is Thermometer. The headline ratio \"FURBYS vs. best \
         existing\" is therefore computed against Thermometer and comes out \
         smaller than the paper's 1.84x while preserving the claim that FURBYS \
         clearly beats every prior policy. Likely cause: the path-history \
         correlation GHRP exploits is weaker in our call-chain workload model \
         than in real server binaries.\n\
         2. **Mockingjay is slightly negative** (the paper shows it small but \
         positive); its sampled reuse-distance prediction degenerates when every \
         PC maps to a single PW, which the paper itself observes in SIII-E.\n\
         3. **Fig. 2's perfect-uop-cache bound is larger than the paper's 7.41 %** \
         because the synthetic traces run at a higher baseline miss rate \
         (calibrated to reproduce the replacement-policy headroom of Figs. 8/10); \
         the qualitative claim — the micro-op cache is the largest PPW lever — \
         holds.\n\
         4. **Offline-policy miss reductions are measured against a synchronous \
         LRU baseline** (no asynchronous-insertion races), mirroring the paper's \
         perfect-setup methodology for bound studies; online policies run \
         through the full timed frontend.\n\
         5. **The pitfall detector is roughly neutral here** (Fig. 20: depth 0 \
         and depth 2 within ~0.1 %), while the paper finds depth 2 best. Its \
         replacement coverage at depth 2 (~95 %) is close to the paper's \
         88.68 %, but the synthetic phase structure produces less of the \
         `{{A, I}}^n` thrash the detector exists to break.\n"
    );

    let total = Instant::now();
    for exp in experiments::all() {
        let t0 = Instant::now();
        eprintln!("running {} — {}", exp.id, exp.caption);
        println!("\n################ {} — {}\n", exp.id, exp.caption);
        let _ = writeln!(md, "## {} — {}\n", exp.id, exp.caption);
        for table in (exp.run)(quick) {
            table.print();
            md.push_str(&table.render_markdown());
            md.push('\n');
        }
        let _ = writeln!(md, "_runtime: {:.1?}_\n", t0.elapsed());
    }
    let _ = writeln!(md, "---\n\nTotal runtime: {:.1?}.", total.elapsed());

    std::fs::write(&out_path, md).expect("write experiments file");
    eprintln!("wrote {out_path} in {:?}", total.elapsed());
}
