//! Runs every experiment in the registry and rewrites `EXPERIMENTS.md` with
//! the paper-vs-measured results.
//!
//! ```text
//! cargo run -p uopcache-bench --release --bin reproduce-all [-- quick] [--jobs N] [out.md]
//! ```
//!
//! Experiments run serially (their tables are ordered), but each one fans
//! its per-(app, policy) simulation tasks out through the `uopcache-exec`
//! engine; `--jobs N` (default: available parallelism, or `UOPCACHE_JOBS`)
//! sets the worker count. Results are bit-identical for every `--jobs`
//! value — `--jobs 1` reproduces the serial path exactly. A panicking
//! experiment is reported as a failure row instead of aborting the run.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use uopcache_bench::experiments;
use uopcache_bench::sweep;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick") || std::env::var("UOPCACHE_QUICK").is_ok();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    if let Some(n) = jobs {
        sweep::set_jobs(n);
    }
    let out_path = args
        .iter()
        .find(|a| a.ends_with(".md"))
        .cloned()
        .unwrap_or_else(|| "EXPERIMENTS.md".to_string());

    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        md,
        "Reproduction of every table and figure of *From Optimal to Practical: \
         Efficient Micro-op Cache Replacement Policies for Data Center Applications* \
         (HPCA 2025) on the synthetic workload substrate described in `DESIGN.md`. \
         Absolute numbers differ from the paper (different traces, simplified \
         simulator); the *shapes* — orderings, ratios, crossovers — are the \
         reproduction target. Regenerate with \
         `cargo run -p uopcache-bench --release --bin reproduce-all`{}.\n",
        if quick {
            " (this file was produced in QUICK mode)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        md,
        "## Known deviations\n\n\
         1. **GHRP does not replicate as the strongest prior policy.** On the \
         synthetic traces its history-indexed dead-block predictor lands between \
         SRRIP and SHiP++ rather than at the paper's 7.81 %; the strongest prior \
         policy here is Thermometer. The headline ratio \"FURBYS vs. best \
         existing\" is therefore computed against Thermometer and comes out \
         smaller than the paper's 1.84x while preserving the claim that FURBYS \
         clearly beats every prior policy. Likely cause: the path-history \
         correlation GHRP exploits is weaker in our call-chain workload model \
         than in real server binaries.\n\
         2. **Mockingjay is slightly negative** (the paper shows it small but \
         positive); its sampled reuse-distance prediction degenerates when every \
         PC maps to a single PW, which the paper itself observes in SIII-E.\n\
         3. **Fig. 2's perfect-uop-cache bound is larger than the paper's 7.41 %** \
         because the synthetic traces run at a higher baseline miss rate \
         (calibrated to reproduce the replacement-policy headroom of Figs. 8/10); \
         the qualitative claim — the micro-op cache is the largest PPW lever — \
         holds.\n\
         4. **Offline-policy miss reductions are measured against a synchronous \
         LRU baseline** (no asynchronous-insertion races), mirroring the paper's \
         perfect-setup methodology for bound studies; online policies run \
         through the full timed frontend.\n\
         5. **The pitfall detector is roughly neutral here** (Fig. 20: depth 0 \
         and depth 2 within ~0.1 %), while the paper finds depth 2 best. Its \
         replacement coverage at depth 2 (~95 %) is close to the paper's \
         88.68 %, but the synthetic phase structure produces less of the \
         `{{A, I}}^n` thrash the detector exists to break.\n"
    );

    let total = Instant::now();
    let mut completed = 0usize;
    let mut failures: Vec<(String, String)> = Vec::new();
    let all = experiments::all();
    let count = all.len();
    for exp in all {
        let t0 = Instant::now();
        eprintln!(
            "running {} — {} [{} jobs]",
            exp.id,
            exp.caption,
            sweep::current_jobs()
        );
        println!("\n################ {} — {}\n", exp.id, exp.caption);
        let _ = writeln!(md, "## {} — {}\n", exp.id, exp.caption);
        // An experiment that panics becomes a failure row, not an abort:
        // the remaining experiments still run and the report still renders.
        match catch_unwind(AssertUnwindSafe(|| (exp.run)(quick))) {
            Ok(tables) => {
                for table in tables {
                    table.print();
                    md.push_str(&table.render_markdown());
                    md.push('\n');
                }
                completed += 1;
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                eprintln!("FAILED {}: {message}", exp.id);
                let _ = writeln!(md, "**FAILED**: `{message}`\n");
                failures.push((exp.id.to_string(), message));
            }
        }
        let elapsed = t0.elapsed();
        eprintln!(
            "finished {} in {elapsed:.1?} ({completed}/{count} done, {:.2} experiments/min)",
            exp.id,
            completed as f64 / (total.elapsed().as_secs_f64() / 60.0).max(1e-9)
        );
        let _ = writeln!(md, "_runtime: {elapsed:.1?}_\n");
    }
    let _ = writeln!(md, "---\n\nTotal runtime: {:.1?}.", total.elapsed());
    if !failures.is_empty() {
        let _ = writeln!(md, "\n## Failed experiments\n");
        for (id, message) in &failures {
            let _ = writeln!(md, "- `{id}`: {message}");
        }
    }

    std::fs::write(&out_path, md).expect("write experiments file");
    eprintln!(
        "wrote {out_path} in {:?} ({completed}/{count} experiments ok)",
        total.elapsed()
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
