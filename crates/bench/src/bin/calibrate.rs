//! Calibration driver: one compact table with the headline shapes — per-app
//! miss reduction of every online policy and offline oracle against LRU.
//! Used when tuning the workload model or policy parameters.
//!
//! ```text
//! cargo run -p uopcache-bench --release --bin calibrate [accesses]
//! ```

use std::time::Instant;
use uopcache_bench::policies::PolicyId;
use uopcache_bench::runs::{mean, Lab};
use uopcache_core::Flack;
use uopcache_model::FrontendConfig;
use uopcache_trace::AppId;

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let mut lab = Lab::with_len(FrontendConfig::zen3(), len);
    let t0 = Instant::now();
    println!("app          LRUmiss%  SRRIP  SHiP++  Mockj   GHRP  Thermo FURBYS |  Belady    FOO      A   A+VC  FLACK");
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); PolicyId::ONLINE.len() - 1 + 5];
    for app in AppId::ALL {
        let lru = lab.run_online(PolicyId::Lru, app, 0);
        print!(
            "{:<12} {:>8.2}",
            app.name(),
            lru.uopc.uop_miss_rate() * 100.0
        );
        let mut ci = 0;
        for &p in &PolicyId::ONLINE[1..] {
            let red = lab.online_miss_reduction(p, app);
            print!(" {:>6.2}", red);
            cols[ci].push(red);
            ci += 1;
        }
        print!(" |");
        let bel = {
            let lru_s = lab.run_sync_lru(app);
            lab.run_belady(app).miss_reduction_vs(&lru_s)
        };
        print!(" {:>7.2}", bel);
        cols[ci].push(bel);
        ci += 1;
        for v in [
            Flack::ablation(false, false, false),
            Flack::ablation(true, false, false),
            Flack::ablation(true, true, false),
            Flack::new(),
        ] {
            let red = lab.offline_miss_reduction(v, app);
            print!(" {:>6.2}", red);
            cols[ci].push(red);
            ci += 1;
        }
        println!();
    }
    print!("{:<12} {:>8}", "MEAN", "");
    for c in &cols[..6] {
        print!(" {:>6.2}", mean(c));
    }
    print!(" |");
    print!(" {:>7.2}", mean(&cols[6]));
    for c in &cols[7..] {
        print!(" {:>6.2}", mean(c));
    }
    println!();
    println!("elapsed: {:?}", t0.elapsed());
}
