//! The parallel sweep layer: a process-wide worker-count knob, canonical
//! task keying, and a deterministic `(app × policy)` sweep whose merged
//! report renders to canonical JSON.
//!
//! Determinism contract (inherited from `uopcache-exec` and extended here):
//! every task is a pure function of its [`TaskKey`] — config label, input
//! variant, trace length, app and policy — and any randomness comes from the
//! key-derived seed. Reports merge cells in **key order**, never completion
//! order, and [`SweepReport::to_json`] renders fields in a fixed order with
//! derived metrics rounded to six decimals. The JSON is therefore
//! byte-identical for every `--jobs` value.

use crate::apps::trace_for_scaled;
use crate::policies::{PolicyId, ProfileInputs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use uopcache_exec::{Engine, TaskFailure, TaskKey, TaskProfile};
use uopcache_model::json::Json;
use uopcache_model::{
    CacheStats, EventCounts, FrontendConfig, LookupTrace, SimResult, UopCacheStats,
};
use uopcache_obs::{Event, MetricsRecorder, MetricsRegistry, SamplingRecorder};
use uopcache_sample::{simulate_interval, SampleConfig, SamplePlan};
use uopcache_sim::{Frontend, SimOptions};
use uopcache_trace::AppId;

/// The canonical-JSON schema version stamped on every report this crate
/// renders ([`SweepReport::to_json`], the CLI's `inspect`). Bump it whenever
/// a field is added, removed or re-ordered so downstream tooling can detect
/// incompatible output.
pub const SCHEMA_VERSION: u64 = 1;

/// The sampling period of `--metrics` sweeps: each cell retains roughly one
/// event in this many, chosen by the task-key-derived seed (see
/// [`uopcache_obs::SamplingRecorder`]), so the retained subset is a pure
/// function of the task.
pub const SAMPLE_EVERY: u64 = 64;

/// The process-wide worker count. `0` means "not set": fall back to the
/// `UOPCACHE_JOBS` environment variable, then to the machine's available
/// parallelism.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count (the `--jobs N` flag). `1` reproduces
/// the serial path exactly; `0` resets to the default resolution order.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::SeqCst);
}

/// The effective worker count: the value of [`set_jobs`] if set, else
/// `UOPCACHE_JOBS` if set to a positive integer, else the machine's
/// available parallelism.
pub fn current_jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::env::var("UOPCACHE_JOBS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(Engine::default_parallelism),
        n => n,
    }
}

/// An engine sized by [`current_jobs`].
pub fn engine() -> Engine {
    Engine::new(current_jobs())
}

/// A short label identifying a frontend configuration in task keys,
/// e.g. `uopc4096x8`.
pub fn config_label(cfg: &FrontendConfig) -> String {
    format!("uopc{}x{}", cfg.uop_cache.entries, cfg.uop_cache.ways)
}

/// Runs keyed tasks through the process-wide engine and unwraps every value
/// in submission order — the drop-in replacement for an experiment driver's
/// serial `for` loop.
///
/// # Panics
///
/// Panics with the full list of structured failures if any task panicked
/// (experiment tables cannot be rendered from partial results).
pub fn par_map<I, R, F>(context: &str, tasks: Vec<(TaskKey, I)>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(&TaskKey, u64, I) -> R + Sync,
{
    engine().run(tasks, f).expect_all(context)
}

/// A task key for one per-app stage of an experiment, e.g.
/// `fig10-offline/kafka`.
pub fn app_key(stage: &str, app: AppId) -> TaskKey {
    TaskKey::new([stage, app.name()])
}

/// One `(app × policy)` sweep request.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// The frontend configuration under test.
    pub cfg: FrontendConfig,
    /// Human name for the configuration (used in task keys), e.g. `zen3`.
    pub config_name: String,
    /// Applications to sweep.
    pub apps: Vec<AppId>,
    /// Policy names to sweep; each must parse as a [`PolicyId`] (an unknown
    /// name becomes a structured per-cell failure, not a sweep abort).
    pub policies: Vec<String>,
    /// Input variant for trace generation.
    pub variant: u32,
    /// Trace length per app.
    pub len: usize,
    /// When set, every cell carries sampled events and a metrics registry
    /// (and the report gains merged totals and per-task profiles). Still
    /// byte-identical for every worker count.
    pub metrics: bool,
    /// Representative-interval sampling: when set, cut each trace into
    /// intervals of this many micro-ops, simulate only cluster
    /// representatives (plus dispersion probes) and reconstruct whole-trace
    /// metrics by cluster weight. Cells gain a `sampled` JSON object with
    /// the cluster count, interval count, weights and the reported error
    /// bound. `--metrics` recorders are not attached in sampled mode.
    pub sample: Option<u64>,
    /// Trace-length multiplier (epochs of phase-structured repetition with
    /// drift). `1` — the default — generates exactly the unscaled trace.
    pub scale: u64,
}

impl SweepSpec {
    /// Renders the spec as canonical JSON — the wire form of a serving job.
    ///
    /// Only the fields that name simulation *work* are included (never the
    /// worker count), so the rendering doubles as the spec's identity: two
    /// specs with equal JSON produce byte-identical [`SweepReport`]s.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            vec![
                ("config".to_string(), Json::Str(self.config_name.clone())),
                (
                    "entries".to_string(),
                    Json::U64(u64::from(self.cfg.uop_cache.entries)),
                ),
                (
                    "ways".to_string(),
                    Json::U64(u64::from(self.cfg.uop_cache.ways)),
                ),
                (
                    "apps".to_string(),
                    Json::Arr(
                        self.apps
                            .iter()
                            .map(|a| Json::Str(a.name().to_string()))
                            .collect(),
                    ),
                ),
                (
                    "policies".to_string(),
                    Json::Arr(self.policies.iter().map(|p| Json::Str(p.clone())).collect()),
                ),
                ("variant".to_string(), Json::U64(u64::from(self.variant))),
                ("len".to_string(), Json::U64(self.len as u64)),
                ("metrics".to_string(), Json::Bool(self.metrics)),
            ]
            .into_iter()
            // Default-valued sampling fields are omitted so pre-sampling wire
            // forms (and their job ids) are byte-identical to before.
            .chain((self.scale > 1).then(|| ("scale".to_string(), Json::U64(self.scale))))
            .chain(self.sample.map(|s| ("sample".to_string(), Json::U64(s))))
            .collect(),
        )
    }

    /// Reconstructs a spec from the wire form produced by
    /// [`to_json`](Self::to_json) — the job → sweep-cell mapping the serving
    /// layer uses. `config` must name a known base configuration (`zen3` or
    /// `zen4`); `entries`/`ways` default to that base when absent; `apps`
    /// must name Table II applications; `policies` are resolved against the
    /// full roster (case-insensitively) to their canonical names, so a
    /// served job keys its tasks exactly like the offline `sweep` CLI.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or unresolvable field.
    pub fn from_json(j: &Json) -> Result<SweepSpec, String> {
        let text = |field: &str| -> Result<String, String> {
            j.field(field)
                .map_err(|e| e.to_string())?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field {field:?} must be a string"))
        };
        let config_name = text("config")?;
        let mut cfg = match config_name.as_str() {
            "zen3" => FrontendConfig::zen3(),
            "zen4" => FrontendConfig::zen4(),
            other => return Err(format!("unknown config {other:?} (zen3 or zen4)")),
        };
        let geometry = |field: &str, default: u32| -> Result<u32, String> {
            match j.field(field) {
                Err(_) => Ok(default),
                Ok(v) => u32::try_from(
                    v.as_u64()
                        .ok_or_else(|| format!("field {field:?} must be an unsigned integer"))?,
                )
                .map_err(|_| format!("field {field:?} out of range")),
            }
        };
        cfg.uop_cache = cfg
            .uop_cache
            .with_entries(geometry("entries", cfg.uop_cache.entries)?)
            .with_ways(geometry("ways", cfg.uop_cache.ways)?);
        let names = |field: &str| -> Result<Vec<String>, String> {
            j.field(field)
                .map_err(|e| e.to_string())?
                .as_arr()
                .ok_or_else(|| format!("field {field:?} must be an array"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("field {field:?} must hold strings"))
                })
                .collect()
        };
        let apps = names("apps")?
            .iter()
            .map(|name| {
                AppId::ALL
                    .into_iter()
                    .find(|a| a.name() == name)
                    .ok_or_else(|| format!("unknown app {name:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if apps.is_empty() {
            return Err("field \"apps\" must not be empty".to_string());
        }
        let registry = crate::policies::PolicyRegistry::all();
        let policies = names("policies")?
            .iter()
            .map(|p| registry.resolve(p).map(|id| id.name().to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        if policies.is_empty() {
            return Err("field \"policies\" must not be empty".to_string());
        }
        let uint = |field: &str, default: u64| -> Result<u64, String> {
            match j.field(field) {
                Err(_) => Ok(default),
                Ok(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("field {field:?} must be an unsigned integer")),
            }
        };
        let variant = u32::try_from(uint("variant", 0)?)
            .map_err(|_| "field \"variant\" out of range".to_string())?;
        let len = usize::try_from(uint("len", 100_000)?)
            .map_err(|_| "field \"len\" out of range".to_string())?;
        let metrics = match j.field("metrics") {
            Err(_) => false,
            Ok(v) => v
                .as_bool()
                .ok_or_else(|| "field \"metrics\" must be a bool".to_string())?,
        };
        let scale = uint("scale", 1)?;
        if scale == 0 {
            return Err("field \"scale\" must be at least 1".to_string());
        }
        let sample = match j.field("sample") {
            Err(_) => None,
            Ok(v) => {
                let s = v
                    .as_u64()
                    .ok_or_else(|| "field \"sample\" must be an unsigned integer".to_string())?;
                if s == 0 {
                    return Err("field \"sample\" must be a positive interval size".to_string());
                }
                Some(s)
            }
        };
        Ok(SweepSpec {
            cfg,
            config_name,
            apps,
            policies,
            variant,
            len,
            metrics,
            sample,
            scale,
        })
    }

    /// The key segment naming the trace length, e.g. `len100000` — or
    /// `len100000x100` for a scaled trace, so scaled sweeps never collide
    /// with (or perturb the seeds of) existing unscaled ones.
    fn len_segment(&self) -> String {
        if self.scale > 1 {
            format!("len{}x{}", self.len, self.scale)
        } else {
            format!("len{}", self.len)
        }
    }

    /// The key naming one `(app, policy)` simulation task of this sweep.
    pub fn task_key(&self, app: AppId, policy: &str) -> TaskKey {
        TaskKey::new([
            self.config_name.as_str(),
            &format!("v{}", self.variant),
            &self.len_segment(),
            app.name(),
            policy,
        ])
    }

    /// The key naming the trace + profile preparation task for one app.
    fn prep_key(&self, app: AppId) -> TaskKey {
        TaskKey::new([
            self.config_name.as_str(),
            &format!("v{}", self.variant),
            &self.len_segment(),
            app.name(),
            "prepare",
        ])
    }
}

/// Sampled observability captured for one cell when [`SweepSpec::metrics`]
/// is on.
#[derive(Clone, Debug)]
pub struct CellObs {
    /// The retained (1-in-[`SAMPLE_EVERY`]) event subset, oldest first.
    pub events: Vec<Event>,
    /// The metrics the cell's [`MetricsRecorder`] derived from the *full*
    /// event stream (sampling only thins the retained events).
    pub metrics: MetricsRegistry,
}

/// How a sampled cell was reconstructed: the clustering shape, the
/// reconstruction weights, and the reported error bound on the hit rate.
#[derive(Clone, Debug)]
pub struct SampledCell {
    /// Number of clusters (and therefore simulated representatives).
    pub k: usize,
    /// Number of fixed-uop intervals the trace was cut into.
    pub intervals: usize,
    /// Per-cluster reconstruction weights (micro-op shares; sum to 1).
    pub weights: Vec<f64>,
    /// Reported bound on `|sampled hit rate − full-simulation hit rate|`,
    /// from representative↔probe dispersion plus a fixed floor.
    pub est_error: f64,
}

/// One merged sweep cell: the stats of one `(app, policy)` run.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The task key (`config/variant/len/app/policy`).
    pub key: TaskKey,
    /// The seed the task ran with (derived from the key).
    pub seed: u64,
    /// The application.
    pub app: AppId,
    /// The policy name.
    pub policy: String,
    /// The full simulation result (in sampled mode: the weighted
    /// reconstruction).
    pub result: SimResult,
    /// Micro-ops in the cell's input trace (the denominator reconstruction
    /// weights are validated against).
    pub trace_uops: u64,
    /// Sampled events and metrics, present only on `--metrics` sweeps.
    pub obs: Option<CellObs>,
    /// Reconstruction metadata, present only on `--sample` sweeps.
    pub sampled: Option<SampledCell>,
}

impl SweepCell {
    /// Micro-op hit rate, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        self.result.uopc.uop_hit_rate()
    }

    /// Micro-op cache misses per thousand retired instructions.
    pub fn mpki(&self) -> f64 {
        let kilo_insns = self.result.events.retired_instructions as f64 / 1000.0;
        if kilo_insns > 0.0 {
            self.result.uopc.uops_missed as f64 / kilo_insns
        } else {
            0.0
        }
    }
}

/// The merged outcome of [`run_sweep`]: cells sorted by task key, failures
/// sorted by task key, and the batch wall-clock time.
#[derive(Debug)]
pub struct SweepReport {
    /// The sweep request.
    pub spec: SweepSpec,
    /// One cell per completed `(app, policy)` task, in key order.
    pub cells: Vec<SweepCell>,
    /// Structured failures of panicked tasks, in key order.
    pub failures: Vec<TaskFailure>,
    /// Per-task execution profiles of the simulation stage, in key order.
    /// Rendered to JSON only on `--metrics` sweeps, and only through the
    /// scheduling-independent fields (queue wait and run ticks — all zero
    /// under the engine's default null clock).
    pub profiles: Vec<TaskProfile>,
    /// Wall-clock time of the simulation stage.
    pub elapsed: Duration,
}

impl SweepReport {
    /// Renders the report as canonical JSON: fixed field order, cells and
    /// failures sorted by task key, derived metrics rounded to six decimals.
    /// Byte-identical for every worker count — this string is what the
    /// differential and golden tests compare.
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut fields = vec![
                    ("key".to_string(), Json::Str(c.key.to_string())),
                    ("seed".to_string(), Json::U64(c.seed)),
                    ("app".to_string(), Json::Str(c.app.name().to_string())),
                    ("policy".to_string(), Json::Str(c.policy.clone())),
                    (
                        "uops_requested".to_string(),
                        Json::U64(c.result.uopc.uops_requested),
                    ),
                    ("uops_hit".to_string(), Json::U64(c.result.uopc.uops_hit)),
                    (
                        "uops_missed".to_string(),
                        Json::U64(c.result.uopc.uops_missed),
                    ),
                    (
                        "insertions".to_string(),
                        Json::U64(c.result.uopc.insertions),
                    ),
                    ("bypasses".to_string(), Json::U64(c.result.uopc.bypasses)),
                    (
                        "evictions".to_string(),
                        Json::U64(c.result.uopc.evicted_pws),
                    ),
                    ("cycles".to_string(), Json::U64(c.result.events.cycles)),
                    (
                        "retired_instructions".to_string(),
                        Json::U64(c.result.events.retired_instructions),
                    ),
                    ("trace_uops".to_string(), Json::U64(c.trace_uops)),
                    ("hit_rate".to_string(), Json::F64(round6(c.hit_rate()))),
                    ("mpki".to_string(), Json::F64(round6(c.mpki()))),
                    ("ipc".to_string(), Json::F64(round6(c.result.ipc()))),
                ];
                if let Some(s) = &c.sampled {
                    fields.push((
                        "sampled".to_string(),
                        Json::Obj(vec![
                            ("k".to_string(), Json::U64(s.k as u64)),
                            ("intervals".to_string(), Json::U64(s.intervals as u64)),
                            (
                                "weights".to_string(),
                                Json::Arr(
                                    s.weights.iter().map(|&w| Json::F64(round6(w))).collect(),
                                ),
                            ),
                            ("est_error".to_string(), Json::F64(round6(s.est_error))),
                        ]),
                    ));
                }
                if let Some(obs) = &c.obs {
                    fields.push((
                        "events".to_string(),
                        Json::Arr(obs.events.iter().map(Event::to_json).collect()),
                    ));
                    fields.push(("metrics".to_string(), obs.metrics.to_json()));
                }
                Json::Obj(fields)
            })
            .collect();
        let failures = self
            .failures
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("key".to_string(), Json::Str(f.key.to_string())),
                    ("seed".to_string(), Json::U64(f.seed)),
                    ("message".to_string(), Json::Str(f.message.clone())),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema_version".to_string(), Json::U64(SCHEMA_VERSION)),
            (
                "config".to_string(),
                Json::Str(self.spec.config_name.clone()),
            ),
            (
                "entries".to_string(),
                Json::U64(u64::from(self.spec.cfg.uop_cache.entries)),
            ),
            (
                "ways".to_string(),
                Json::U64(u64::from(self.spec.cfg.uop_cache.ways)),
            ),
            (
                "variant".to_string(),
                Json::U64(u64::from(self.spec.variant)),
            ),
            ("len".to_string(), Json::U64(self.spec.len as u64)),
        ];
        if self.spec.scale > 1 {
            fields.push(("scale".to_string(), Json::U64(self.spec.scale)));
        }
        if let Some(s) = self.spec.sample {
            fields.push(("sample".to_string(), Json::U64(s)));
        }
        fields.push(("cells".to_string(), Json::Arr(cells)));
        fields.push(("failures".to_string(), Json::Arr(failures)));
        if self.spec.metrics {
            let mut totals = MetricsRegistry::new();
            for c in &self.cells {
                if let Some(obs) = &c.obs {
                    totals.merge(&obs.metrics);
                }
            }
            fields.push(("totals".to_string(), totals.to_json()));
            let profiles = self
                .profiles
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("key".to_string(), Json::Str(p.key.to_string())),
                        ("seed".to_string(), Json::U64(p.seed)),
                        ("queue_wait".to_string(), Json::U64(p.queue_wait())),
                        ("run".to_string(), Json::U64(p.run_ticks())),
                    ])
                })
                .collect();
            fields.push(("profiles".to_string(), Json::Arr(profiles)));
        }
        Json::Obj(fields).to_string()
    }
}

/// Rounds to six decimals so canonical JSON stays readable while remaining a
/// pure function of the (deterministic) metric value.
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Runs an `(app × policy)` sweep through `engine`, in two stages:
///
/// 1. one task per app prepares the trace and profile inputs (both pure
///    functions of `(app, variant, len, cfg)`);
/// 2. one task per `(app, policy)` runs the timed frontend, seeding any
///    randomized policy from the task key.
///
/// Panics in stage 2 become structured [`SweepReport::failures`]; sibling
/// cells are unaffected.
///
/// # Panics
///
/// Panics only if a *preparation* task fails (no cell of that app could be
/// simulated).
pub fn run_sweep(spec: &SweepSpec, engine: &Engine) -> SweepReport {
    if let Some(interval_uops) = spec.sample {
        return run_sampled_sweep(spec, engine, interval_uops);
    }
    let cfg = spec.cfg;
    let variant = spec.variant;
    let len = spec.len;
    let scale = spec.scale;

    let prep_tasks: Vec<(TaskKey, AppId)> = spec
        .apps
        .iter()
        .map(|&app| (spec.prep_key(app), app))
        .collect();
    let prepared: Vec<(AppId, Arc<(LookupTrace, ProfileInputs)>)> = engine
        .run(prep_tasks, move |_key, _seed, app| {
            let trace = trace_for_scaled(app, variant, len, scale);
            let profiles = ProfileInputs::build(&cfg, &trace);
            (app, Arc::new((trace, profiles)))
        })
        .expect_all("sweep preparation");

    let mut sim_tasks = Vec::new();
    for (app, shared) in &prepared {
        for policy in &spec.policies {
            sim_tasks.push((
                spec.task_key(*app, policy),
                (*app, policy.clone(), Arc::clone(shared)),
            ));
        }
    }
    let metrics = spec.metrics;
    let outcome = engine.run(sim_tasks, move |_key, seed, (app, policy, shared)| {
        let (trace, profiles): &(LookupTrace, ProfileInputs) = &shared;
        let id = policy.parse::<PolicyId>().unwrap_or_else(|e| panic!("{e}"));
        let mut builder = Frontend::builder(cfg)
            .policy(id.build(&cfg, profiles, seed))
            .options(SimOptions::default());
        if metrics {
            builder = builder.recorder(MetricsRecorder::new(Box::new(SamplingRecorder::new(
                seed,
                SAMPLE_EVERY,
            ))));
        }
        let mut frontend = builder.build();
        let result = frontend.run(trace);
        let obs = frontend.take_recorder().map(|r| CellObs {
            events: r.events(),
            metrics: r.metrics().cloned().unwrap_or_default(),
        });
        (app, policy, result, trace.total_uops(), obs)
    });
    let elapsed = outcome.elapsed;

    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for o in outcome.outcomes {
        match o.result {
            Ok((app, policy, result, trace_uops, obs)) => cells.push(SweepCell {
                key: o.key,
                seed: o.seed,
                app,
                policy,
                result,
                trace_uops,
                obs,
                sampled: None,
            }),
            Err(_) => {
                if let Some(f) = o.failure() {
                    failures.push(f);
                }
            }
        }
    }
    // Merge by key, never by completion or submission order.
    cells.sort_by(|a, b| a.key.cmp(&b.key));
    failures.sort_by(|a, b| a.key.cmp(&b.key));
    let mut profiles = outcome.profiles;
    profiles.sort_by(|a, b| a.key.cmp(&b.key));

    SweepReport {
        spec: spec.clone(),
        cells,
        failures,
        profiles,
        elapsed,
    }
}

/// One prepared app of a sampled sweep: the (possibly scaled) trace, its
/// sampling plan, and profile inputs trained on the representative subset.
struct SampledPrep {
    trace: LookupTrace,
    plan: SamplePlan,
    profiles: ProfileInputs,
}

/// Which cluster member a sampled segment task simulates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Segment {
    /// The j-th stratified sample point; its result feeds the cluster's
    /// reconstructed average.
    Point(usize),
    /// The farthest member of a single-point cluster; its disagreement with
    /// the point feeds the reported error bound.
    Probe,
}

/// The sampled variant of [`run_sweep`]: per app, slice + fingerprint +
/// cluster the trace once (stage 1), then simulate one task per
/// `(app, policy, cluster segment)` (stage 2) and reconstruct each cell
/// from its representatives by cluster weight.
///
/// Keys: segment tasks are children of the cell key (`…/LRU/rep0`,
/// `…/LRU/probe0`), and any randomized policy is seeded from the **cell**
/// key — so the cell is a pure function of the sweep request, and the
/// merged report is byte-identical at any worker count.
fn run_sampled_sweep(spec: &SweepSpec, engine: &Engine, interval_uops: u64) -> SweepReport {
    let cfg = spec.cfg;
    let variant = spec.variant;
    let len = spec.len;
    let scale = spec.scale;

    let prep_tasks: Vec<(TaskKey, AppId)> = spec
        .apps
        .iter()
        .map(|&app| (spec.prep_key(app), app))
        .collect();
    let prepared: Vec<(AppId, Arc<SampledPrep>)> = engine
        .run(prep_tasks, move |_key, seed, app| {
            let trace = trace_for_scaled(app, variant, len, scale);
            let plan = SamplePlan::build(&trace, &SampleConfig::new(interval_uops, seed));
            // Profile-guided policies train on the representative subset,
            // keeping sampled preparation O(k · interval) instead of
            // O(trace) — the whole point at scale 100.
            let train = plan.representative_trace(&trace);
            let profiles = ProfileInputs::build(&cfg, &train);
            (
                app,
                Arc::new(SampledPrep {
                    trace,
                    plan,
                    profiles,
                }),
            )
        })
        .expect_all("sampled sweep preparation");

    type SegInput = (String, Arc<SampledPrep>, usize, Segment, u64);
    let mut seg_tasks: Vec<(TaskKey, SegInput)> = Vec::new();
    for (app, shared) in &prepared {
        for policy in &spec.policies {
            let cell_key = spec.task_key(*app, policy);
            let cell_seed = cell_key.seed();
            for (c, cluster) in shared.plan.clusters.iter().enumerate() {
                for j in 0..cluster.points.len() {
                    seg_tasks.push((
                        cell_key.child(format!("pt{c}.{j}")),
                        (
                            policy.clone(),
                            Arc::clone(shared),
                            c,
                            Segment::Point(j),
                            cell_seed,
                        ),
                    ));
                }
                if cluster.probe.is_some() {
                    seg_tasks.push((
                        cell_key.child(format!("probe{c}")),
                        (
                            policy.clone(),
                            Arc::clone(shared),
                            c,
                            Segment::Probe,
                            cell_seed,
                        ),
                    ));
                }
            }
        }
    }

    let outcome = engine.run(
        seg_tasks,
        move |_key, _seed, (policy, shared, cluster, segment, cell_seed): SegInput| {
            let id = policy.parse::<PolicyId>().unwrap_or_else(|e| panic!("{e}"));
            let plan = &shared.plan;
            let member = match segment {
                Segment::Point(j) => plan.clusters[cluster].points[j],
                Segment::Probe => plan.clusters[cluster]
                    .probe
                    .unwrap_or(plan.clusters[cluster].representative),
            };
            let result = simulate_interval(
                &cfg,
                id.build(&cfg, &shared.profiles, cell_seed),
                &shared.trace,
                plan.warmup_range(member),
                plan.intervals[member].range(),
            );
            (cluster, segment, result)
        },
    );
    let elapsed = outcome.elapsed;

    // Merge: drain segment outcomes cell by cell, in the same nested order
    // they were submitted (the engine returns outcomes in submission order).
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    let mut outcomes = outcome.outcomes.into_iter();
    for (app, shared) in &prepared {
        let plan = &shared.plan;
        let segments_per_cell: usize = plan
            .clusters
            .iter()
            .map(|c| c.points.len() + usize::from(c.probe.is_some()))
            .sum();
        for policy in &spec.policies {
            let cell_key = spec.task_key(*app, policy);
            let cell_seed = cell_key.seed();
            let mut points: Vec<Vec<Option<SimResult>>> = plan
                .clusters
                .iter()
                .map(|c| vec![None; c.points.len()])
                .collect();
            let mut probes: Vec<Option<SimResult>> = vec![None; plan.clusters.len()];
            let mut first_error: Option<String> = None;
            for _ in 0..segments_per_cell {
                let o = outcomes.next().expect("one outcome per submitted segment");
                match o.result {
                    Ok((cluster, Segment::Point(j), result)) => {
                        points[cluster][j] = Some(result);
                    }
                    Ok((cluster, Segment::Probe, result)) => probes[cluster] = Some(result),
                    Err(message) => {
                        if first_error.is_none() {
                            first_error = Some(message);
                        }
                    }
                }
            }
            if let Some(message) = first_error {
                // One structured failure per *cell* (not per segment), keyed
                // like a full-sweep cell so downstream tooling needs no
                // special casing.
                failures.push(TaskFailure {
                    key: cell_key,
                    seed: cell_seed,
                    message,
                });
                continue;
            }
            let points: Vec<Vec<SimResult>> = points
                .into_iter()
                .map(|pts| {
                    pts.into_iter()
                        .map(|r| r.expect("every sample point was submitted"))
                        .collect()
                })
                .collect();
            let (result, sampled) = reconstruct_cell(plan, &points, &probes);
            cells.push(SweepCell {
                key: cell_key,
                seed: cell_seed,
                app: *app,
                policy: policy.clone(),
                result,
                trace_uops: plan.total_uops,
                obs: None,
                sampled: Some(sampled),
            });
        }
    }
    cells.sort_by(|a, b| a.key.cmp(&b.key));
    failures.sort_by(|a, b| a.key.cmp(&b.key));
    let mut profiles = outcome.profiles;
    profiles.sort_by(|a, b| a.key.cmp(&b.key));

    SweepReport {
        spec: spec.clone(),
        cells,
        failures,
        profiles,
        elapsed,
    }
}

/// Reconstructs a whole-trace [`SimResult`] from per-point results: every
/// counter extrapolates per-uop (`Σ count / Σ uops_measured` over the
/// cluster's sample points, `× cluster uops`, summed over clusters),
/// micro-op totals are forced consistent with the exactly-known trace size,
/// and the error bound comes from weighted within-cluster hit-rate
/// dispersion.
fn reconstruct_cell(
    plan: &SamplePlan,
    points: &[Vec<SimResult>],
    probes: &[Option<SimResult>],
) -> (SimResult, SampledCell) {
    let est = |get: &dyn Fn(&SimResult) -> u64| -> u64 {
        let mut acc = 0.0f64;
        for (c, pts) in plan.clusters.iter().zip(points) {
            let count: u64 = pts.iter().map(get).sum();
            let denom: u64 = pts.iter().map(|r| r.uopc.uops_requested).sum();
            acc += count as f64 / denom.max(1) as f64 * c.uops as f64;
        }
        round_count(acc)
    };

    let total = plan.total_uops;
    let uops_hit = est(&|r| r.uopc.uops_hit).min(total);
    let result = SimResult {
        uopc: UopCacheStats {
            lookups: est(&|r| r.uopc.lookups),
            pw_hits: est(&|r| r.uopc.pw_hits),
            pw_partial_hits: est(&|r| r.uopc.pw_partial_hits),
            pw_misses: est(&|r| r.uopc.pw_misses),
            uops_requested: total,
            uops_hit,
            uops_missed: total - uops_hit,
            insertions: est(&|r| r.uopc.insertions),
            entries_written: est(&|r| r.uopc.entries_written),
            bypasses: est(&|r| r.uopc.bypasses),
            evicted_pws: est(&|r| r.uopc.evicted_pws),
            evicted_entries: est(&|r| r.uopc.evicted_entries),
            inclusion_invalidations: est(&|r| r.uopc.inclusion_invalidations),
            cold_miss_uops: est(&|r| r.uopc.cold_miss_uops),
            capacity_miss_uops: est(&|r| r.uopc.capacity_miss_uops),
            conflict_miss_uops: est(&|r| r.uopc.conflict_miss_uops),
            primary_victim_selections: est(&|r| r.uopc.primary_victim_selections),
            fallback_victim_selections: est(&|r| r.uopc.fallback_victim_selections),
        },
        icache: CacheStats {
            accesses: est(&|r| r.icache.accesses),
            hits: est(&|r| r.icache.hits),
            misses: est(&|r| r.icache.misses),
            evictions: est(&|r| r.icache.evictions),
            fills: est(&|r| r.icache.fills),
        },
        btb: CacheStats {
            accesses: est(&|r| r.btb.accesses),
            hits: est(&|r| r.btb.hits),
            misses: est(&|r| r.btb.misses),
            evictions: est(&|r| r.btb.evictions),
            fills: est(&|r| r.btb.fills),
        },
        events: EventCounts {
            cycles: est(&|r| r.events.cycles),
            retired_uops: est(&|r| r.events.retired_uops),
            retired_instructions: est(&|r| r.events.retired_instructions),
            icache_reads: est(&|r| r.events.icache_reads),
            icache_fills: est(&|r| r.events.icache_fills),
            uopc_lookups: est(&|r| r.events.uopc_lookups),
            uopc_entry_reads: est(&|r| r.events.uopc_entry_reads),
            uopc_entry_writes: est(&|r| r.events.uopc_entry_writes),
            decoded_uops: est(&|r| r.events.decoded_uops),
            decoder_active_cycles: est(&|r| r.events.decoder_active_cycles),
            bp_accesses: est(&|r| r.events.bp_accesses),
            btb_accesses: est(&|r| r.events.btb_accesses),
        },
        mispredictions: est(&|r| r.mispredictions),
    };

    let point_rates: Vec<Vec<f64>> = points
        .iter()
        .map(|pts| pts.iter().map(|r| r.uopc.uop_hit_rate()).collect())
        .collect();
    let probe_rates: Vec<Option<f64>> = probes
        .iter()
        .map(|p| p.as_ref().map(|r| r.uopc.uop_hit_rate()))
        .collect();
    let sampled = SampledCell {
        k: plan.k,
        intervals: plan.intervals.len(),
        weights: plan.weights(),
        est_error: plan.error_bound(&point_rates, &probe_rates),
    };
    (result, sampled)
}

/// Rounds a reconstructed (non-negative) counter back to an integer.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn round_count(x: f64) -> u64 {
    x.max(0.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            cfg: FrontendConfig::zen3(),
            config_name: "zen3".to_string(),
            apps: vec![AppId::Kafka, AppId::Postgres],
            policies: vec!["LRU".to_string(), "Random".to_string()],
            variant: 0,
            len: 1_500,
            metrics: false,
            sample: None,
            scale: 1,
        }
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        let spec = tiny_spec();
        let serial = run_sweep(&spec, &Engine::new(1)).to_json();
        let parallel = run_sweep(&spec, &Engine::new(4)).to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn unknown_policy_becomes_a_structured_failure() {
        let mut spec = tiny_spec();
        spec.policies.push("NoSuchPolicy".to_string());
        let report = run_sweep(&spec, &Engine::new(2));
        assert_eq!(report.failures.len(), 2, "one per app");
        assert!(report.failures[0].message.contains("NoSuchPolicy"));
        // Sibling cells are unaffected.
        assert_eq!(report.cells.len(), 4);
    }

    #[test]
    fn cells_are_sorted_by_key_and_json_parses() {
        let report = run_sweep(&tiny_spec(), &Engine::new(2));
        let keys: Vec<String> = report.cells.iter().map(|c| c.key.to_string()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let parsed = Json::parse(&report.to_json()).expect("canonical JSON parses");
        assert_eq!(
            parsed
                .field("cells")
                .expect("cells")
                .as_arr()
                .expect("arr")
                .len(),
            4
        );
    }

    #[test]
    fn metrics_sweep_is_jobs_invariant_and_carries_obs() {
        let mut spec = tiny_spec();
        spec.metrics = true;
        let serial = run_sweep(&spec, &Engine::new(1));
        let parallel = run_sweep(&spec, &Engine::new(4));
        assert_eq!(serial.to_json(), parallel.to_json());
        let parsed = Json::parse(&serial.to_json()).expect("metrics JSON parses");
        assert!(parsed.field("totals").is_ok());
        assert!(parsed.field("profiles").is_ok());
        let cell = &parsed.field("cells").expect("cells").as_arr().expect("arr")[0];
        assert!(cell.field("events").is_ok());
        assert!(cell.field("metrics").is_ok());
        for c in &serial.cells {
            let obs = c.obs.as_ref().expect("metrics mode captures obs");
            assert!(obs.metrics.counter("misses") > 0, "cells saw traffic");
        }
    }

    #[test]
    fn metrics_do_not_change_simulation_results() {
        let plain = run_sweep(&tiny_spec(), &Engine::new(2));
        let mut spec = tiny_spec();
        spec.metrics = true;
        let instrumented = run_sweep(&spec, &Engine::new(2));
        for (a, b) in plain.cells.iter().zip(&instrumented.cells) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.result, b.result, "recorder must not perturb {}", a.key);
        }
    }

    #[test]
    fn schema_version_is_stamped_first() {
        let json = run_sweep(&tiny_spec(), &Engine::new(1)).to_json();
        assert!(
            json.starts_with("{\"schema_version\":1,"),
            "schema_version leads the report: {}",
            &json[..40.min(json.len())]
        );
    }

    #[test]
    fn spec_json_round_trips_and_resolves_canonical_names() {
        let spec = tiny_spec();
        let j = spec.to_json();
        let back = SweepSpec::from_json(&j).expect("wire form round-trips");
        assert_eq!(back.to_json().to_string(), j.to_string());
        assert_eq!(back.cfg, spec.cfg);
        // Lower-case policy names resolve to the canonical figure labels.
        let loose = Json::parse(
            r#"{"config":"zen4","apps":["kafka"],"policies":["lru","ship++"],"len":500}"#,
        )
        .expect("valid JSON");
        let spec = SweepSpec::from_json(&loose).expect("defaults fill in");
        assert_eq!(spec.policies, vec!["LRU", "SHiP++"]);
        assert_eq!(spec.variant, 0);
        assert!(!spec.metrics);
        assert_eq!(spec.cfg, FrontendConfig::zen4());
    }

    #[test]
    fn spec_json_rejects_bad_fields() {
        for bad in [
            r#"{"apps":["kafka"],"policies":["lru"]}"#,
            r#"{"config":"zen9","apps":["kafka"],"policies":["lru"]}"#,
            r#"{"config":"zen3","apps":["nope"],"policies":["lru"]}"#,
            r#"{"config":"zen3","apps":["kafka"],"policies":["belaay"]}"#,
            r#"{"config":"zen3","apps":[],"policies":["lru"]}"#,
            r#"{"config":"zen3","apps":["kafka"],"policies":[]}"#,
            r#"{"config":"zen3","apps":["kafka"],"policies":["lru"],"len":"x"}"#,
        ] {
            let j = Json::parse(bad).expect("valid JSON");
            assert!(
                SweepSpec::from_json(&j).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn jobs_knob_resolution_order() {
        set_jobs(3);
        assert_eq!(current_jobs(), 3);
        set_jobs(0);
        assert!(current_jobs() >= 1);
    }

    fn sampled_spec() -> SweepSpec {
        let mut spec = tiny_spec();
        spec.len = 6_000;
        spec.sample = Some(2_000);
        spec
    }

    #[test]
    fn sampled_sweep_is_jobs_invariant() {
        let spec = sampled_spec();
        let serial = run_sweep(&spec, &Engine::new(1)).to_json();
        let two = run_sweep(&spec, &Engine::new(2)).to_json();
        let eight = run_sweep(&spec, &Engine::new(8)).to_json();
        assert_eq!(serial, two);
        assert_eq!(serial, eight);
    }

    #[test]
    fn sampled_cells_carry_plan_and_exact_uop_totals() {
        let spec = sampled_spec();
        let report = run_sweep(&spec, &Engine::new(2));
        assert_eq!(report.cells.len(), 4);
        for c in &report.cells {
            let s = c.sampled.as_ref().expect("sampled mode fills sampled");
            assert!(s.k >= 1 && s.k <= s.intervals);
            assert_eq!(s.weights.len(), s.k);
            let sum: f64 = s.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
            assert!(s.est_error >= uopcache_sample::EST_ERROR_FLOOR);
            // Micro-op totals are exact (known from the plan), and the
            // reconstructed split is consistent.
            assert_eq!(c.trace_uops, c.result.uopc.uops_requested);
            assert_eq!(
                c.result.uopc.uops_hit + c.result.uopc.uops_missed,
                c.result.uopc.uops_requested
            );
        }
        let parsed = Json::parse(&report.to_json()).expect("sampled JSON parses");
        let cell = &parsed.field("cells").expect("cells").as_arr().expect("arr")[0];
        assert!(cell.field("trace_uops").is_ok());
        assert!(cell.field("sampled").is_ok());
        let sampled = cell.field("sampled").expect("sampled");
        assert!(sampled.field("k").is_ok());
        assert!(sampled.field("est_error").is_ok());
    }

    #[test]
    fn sampled_hit_rate_tracks_the_full_simulation() {
        let spec = sampled_spec();
        let sampled = run_sweep(&spec, &Engine::new(2));
        let mut full_spec = spec.clone();
        full_spec.sample = None;
        let full = run_sweep(&full_spec, &Engine::new(2));
        for c in &sampled.cells {
            let f = full
                .cells
                .iter()
                .find(|f| f.key == c.key)
                .expect("same keys in both modes");
            let err = (c.hit_rate() - f.hit_rate()).abs();
            assert!(
                err <= 0.02,
                "{}: sampled {:.4} vs full {:.4}",
                c.key,
                c.hit_rate(),
                f.hit_rate()
            );
            let bound = c.sampled.as_ref().expect("sampled").est_error;
            assert!(
                err <= bound,
                "{}: true error {err:.4} exceeds reported bound {bound:.4}",
                c.key
            );
        }
    }

    #[test]
    fn sampled_failures_dedup_to_one_per_cell() {
        let mut spec = sampled_spec();
        spec.policies.push("NoSuchPolicy".to_string());
        let report = run_sweep(&spec, &Engine::new(2));
        assert_eq!(report.failures.len(), 2, "one per app, not per segment");
        assert!(report.failures[0].message.contains("NoSuchPolicy"));
        assert_eq!(report.cells.len(), 4, "sibling cells are unaffected");
    }

    #[test]
    fn scale_widens_the_key_segment_and_round_trips() {
        let mut spec = tiny_spec();
        spec.scale = 3;
        spec.sample = Some(2_000);
        let key = spec.task_key(AppId::Kafka, "LRU").to_string();
        assert!(key.contains("len1500x3"), "{key}");
        let back = SweepSpec::from_json(&spec.to_json()).expect("round-trips");
        assert_eq!(back.scale, 3);
        assert_eq!(back.sample, Some(2_000));
        assert_eq!(back.to_json().to_string(), spec.to_json().to_string());
        // Plain specs never serialise the new fields (wire back-compat).
        let plain = tiny_spec().to_json().to_string();
        assert!(!plain.contains("\"scale\""), "{plain}");
        assert!(!plain.contains("\"sample\""), "{plain}");
        for bad in [
            r#"{"config":"zen3","apps":["kafka"],"policies":["lru"],"scale":0}"#,
            r#"{"config":"zen3","apps":["kafka"],"policies":["lru"],"sample":0}"#,
        ] {
            let j = Json::parse(bad).expect("valid JSON");
            assert!(
                SweepSpec::from_json(&j).is_err(),
                "{bad} should be rejected"
            );
        }
    }
}
