//! One function per paper table/figure.
//!
//! Every experiment takes a `quick` flag (shorter traces, fewer apps — used
//! by tests and smoke runs) and returns the tables it produces. Bench targets
//! print them; `reproduce-all` collects them into `EXPERIMENTS.md`.

pub mod discussion;
pub mod misses;
pub mod power;
pub mod sensitivity;
pub mod tables;
pub mod timing;

use crate::table::Table;

/// An experiment entry: id, paper caption, and the function that runs it.
pub struct Experiment {
    /// Identifier matching the bench target name (e.g. `fig08`).
    pub id: &'static str,
    /// What the paper's table/figure shows.
    pub caption: &'static str,
    /// Runs the experiment.
    pub run: fn(quick: bool) -> Vec<Table>,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "tab1",
            caption: "Table I: simulation parameters (Zen3-like preset)",
            run: tables::tab1_parameters,
        },
        Experiment {
            id: "tab2",
            caption: "Table II: the 11 data center applications",
            run: tables::tab2_applications,
        },
        Experiment {
            id: "sec3b",
            caption: "SIII-B: cold/capacity/conflict miss classification",
            run: misses::sec3b_miss_classes,
        },
        Experiment {
            id: "fig02",
            caption: "Fig. 2: per-core PPW gain of perfect structures",
            run: power::fig02_perfect_structures,
        },
        Experiment {
            id: "fig05",
            caption: "Fig. 5: miss reduction of existing policies vs FLACK",
            run: misses::fig05_existing_policies,
        },
        Experiment {
            id: "fig08",
            caption: "Fig. 8: FURBYS miss reduction vs existing policies",
            run: misses::fig08_furbys_miss_reduction,
        },
        Experiment {
            id: "fig09",
            caption: "Fig. 9: performance-per-watt gain of FURBYS",
            run: power::fig09_ppw_gain,
        },
        Experiment {
            id: "fig10",
            caption: "Fig. 10: FLACK ablation (FOO, A, A+VC, A+VC+SB) vs Belady",
            run: misses::fig10_flack_ablation,
        },
        Experiment {
            id: "fig11",
            caption: "Fig. 11: IPC speedup over LRU",
            run: timing::fig11_ipc_speedup,
        },
        Experiment {
            id: "fig12",
            caption: "Fig. 12: ISO-performance (LRU capacity to match FURBYS)",
            run: timing::fig12_iso_performance,
        },
        Experiment {
            id: "fig13",
            caption: "Fig. 13: per-core energy breakdown on Clang",
            run: power::fig13_energy_breakdown,
        },
        Experiment {
            id: "fig14",
            caption: "Fig. 14: energy-reduction breakdown of FURBYS",
            run: power::fig14_energy_reduction,
        },
        Experiment {
            id: "fig15",
            caption: "Fig. 15: FURBYS with Belady/FOO/FLACK profile sources",
            run: misses::fig15_profile_sources,
        },
        Experiment {
            id: "fig16",
            caption: "Fig. 16: sensitivity to micro-op cache size and associativity",
            run: sensitivity::fig16_size_assoc,
        },
        Experiment {
            id: "fig17",
            caption: "Fig. 17: PPW gain with the Zen4-like configuration",
            run: power::fig17_zen4_ppw,
        },
        Experiment {
            id: "fig18",
            caption: "Fig. 18: cross-validation across input variants",
            run: misses::fig18_cross_validation,
        },
        Experiment {
            id: "fig19",
            caption: "Fig. 19: weight-group bits sweep",
            run: sensitivity::fig19_weight_groups,
        },
        Experiment {
            id: "fig20",
            caption: "Fig. 20: local pitfall detector depth sweep",
            run: sensitivity::fig20_pitfall_depth,
        },
        Experiment {
            id: "fig21",
            caption: "Fig. 21: FURBYS bypass mechanism on/off",
            run: misses::fig21_bypass,
        },
        Experiment {
            id: "fig22",
            caption: "Fig. 22: hit rate by PW hotness class (Kafka)",
            run: misses::fig22_hotness,
        },
        Experiment {
            id: "sec6c",
            caption: "SVI-C: FURBYS replacement coverage",
            run: misses::sec6c_coverage,
        },
        Experiment {
            id: "sec6hw",
            caption: "SVI: FURBYS hardware overhead",
            run: discussion::sec6_hw_overhead,
        },
        Experiment {
            id: "sec7",
            caption: "SVII: non-inclusive micro-op cache IPC study",
            run: discussion::sec7_noninclusive,
        },
        Experiment {
            id: "ext1",
            caption: "EXT-1 (SVII future work): phase-aware FURBYS",
            run: discussion::ext1_phased_furbys,
        },
    ]
}

/// Looks up one experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

/// The apps used in quick mode.
pub(crate) fn quick_apps() -> Vec<uopcache_trace::AppId> {
    vec![
        uopcache_trace::AppId::Kafka,
        uopcache_trace::AppId::Postgres,
    ]
}

/// The app set for a mode.
pub(crate) fn apps_for(quick: bool) -> Vec<uopcache_trace::AppId> {
    if quick {
        quick_apps()
    } else {
        crate::apps::standard_apps().to_vec()
    }
}

/// The trace length for a mode.
pub(crate) fn len_for(quick: bool) -> usize {
    if quick {
        8_000
    } else {
        crate::apps::TRACE_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert_eq!(
            ids.len(),
            24,
            "tables + figures + section studies + extension"
        );
        assert!(by_id("fig08").is_some());
        assert!(by_id("nope").is_none());
    }
}
