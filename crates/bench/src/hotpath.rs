//! Hot-path benchmark harness: lookups/sec and allocations-per-lookup for
//! the simulation kernel, per `(app, policy)` cell.
//!
//! Every experiment in the paper reduces to replaying a PW lookup stream
//! through [`UopCache`] — the sweep engine and the serve daemon only
//! parallelize that loop, they don't make a single lookup cheaper. This
//! module measures the loop itself ([`run_trace`]) so the repo carries a
//! committed throughput baseline (`BENCH_hotpath.json`) and CI can catch
//! kernel regressions.
//!
//! Measurement discipline:
//!
//! * **warmup passes** fill the cache and let adaptive policies leave their
//!   cold-start regime before any timing starts — steady-state throughput is
//!   what the sweeps actually pay for;
//! * **repeated measured passes** report mean/stddev/min/max lookups/sec, so
//!   a noisy machine shows up as variance instead of a silently wrong point
//!   estimate;
//! * **allocation counting** works through [`CountingAllocator`], a
//!   `System`-wrapping allocator the CLI binary installs as its
//!   `#[global_allocator]`; steady-state allocations per lookup is the
//!   headline zero-allocation property. When the harness runs in a process
//!   that did *not* install the allocator (e.g. a library consumer), the
//!   counters never move and the report says so (`alloc_counting: false`)
//!   rather than claiming a spurious zero.
//!
//! The report renders to canonical JSON with `schema_version` first, same as
//! every other artifact in the repo; [`gate_against_baseline`] compares two
//! reports cell-by-cell under a generous regression factor (timing is
//! machine-dependent — the gate catches order-of-magnitude breakage, not
//! percent-level drift).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::apps::trace_for;
use crate::experiments::{len_for, quick_apps};
use crate::policies::{PolicyId, ProfileInputs};
use crate::table::Table;
use uopcache_cache::UopCache;
use uopcache_model::json::Json;
use uopcache_model::FrontendConfig;
use uopcache_policies::run_trace;
use uopcache_trace::AppId;

/// Schema version stamped on every hotpath report.
pub const SCHEMA_VERSION: u64 = 1;

/// Seed for the one randomized policy (Random), so two runs of the harness
/// replay identical decision streams and differ only in timing.
pub const BENCH_SEED: u64 = 0xbe9c_5eed;

/// Allocation calls observed by [`CountingAllocator`] since process start.
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
/// Bytes requested through [`CountingAllocator`] since process start.
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `System`-wrapping global allocator that counts allocation calls.
///
/// Install it in a *binary* (the `uopcache` CLI does, as does the
/// `alloc_budget` integration test):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: uopcache_bench::hotpath::CountingAllocator =
///     uopcache_bench::hotpath::CountingAllocator::new();
/// ```
///
/// The counters are process-wide atomics with `Relaxed` ordering — cheap
/// enough to leave on permanently, precise enough to assert "zero
/// allocations between these two snapshots" on a single thread.
pub struct CountingAllocator;

impl CountingAllocator {
    /// A new counting allocator (const so it can be a `static`).
    #[must_use]
    pub const fn new() -> Self {
        CountingAllocator
    }

    /// Total allocation calls (alloc + realloc) since process start.
    #[must_use]
    pub fn allocations() -> u64 {
        ALLOC_CALLS.load(Ordering::Relaxed)
    }

    /// Total bytes requested since process start.
    #[must_use]
    pub fn bytes_allocated() -> u64 {
        ALLOC_BYTES.load(Ordering::Relaxed)
    }

    /// Whether the counting allocator is actually installed in this process.
    ///
    /// Performs a probe allocation and checks the counter moved; a library
    /// consumer that never registered the `#[global_allocator]` sees frozen
    /// counters, and reports must not claim a spurious zero.
    #[must_use]
    pub fn is_active() -> bool {
        let before = Self::allocations();
        std::hint::black_box(Box::new(0u64));
        Self::allocations() > before
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// What to benchmark: a config × apps × policies grid with pass counts.
#[derive(Clone, Debug)]
pub struct HotpathSpec {
    /// Frontend configuration under test.
    pub cfg: FrontendConfig,
    /// Human name for the configuration, e.g. `zen3`.
    pub config_name: String,
    /// Applications to replay.
    pub apps: Vec<AppId>,
    /// Policies to drive; must parse as [`PolicyId`] names.
    pub policies: Vec<String>,
    /// Input variant for trace generation.
    pub variant: u32,
    /// Trace length (lookups per pass).
    pub len: usize,
    /// Untimed passes before measurement starts.
    pub warmup_passes: u32,
    /// Timed passes; throughput statistics aggregate over these.
    pub measured_passes: u32,
}

impl HotpathSpec {
    /// The quick grid: the sweep quick config (Kafka + Postgres, short
    /// traces) over the full policy roster. This is the cell set behind the
    /// committed `BENCH_hotpath.json` baseline and the CI smoke job.
    #[must_use]
    pub fn quick() -> HotpathSpec {
        HotpathSpec {
            cfg: FrontendConfig::zen3(),
            config_name: "zen3".to_string(),
            apps: quick_apps(),
            policies: PolicyId::ALL
                .iter()
                .map(|id| id.name().to_string())
                .collect(),
            variant: 0,
            len: len_for(true),
            warmup_passes: 1,
            measured_passes: 3,
        }
    }

    /// The full grid: every Table II application at a longer trace length,
    /// with more measured passes for tighter variance.
    #[must_use]
    pub fn full() -> HotpathSpec {
        HotpathSpec {
            apps: crate::apps::standard_apps().to_vec(),
            len: 30_000,
            measured_passes: 5,
            ..HotpathSpec::quick()
        }
    }
}

/// One measured `(app, policy)` cell.
#[derive(Clone, Debug)]
pub struct HotpathCell {
    /// Application replayed.
    pub app: AppId,
    /// Policy name.
    pub policy: String,
    /// Lookups per measured pass.
    pub lookups: u64,
    /// Per-pass lookups/sec samples, in pass order.
    pub pass_lps: Vec<f64>,
    /// Allocation calls per lookup across all measured passes (meaningful
    /// only when [`CountingAllocator`] is installed).
    pub allocs_per_lookup: f64,
    /// Micro-ops served from the cache during the measured passes — a
    /// workload anchor proving the cell simulated real traffic.
    pub uops_hit: u64,
}

impl HotpathCell {
    /// Mean lookups/sec over the measured passes.
    #[must_use]
    pub fn mean_lps(&self) -> f64 {
        self.pass_lps.iter().sum::<f64>() / self.pass_lps.len() as f64
    }

    /// Population standard deviation of the per-pass lookups/sec.
    #[must_use]
    pub fn stddev_lps(&self) -> f64 {
        let mean = self.mean_lps();
        let var = self
            .pass_lps
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.pass_lps.len() as f64;
        var.sqrt()
    }

    /// Slowest pass.
    #[must_use]
    pub fn min_lps(&self) -> f64 {
        self.pass_lps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Fastest pass.
    #[must_use]
    pub fn max_lps(&self) -> f64 {
        self.pass_lps.iter().copied().fold(0.0, f64::max)
    }

    /// Mean nanoseconds per lookup.
    #[must_use]
    pub fn ns_per_lookup(&self) -> f64 {
        1e9 / self.mean_lps()
    }
}

/// A complete harness run: the spec echo plus one cell per `(app, policy)`.
#[derive(Clone, Debug)]
pub struct HotpathReport {
    /// The spec that produced this report.
    pub spec: HotpathSpec,
    /// Whether [`CountingAllocator`] was live, i.e. whether
    /// `allocs_per_lookup` is meaningful.
    pub alloc_counting: bool,
    /// Measured cells, in `apps × policies` order.
    pub cells: Vec<HotpathCell>,
}

/// Rounds to one decimal: throughput numbers are noisy past that, and the
/// baseline file stays readable.
fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Rounds to six decimals (allocations per lookup are tiny fractions).
fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

impl HotpathReport {
    /// Renders the report as canonical JSON, `schema_version` first.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("app".to_string(), Json::Str(c.app.name().to_string())),
                    ("policy".to_string(), Json::Str(c.policy.clone())),
                    ("lookups".to_string(), Json::U64(c.lookups)),
                    (
                        "lookups_per_sec".to_string(),
                        Json::Obj(vec![
                            ("mean".to_string(), Json::F64(round1(c.mean_lps()))),
                            ("stddev".to_string(), Json::F64(round1(c.stddev_lps()))),
                            ("min".to_string(), Json::F64(round1(c.min_lps()))),
                            ("max".to_string(), Json::F64(round1(c.max_lps()))),
                        ]),
                    ),
                    (
                        "ns_per_lookup".to_string(),
                        Json::F64(round1(c.ns_per_lookup())),
                    ),
                    (
                        "allocs_per_lookup".to_string(),
                        Json::F64(round6(c.allocs_per_lookup)),
                    ),
                    ("uops_hit".to_string(), Json::U64(c.uops_hit)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".to_string(), Json::U64(SCHEMA_VERSION)),
            ("bench".to_string(), Json::Str("hotpath".to_string())),
            (
                "config".to_string(),
                Json::Str(self.spec.config_name.clone()),
            ),
            (
                "entries".to_string(),
                Json::U64(u64::from(self.spec.cfg.uop_cache.entries)),
            ),
            (
                "ways".to_string(),
                Json::U64(u64::from(self.spec.cfg.uop_cache.ways)),
            ),
            (
                "variant".to_string(),
                Json::U64(u64::from(self.spec.variant)),
            ),
            ("len".to_string(), Json::U64(self.spec.len as u64)),
            (
                "warmup_passes".to_string(),
                Json::U64(u64::from(self.spec.warmup_passes)),
            ),
            (
                "measured_passes".to_string(),
                Json::U64(u64::from(self.spec.measured_passes)),
            ),
            (
                "alloc_counting".to_string(),
                Json::Bool(self.alloc_counting),
            ),
            ("cells".to_string(), Json::Arr(cells)),
        ])
        .to_string()
    }

    /// Renders the report as an aligned text table for terminal output.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "hotpath: {} x {} lookups, {} warmup + {} measured passes",
                self.spec.config_name,
                self.spec.len,
                self.spec.warmup_passes,
                self.spec.measured_passes
            ),
            &[
                "app",
                "policy",
                "Mlookups/s",
                "stddev",
                "ns/lookup",
                "allocs/lookup",
            ],
        );
        for c in &self.cells {
            t.row(&[
                c.app.name().to_string(),
                c.policy.clone(),
                format!("{:.2}", c.mean_lps() / 1e6),
                format!("{:.2}", c.stddev_lps() / 1e6),
                format!("{:.1}", c.ns_per_lookup()),
                if self.alloc_counting {
                    format!("{:.4}", c.allocs_per_lookup)
                } else {
                    "n/a".to_string()
                },
            ]);
        }
        t
    }
}

/// Measures one `(app, policy)` cell: builds the policy fresh, runs the
/// warmup passes, then times the measured passes around [`run_trace`].
///
/// Trace generation and policy construction happen *outside* the timed
/// region; only the lookup/insert replay loop is measured.
fn run_cell(
    spec: &HotpathSpec,
    app: AppId,
    policy_name: &str,
    profiles: &ProfileInputs,
) -> HotpathCell {
    let id: PolicyId = policy_name.parse().unwrap_or_else(|e| {
        panic!("bench-hotpath: unknown policy {policy_name:?}: {e}");
    });
    let trace = trace_for(app, spec.variant, spec.len);
    let policy = id.build(&spec.cfg, profiles, BENCH_SEED);
    let mut cache = UopCache::new(spec.cfg.uop_cache, policy);

    for _ in 0..spec.warmup_passes {
        run_trace(&mut cache, &trace);
    }

    let mut pass_lps = Vec::with_capacity(spec.measured_passes as usize);
    let mut uops_hit = 0u64;
    let mut allocs = 0u64;
    for _ in 0..spec.measured_passes {
        let alloc_before = CountingAllocator::allocations();
        let t0 = Instant::now();
        let stats = run_trace(&mut cache, &trace);
        let dt = t0.elapsed();
        allocs += CountingAllocator::allocations() - alloc_before;
        uops_hit += stats.uops_hit;
        pass_lps.push(trace.len() as f64 / dt.as_secs_f64());
    }

    let total_lookups = u64::from(spec.measured_passes) * trace.len() as u64;
    HotpathCell {
        app,
        policy: id.name().to_string(),
        lookups: trace.len() as u64,
        pass_lps,
        allocs_per_lookup: allocs as f64 / total_lookups as f64,
        uops_hit,
    }
}

/// Runs the full harness: one cell per `(app, policy)`, apps outermost so
/// each app's trace and profile inputs are prepared once.
#[must_use]
pub fn run_hotpath(spec: &HotpathSpec) -> HotpathReport {
    let alloc_counting = CountingAllocator::is_active();
    let mut cells = Vec::with_capacity(spec.apps.len() * spec.policies.len());
    for &app in &spec.apps {
        let train = trace_for(app, spec.variant, spec.len);
        let profiles = ProfileInputs::build(&spec.cfg, &train);
        for policy in &spec.policies {
            cells.push(run_cell(spec, app, policy, &profiles));
        }
    }
    HotpathReport {
        spec: spec.clone(),
        alloc_counting,
        cells,
    }
}

/// Compares a current hotpath report against a committed baseline.
///
/// Both arguments are the canonical JSON renderings ([`HotpathReport::
/// to_json`]). For every `(app, policy)` cell present in both, the current
/// mean lookups/sec must be at least `baseline / factor` — a generous gate
/// (CI uses 3×) that catches kernel-level breakage while tolerating machine
/// and load variance. Cells present on only one side are ignored (the grid
/// may grow).
///
/// Returns the list of regression descriptions (empty = gate passed).
///
/// # Errors
///
/// Returns a message if either report fails to parse or has an unexpected
/// schema version.
pub fn gate_against_baseline(
    current: &str,
    baseline: &str,
    factor: f64,
) -> Result<Vec<String>, String> {
    let parse = |label: &str, text: &str| -> Result<Vec<(String, String, f64)>, String> {
        let j = Json::parse(text).map_err(|e| format!("{label}: {e}"))?;
        let version = j
            .field("schema_version")
            .map_err(|e| format!("{label}: {e}"))?
            .as_u64()
            .ok_or_else(|| format!("{label}: schema_version must be an integer"))?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "{label}: schema_version {version} (expected {SCHEMA_VERSION})"
            ));
        }
        let cells = j
            .field("cells")
            .map_err(|e| format!("{label}: {e}"))?
            .as_arr()
            .ok_or_else(|| format!("{label}: cells must be an array"))?;
        cells
            .iter()
            .map(|c| {
                let text_field = |f: &str| -> Result<String, String> {
                    c.field(f)
                        .map_err(|e| format!("{label}: {e}"))?
                        .as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{label}: cell field {f:?} must be a string"))
                };
                let mean = c
                    .field("lookups_per_sec")
                    .and_then(|l| l.field("mean"))
                    .map_err(|e| format!("{label}: {e}"))?
                    .as_f64()
                    .ok_or_else(|| format!("{label}: lookups_per_sec.mean must be a number"))?;
                Ok((text_field("app")?, text_field("policy")?, mean))
            })
            .collect()
    };
    let current_cells = parse("current", current)?;
    let baseline_cells = parse("baseline", baseline)?;

    let mut regressions = Vec::new();
    for (app, policy, base_mean) in &baseline_cells {
        let Some((_, _, cur_mean)) = current_cells
            .iter()
            .find(|(a, p, _)| a == app && p == policy)
        else {
            continue;
        };
        if *cur_mean < base_mean / factor {
            regressions.push(format!(
                "{app}/{policy}: {:.2} Mlookups/s is below the {factor}x gate \
                 (baseline {:.2} Mlookups/s)",
                cur_mean / 1e6,
                base_mean / 1e6,
            ));
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> HotpathSpec {
        HotpathSpec {
            apps: vec![AppId::Kafka],
            policies: vec!["LRU".to_string(), "SRRIP".to_string()],
            len: 500,
            warmup_passes: 1,
            measured_passes: 2,
            ..HotpathSpec::quick()
        }
    }

    #[test]
    fn report_renders_canonical_json() {
        let report = run_hotpath(&tiny_spec());
        let json = report.to_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        let parsed = Json::parse(&json).expect("report JSON parses");
        let cells = parsed
            .field("cells")
            .expect("cells present")
            .as_arr()
            .expect("cells is an array")
            .len();
        assert_eq!(cells, 2);
        for cell in &report.cells {
            assert!(cell.mean_lps() > 0.0);
            assert!(cell.min_lps() <= cell.mean_lps());
            assert!(cell.mean_lps() <= cell.max_lps());
            assert!(cell.uops_hit > 0, "cell must simulate real traffic");
        }
    }

    #[test]
    fn gate_passes_against_itself_and_catches_collapse() {
        let report = run_hotpath(&tiny_spec());
        let json = report.to_json();
        let ok = gate_against_baseline(&json, &json, 3.0).expect("gate parses");
        assert!(ok.is_empty(), "a report never regresses against itself");

        // Synthesize a baseline 10x faster than reality: every cell must
        // trip the 3x gate.
        let mut fast = report.clone();
        for cell in &mut fast.cells {
            for lps in &mut cell.pass_lps {
                *lps *= 10.0;
            }
        }
        let trip = gate_against_baseline(&json, &fast.to_json(), 3.0).expect("gate parses");
        assert_eq!(trip.len(), report.cells.len());
    }

    #[test]
    fn gate_rejects_schema_drift() {
        let report = run_hotpath(&tiny_spec()).to_json();
        let drifted = report.replace("\"schema_version\":1", "\"schema_version\":2");
        assert!(gate_against_baseline(&drifted, &report, 3.0).is_err());
    }
}
