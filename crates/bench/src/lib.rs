//! # uopcache-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation. Each figure is a `harness = false` bench target (so
//! `cargo bench` reproduces the whole evaluation) built on the shared
//! machinery here:
//!
//! * [`apps`] — the standard application set, trace lengths and cached trace
//!   construction;
//! * [`policies`] — a name-indexed factory over every online policy;
//! * [`runs`] — memoised per-(app, policy, config) simulation runs;
//! * [`sweep`] — the parallel sweep layer over the `uopcache-exec` engine:
//!   process-wide `--jobs` knob, canonical task keying, deterministic
//!   `(app × policy)` sweeps with canonical JSON reports;
//! * [`table`] — paper-vs-measured table rendering;
//! * [`experiments`] — one function per table/figure, returning structured
//!   results the `reproduce-all` binary serialises into `EXPERIMENTS.md`.

pub mod apps;
pub mod experiments;
pub mod hotpath;
pub mod policies;
pub mod runs;
pub mod sweep;
pub mod table;

pub use apps::{standard_apps, trace_for, TRACE_LEN};
pub use table::Table;
