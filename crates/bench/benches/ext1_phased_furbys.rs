//! Bench target for the `ext1` extension experiment (phase-aware FURBYS).
//! Run with `cargo bench -p uopcache-bench --bench ext1_phased_furbys`.
//! Set `UOPCACHE_QUICK=1` for a fast smoke run.

fn main() {
    let quick = std::env::var("UOPCACHE_QUICK").is_ok();
    let exp = uopcache_bench::experiments::by_id("ext1").expect("registered experiment");
    println!("{} — {}\n", exp.id, exp.caption);
    for table in (exp.run)(quick) {
        table.print();
    }
}
