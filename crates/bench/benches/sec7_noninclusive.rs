//! Bench target regenerating the paper's `sec7` experiment.
//! Run with `cargo bench -p uopcache-bench --bench sec7_noninclusive`.
//! Set `UOPCACHE_QUICK=1` for a fast smoke run.

fn main() {
    let quick = std::env::var("UOPCACHE_QUICK").is_ok();
    let exp = uopcache_bench::experiments::by_id("sec7").expect("registered experiment");
    println!("{} — {}\n", exp.id, exp.caption);
    for table in (exp.run)(quick) {
        table.print();
    }
}
