//! Bench target regenerating the paper's `fig11` experiment.
//! Run with `cargo bench -p uopcache-bench --bench fig11_ipc_speedup`.
//! Set `UOPCACHE_QUICK=1` for a fast smoke run.

fn main() {
    let quick = std::env::var("UOPCACHE_QUICK").is_ok();
    let exp = uopcache_bench::experiments::by_id("fig11").expect("registered experiment");
    println!("{} — {}\n", exp.id, exp.caption);
    for table in (exp.run)(quick) {
        table.print();
    }
}
