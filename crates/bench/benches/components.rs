//! Criterion micro-benchmarks of the library's components: simulator
//! throughput, per-policy decision cost, the min-cost-flow solver, Jenks
//! natural breaks and trace generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use uopcache_bench::policies::{make_policy, ProfileInputs, ONLINE_POLICIES};
use uopcache_cache::{LruPolicy, UopCache};
use uopcache_core::jenks::jenks_breaks;
use uopcache_core::Flack;
use uopcache_flow::FlowGraph;
use uopcache_model::{FrontendConfig, UopCacheConfig};
use uopcache_offline::foo;
use uopcache_policies::run_trace;
use uopcache_sim::Frontend;
use uopcache_trace::{build_trace, AppId, InputVariant};

fn bench_simulator(c: &mut Criterion) {
    let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, 20_000);
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("frontend_lru_20k", |b| {
        b.iter(|| {
            let mut fe = Frontend::new(FrontendConfig::zen3(), Box::new(LruPolicy::new()));
            fe.run(&trace)
        })
    });
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let cfg = FrontendConfig::zen3();
    let trace = build_trace(AppId::Postgres, InputVariant::DEFAULT, 10_000);
    let profiles = ProfileInputs::build(&cfg, &trace);
    let mut g = c.benchmark_group("policy_decisions");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for name in ONLINE_POLICIES {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let mut cache = UopCache::new(cfg.uop_cache, make_policy(name, &cfg, &profiles));
                run_trace(&mut cache, &trace)
            })
        });
    }
    g.finish();
}

fn bench_flow_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("mcmf");
    for &n in &[1_000usize, 4_000, 16_000] {
        let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("foo_solve", n), &trace, |b, trace| {
            b.iter(|| foo::solve(trace, &UopCacheConfig::zen3(), &Flack::new().foo_config()))
        });
    }
    // A raw flow network for solver-only scaling.
    g.bench_function("raw_chain_5k", |b| {
        b.iter(|| {
            let n = 5_000;
            let mut graph = FlowGraph::new(n);
            for i in 0..n - 1 {
                graph.add_edge(i, i + 1, 8, 0);
            }
            for i in (0..n - 10).step_by(3) {
                graph.add_edge(i, i + 7, 2, -5);
            }
            graph.min_cost_flow(0, n - 1, 8)
        })
    });
    g.finish();
}

fn bench_jenks(c: &mut Criterion) {
    let mut g = c.benchmark_group("jenks");
    for &n in &[64usize, 256, 1024] {
        let values: Vec<f64> = (0..n).map(|i| ((i * 7919) % 1000) as f64 / 1000.0).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, values| {
            b.iter(|| jenks_breaks(values, 8))
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("kafka_50k", |b| {
        b.iter(|| build_trace(AppId::Kafka, InputVariant::DEFAULT, 50_000))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_policies,
    bench_flow_solver,
    bench_jenks,
    bench_trace_generation
);
criterion_main!(benches);
