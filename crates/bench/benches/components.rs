//! Micro-benchmarks of the library's components: simulator throughput,
//! per-policy decision cost, the min-cost-flow solver, Jenks natural breaks
//! and trace generation.
//!
//! Uses a small self-contained timing harness (`std::time`) so the workspace
//! carries no external benchmark dependency. Each benchmark runs a warm-up
//! pass, then reports the median wall-clock time over a handful of
//! measurement passes together with element throughput where meaningful.

use std::time::{Duration, Instant};
use uopcache_bench::policies::{PolicyId, ProfileInputs};
use uopcache_cache::{LruPolicy, UopCache};
use uopcache_core::jenks::jenks_breaks;
use uopcache_core::Flack;
use uopcache_flow::FlowGraph;
use uopcache_model::{FrontendConfig, UopCacheConfig};
use uopcache_offline::foo;
use uopcache_policies::run_trace;
use uopcache_sim::Frontend;
use uopcache_trace::{build_trace, AppId, InputVariant};

/// Times `f` over `iters` measured passes (after one warm-up) and returns the
/// median per-pass duration.
fn measure<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f()); // warm-up
    let mut samples: Vec<Duration> = (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn report(group: &str, name: &str, elapsed: Duration, elements: Option<u64>) {
    let per_elem = elements
        .filter(|&n| n > 0)
        .map(|n| format!("  ({:.0} elems/s)", n as f64 / elapsed.as_secs_f64()))
        .unwrap_or_default();
    println!("{group}/{name:<24} {elapsed:>12.3?}{per_elem}");
}

fn bench_simulator() {
    let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, 20_000);
    let n = trace.len() as u64;
    let d = measure(5, || {
        let mut fe = Frontend::builder(FrontendConfig::zen3())
            .policy(LruPolicy::new())
            .build();
        fe.run(&trace)
    });
    report("simulator", "frontend_lru_20k", d, Some(n));
}

fn bench_policies() {
    let cfg = FrontendConfig::zen3();
    let trace = build_trace(AppId::Postgres, InputVariant::DEFAULT, 10_000);
    let profiles = ProfileInputs::build(&cfg, &trace);
    let n = trace.len() as u64;
    for id in PolicyId::ONLINE {
        let d = measure(5, || {
            let mut cache = UopCache::new(cfg.uop_cache, id.build(&cfg, &profiles, 0));
            run_trace(&mut cache, &trace)
        });
        report("policy_decisions", id.name(), d, Some(n));
    }
}

fn bench_flow_solver() {
    for &n in &[1_000usize, 4_000, 16_000] {
        let trace = build_trace(AppId::Kafka, InputVariant::DEFAULT, n);
        let d = measure(3, || {
            foo::solve(&trace, &UopCacheConfig::zen3(), &Flack::new().foo_config())
        });
        report("mcmf", &format!("foo_solve_{n}"), d, Some(n as u64));
    }
    let d = measure(3, || {
        let n = 5_000;
        let mut graph = FlowGraph::new(n);
        for i in 0..n - 1 {
            graph.add_edge(i, i + 1, 8, 0);
        }
        for i in (0..n - 10).step_by(3) {
            graph.add_edge(i, i + 7, 2, -5);
        }
        graph.min_cost_flow(0, n - 1, 8)
    });
    report("mcmf", "raw_chain_5k", d, None);
}

fn bench_jenks() {
    for &n in &[64usize, 256, 1024] {
        let values: Vec<f64> = (0..n)
            .map(|i| ((i * 7919) % 1000) as f64 / 1000.0)
            .collect();
        let d = measure(5, || jenks_breaks(&values, 8));
        report("jenks", &format!("breaks_{n}"), d, Some(n as u64));
    }
}

fn bench_trace_generation() {
    let d = measure(3, || {
        build_trace(AppId::Kafka, InputVariant::DEFAULT, 50_000)
    });
    report("trace_generation", "kafka_50k", d, Some(50_000));
}

fn main() {
    bench_simulator();
    bench_policies();
    bench_flow_solver();
    bench_jenks();
    bench_trace_generation();
}
