//! Deterministic k-means over projected interval fingerprints.
//!
//! Std-only, seeded, and tie-broken so that clustering is a pure function
//! of (vectors, k, seed): centroid initialisation is k-means++ driven by
//! the in-repo [`Prng`], assignment breaks distance ties toward the lowest
//! centroid index, empty clusters are re-seeded from the farthest point
//! (ties toward the lowest point index), and iteration is capped. That is
//! what lets a sampled sweep produce byte-identical output at any
//! `--jobs`/`--shards` count.

use uopcache_model::rng::{Prng, Rng};

/// The result of one k-means run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Number of clusters.
    pub k: usize,
    /// Cluster index of each input vector.
    pub assignments: Vec<usize>,
    /// Cluster centroids (`k × dim`).
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of each vector to its centroid.
    pub inertia: f64,
}

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// The index of the nearest centroid (ties toward the lowest index).
fn nearest(v: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, cen) in centroids.iter().enumerate() {
        let d = dist2(v, cen);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Runs seeded k-means on `vectors`.
///
/// `k` is clamped to the number of vectors; with no vectors the result is
/// empty. Runs at most `max_iters` update rounds (or until assignments
/// stop changing).
///
/// # Examples
///
/// ```
/// use uopcache_sample::kmeans;
///
/// let vs = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0]];
/// let c = kmeans(&vs, 2, 7, 20);
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
pub fn kmeans(vectors: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> Clustering {
    let n = vectors.len();
    let k = k.min(n);
    if n == 0 || k == 0 {
        return Clustering {
            k: 0,
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
        };
    }
    let dim = vectors[0].len();
    let mut rng = Prng::seed_from_u64(seed);

    // k-means++ initialisation: first centroid uniform, the rest sampled
    // proportionally to squared distance from the chosen set.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(vectors[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = vectors.iter().map(|v| dist2(v, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total > 0.0 {
            // Walk the cumulative distribution; the final fallback index
            // only triggers on floating-point edge rounding.
            let target = rng.gen_f64() * total;
            let mut acc = 0.0;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                acc += d;
                if acc >= target {
                    chosen = i;
                    break;
                }
            }
            chosen
        } else {
            // All points coincide with a centroid already; pick uniformly.
            rng.gen_range(0..n)
        };
        let newc = vectors[next].clone();
        for (i, v) in vectors.iter().enumerate() {
            let d = dist2(v, &newc);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        centroids.push(newc);
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..max_iters.max(1) {
        // Assign.
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let (c, _) = nearest(v, &centroids);
            if assignments[i] != c {
                assignments[i] = c;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in vectors.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, x) in sums[assignments[i]].iter_mut().zip(v) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster from the globally farthest point
                // (ties toward the lowest index), keeping k clusters alive.
                let mut far = 0usize;
                let mut far_d = -1.0f64;
                for (i, v) in vectors.iter().enumerate() {
                    let d = dist2(v, &centroids[assignments[i]]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                centroids[c] = vectors[far].clone();
                assignments[far] = c;
                changed = true;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| dist2(v, &centroids[assignments[i]]))
        .sum();
    Clustering {
        k,
        assignments,
        centroids,
        inertia,
    }
}

/// Sweeps `k` from 1 to `max_k`, scores each clustering with a BIC-style
/// criterion `−n·ln(inertia/n + ε) − ½·k·dim·ln(n)` (higher is better), and
/// — as in SimPoint — keeps the **smallest** `k` whose score reaches 90% of
/// the swept score range. Raw-BIC argmax would almost always elect the
/// largest `k` (the log-likelihood term keeps improving as clusters
/// shrink); the threshold rule finds the knee instead.
pub fn choose_k(vectors: &[Vec<f64>], max_k: usize, seed: u64, max_iters: usize) -> Clustering {
    let n = vectors.len();
    if n == 0 {
        return kmeans(vectors, 0, seed, max_iters);
    }
    let dim = vectors[0].len().max(1);
    let nf = n as f64;
    let runs: Vec<(f64, Clustering)> = (1..=max_k.max(1).min(n))
        .map(|k| {
            let c = kmeans(vectors, k, seed, max_iters);
            let score = -nf * (c.inertia / nf + 1e-12).ln() - 0.5 * (k * dim) as f64 * nf.ln();
            (score, c)
        })
        .collect();
    let lo = runs.iter().map(|(s, _)| *s).fold(f64::INFINITY, f64::min);
    let hi = runs
        .iter()
        .map(|(s, _)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    let threshold = lo + 0.9 * (hi - lo);
    runs.into_iter()
        .find(|(s, _)| *s >= threshold)
        .map_or_else(|| kmeans(vectors, 1, seed, max_iters), |(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), spread: f64, n: usize, rng: &mut Prng) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                vec![
                    center.0 + (rng.gen_f64() - 0.5) * spread,
                    center.1 + (rng.gen_f64() - 0.5) * spread,
                ]
            })
            .collect()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let mut rng = Prng::seed_from_u64(3);
        let mut vs = blob((0.0, 0.0), 0.2, 10, &mut rng);
        vs.extend(blob((10.0, 10.0), 0.2, 10, &mut rng));
        let c = kmeans(&vs, 2, 11, 50);
        let a0 = c.assignments[0];
        assert!(c.assignments[..10].iter().all(|&a| a == a0));
        assert!(c.assignments[10..].iter().all(|&a| a != a0));
        assert!(c.inertia < 1.0);
    }

    #[test]
    fn is_a_pure_function_of_inputs() {
        let mut rng = Prng::seed_from_u64(4);
        let vs = blob((1.0, 2.0), 3.0, 40, &mut rng);
        let a = kmeans(&vs, 5, 9, 30);
        let b = kmeans(&vs, 5, 9, 30);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn choose_k_prefers_the_natural_cluster_count() {
        let mut rng = Prng::seed_from_u64(5);
        let mut vs = blob((0.0, 0.0), 0.3, 12, &mut rng);
        vs.extend(blob((8.0, 0.0), 0.3, 12, &mut rng));
        vs.extend(blob((0.0, 8.0), 0.3, 12, &mut rng));
        let c = choose_k(&vs, 8, 17, 50);
        assert_eq!(c.k, 3, "three blobs, k={}", c.k);
    }

    #[test]
    fn identical_points_collapse_to_one_cluster_score() {
        let vs = vec![vec![1.0, 1.0]; 6];
        let c = choose_k(&vs, 4, 1, 20);
        assert_eq!(c.k, 1);
        assert!(c.inertia < 1e-12);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let vs = vec![vec![0.0], vec![1.0]];
        let c = kmeans(&vs, 10, 2, 10);
        assert_eq!(c.k, 2);
        assert!(c.inertia < 1e-12);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let c = kmeans(&[], 3, 0, 10);
        assert_eq!(c.k, 0);
        assert!(c.assignments.is_empty());
    }
}
