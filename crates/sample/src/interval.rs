//! Interval slicing and fingerprinting.
//!
//! The first stage of the sampling pipeline: cut a [`LookupTrace`] into
//! consecutive intervals of (at least) a fixed number of micro-ops, then
//! fingerprint each interval with a projected basic-block vector from
//! [`BbvRecorder`]. Both steps are pure functions of the trace and the
//! seed, so every worker that slices the same trace sees the same
//! intervals and the same fingerprints.

use std::ops::Range;

use uopcache_model::LookupTrace;
use uopcache_obs::{BbvRecorder, Event, EventKind, Recorder, Verdict};

/// One fixed-uop slice of a trace.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Position in the interval sequence (0-based).
    pub index: usize,
    /// First access of the interval (inclusive).
    pub start_access: usize,
    /// One past the last access of the interval.
    pub end_access: usize,
    /// Micro-ops requested by the interval's accesses.
    pub uops: u64,
}

impl Interval {
    /// The interval's access-index range in the source trace.
    pub fn range(&self) -> Range<usize> {
        self.start_access..self.end_access
    }

    /// Number of accesses in the interval.
    pub fn len(&self) -> usize {
        self.end_access - self.start_access
    }

    /// Whether the interval is empty (never produced by the slicer).
    pub fn is_empty(&self) -> bool {
        self.end_access == self.start_access
    }
}

/// Cuts `trace` into consecutive intervals, each closed as soon as it has
/// accumulated at least `interval_uops` micro-ops (so intervals never split
/// an access). The final interval may be shorter. Matches the boundary rule
/// of [`BbvRecorder`] exactly: slicing and fingerprinting agree on which
/// access belongs to which interval.
pub fn slice_intervals(trace: &LookupTrace, interval_uops: u64) -> Vec<Interval> {
    let interval_uops = interval_uops.max(1);
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut uops = 0u64;
    for (i, a) in trace.iter().enumerate() {
        uops += u64::from(a.pw.uops);
        if uops >= interval_uops {
            out.push(Interval {
                index: out.len(),
                start_access: start,
                end_access: i + 1,
                uops,
            });
            start = i + 1;
            uops = 0;
        }
    }
    if start < trace.len() {
        out.push(Interval {
            index: out.len(),
            start_access: start,
            end_access: trace.len(),
            uops,
        });
    }
    out
}

/// Fingerprints every interval of `trace`: returns the interval table and
/// one projected, length-normalized BBV per interval (same order).
///
/// The fingerprint describes what code each interval *executes*, so it is
/// computed directly from the access stream (each access offered to the
/// recorder as a lookup event) — no cache simulation required, and one
/// fingerprinting pass serves every policy in a sweep.
pub fn fingerprint_intervals(
    trace: &LookupTrace,
    interval_uops: u64,
    dim: usize,
    seed: u64,
) -> (Vec<Interval>, Vec<Vec<f64>>) {
    let intervals = slice_intervals(trace, interval_uops);
    let mut rec = BbvRecorder::new(seed, interval_uops.max(1), dim, intervals.len());
    for (i, a) in trace.iter().enumerate() {
        rec.record(&Event {
            cycle: i as u64,
            kind: EventKind::Miss,
            set: 0,
            slot: None,
            start: a.pw.start.get(),
            uops: a.pw.uops,
            entries: 1,
            verdict: Verdict::None,
        });
    }
    let vectors = rec.vectors();
    debug_assert_eq!(vectors.len(), intervals.len(), "slicer/recorder disagree");
    (intervals, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    #[test]
    fn intervals_tile_the_trace_exactly() {
        let trace = build_trace(AppId::Kafka, InputVariant(0), 5_000);
        let ivs = slice_intervals(&trace, 2_000);
        assert!(!ivs.is_empty());
        assert_eq!(ivs[0].start_access, 0);
        for w in ivs.windows(2) {
            assert_eq!(w[0].end_access, w[1].start_access);
            assert_eq!(w[0].index + 1, w[1].index);
        }
        assert_eq!(ivs.last().map(|v| v.end_access), Some(trace.len()));
        let total: u64 = ivs.iter().map(|v| v.uops).sum();
        assert_eq!(total, trace.total_uops());
        for iv in &ivs[..ivs.len() - 1] {
            assert!(iv.uops >= 2_000);
            assert!(!iv.is_empty());
            assert_eq!(iv.len(), iv.range().len());
        }
    }

    #[test]
    fn fingerprints_match_the_slicer_and_are_deterministic() {
        let trace = build_trace(AppId::Postgres, InputVariant(0), 4_000);
        let (ivs, vecs) = fingerprint_intervals(&trace, 1_500, 16, 99);
        assert_eq!(ivs.len(), vecs.len());
        let (ivs2, vecs2) = fingerprint_intervals(&trace, 1_500, 16, 99);
        assert_eq!(ivs, ivs2);
        assert_eq!(vecs, vecs2);
    }

    #[test]
    fn huge_interval_yields_one_slice() {
        let trace = build_trace(AppId::Mysql, InputVariant(0), 1_000);
        let ivs = slice_intervals(&trace, u64::MAX);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].range(), 0..trace.len());
    }
}
