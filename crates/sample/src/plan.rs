//! Representative selection and weighted reconstruction.
//!
//! The output of the pipeline's analysis half: a [`SamplePlan`] names, for
//! each cluster of similar intervals, the *representative* interval to
//! simulate (closest to the centroid), an optional *probe* interval (the
//! farthest member — simulated alongside the representative, its
//! disagreement with the representative feeds the reported error bound),
//! and the cluster's weight (its share of the trace's micro-ops). Whole-
//! trace metrics are then reconstructed as the weight-averaged metrics of
//! the representatives.

use crate::interval::{fingerprint_intervals, Interval};
use crate::kmeans::choose_k;
use std::ops::Range;
use uopcache_model::LookupTrace;

/// Error-bound floor: reconstruction error never reports below this, since
/// finite sampling always carries residual risk even when the probes agree
/// perfectly with their representatives.
pub const EST_ERROR_FLOOR: f64 = 0.01;
/// Error-bound margin over the observed representative↔probe dispersion.
pub const EST_ERROR_MARGIN: f64 = 1.5;

/// Tuning knobs for plan construction.
#[derive(Copy, Clone, Debug)]
pub struct SampleConfig {
    /// Interval size in micro-ops.
    pub interval_uops: u64,
    /// Projected BBV dimensionality.
    pub dim: usize,
    /// Largest cluster count tried by the BIC-style k sweep.
    pub max_k: usize,
    /// k-means iteration cap.
    pub kmeans_iters: usize,
    /// Functional-warmup length, in micro-ops simulated (unmeasured) before
    /// each sample point — converted to whole intervals at plan build. Too
    /// short and every point re-pays misses the continuously-simulated
    /// cache would have hit (front-end structures hold history far beyond
    /// the micro-op cache itself), biasing hit rates down; the cost of a
    /// point grows linearly with it. Specified in uops, not intervals, so
    /// the warm state is equally deep whatever the interval size.
    pub warmup_uops: u64,
    /// Target number of measured sample points across all clusters,
    /// distributed proportionally to cluster weight (at least one per
    /// cluster). One point per cluster is the textbook SimPoint setting; it
    /// is only accurate when clusters are internally homogeneous. Multiple
    /// stratified points per cluster average residual within-cluster
    /// variance away at a cost linear in the point count.
    pub target_points: usize,
    /// Seed for projection and centroid initialisation.
    pub seed: u64,
}

impl SampleConfig {
    /// Defaults (dim 32, k ≤ 8, 40 iterations, 20K-uop warmup, 16 sample
    /// points) for a given interval size and seed.
    pub fn new(interval_uops: u64, seed: u64) -> Self {
        SampleConfig {
            interval_uops,
            dim: 32,
            max_k: 8,
            kmeans_iters: 40,
            warmup_uops: 20_000,
            target_points: 24,
            seed,
        }
    }
}

/// One cluster's simulation plan.
#[derive(Clone, Debug)]
pub struct ClusterPlan {
    /// Interval index of the representative (closest to the centroid;
    /// distance ties break toward the lowest interval index).
    pub representative: usize,
    /// Interval indices of the measured sample points, ascending: a
    /// stratified (evenly spaced in stream order) subset of the cluster's
    /// members, sized proportionally to the cluster's weight. The cluster's
    /// metrics are the uop-weighted average over these points.
    pub points: Vec<usize>,
    /// Interval index of the probe (farthest member), when the cluster
    /// measures only a single point and has a second member to probe with —
    /// the probe's disagreement with that point stands in for the
    /// within-cluster dispersion that multiple points would measure.
    pub probe: Option<usize>,
    /// Number of member intervals.
    pub members: usize,
    /// Total micro-ops across member intervals.
    pub uops: u64,
    /// `uops / total_uops` — the reconstruction weight.
    pub weight: f64,
}

/// A complete sampling plan for one trace.
#[derive(Clone, Debug)]
pub struct SamplePlan {
    /// Interval size the trace was sliced at.
    pub interval_uops: u64,
    /// Chosen cluster count.
    pub k: usize,
    /// The interval table, in stream order.
    pub intervals: Vec<Interval>,
    /// Cluster index of each interval (indexes into [`SamplePlan::clusters`]).
    pub assignments: Vec<usize>,
    /// Per-cluster plans, ordered by representative interval index.
    pub clusters: Vec<ClusterPlan>,
    /// Micro-ops in the whole trace (the weight denominator).
    pub total_uops: u64,
    /// Functional-warmup length in intervals: [`SampleConfig::warmup_uops`]
    /// rounded up to whole intervals (at least one).
    pub warmup_intervals: usize,
}

impl SamplePlan {
    /// Builds a plan: slice → fingerprint → cluster → select. Pure function
    /// of `(trace, cfg)`.
    pub fn build(trace: &LookupTrace, cfg: &SampleConfig) -> SamplePlan {
        let (intervals, vectors) =
            fingerprint_intervals(trace, cfg.interval_uops, cfg.dim, cfg.seed);
        let clustering = choose_k(&vectors, cfg.max_k, cfg.seed, cfg.kmeans_iters);
        let total_uops: u64 = intervals.iter().map(|iv| iv.uops).sum();

        // Representative (closest) and probe (farthest) per raw cluster.
        // Strict comparisons tie-break toward the lowest interval index,
        // because intervals are visited in stream order.
        let dist2 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let mut raw: Vec<Option<ClusterPlan>> = vec![None; clustering.k];
        let mut member_lists: Vec<Vec<usize>> = vec![Vec::new(); clustering.k];
        let mut best: Vec<f64> = vec![f64::INFINITY; clustering.k];
        let mut worst: Vec<f64> = vec![f64::NEG_INFINITY; clustering.k];
        for (i, iv) in intervals.iter().enumerate() {
            let c = clustering.assignments[i];
            let d = dist2(&vectors[i], &clustering.centroids[c]);
            let entry = raw[c].get_or_insert(ClusterPlan {
                representative: i,
                points: Vec::new(),
                probe: None,
                members: 0,
                uops: 0,
                weight: 0.0,
            });
            member_lists[c].push(i);
            entry.members += 1;
            entry.uops += iv.uops;
            if d < best[c] {
                best[c] = d;
                entry.representative = i;
            }
            if d > worst[c] {
                worst[c] = d;
                entry.probe = Some(i);
            }
        }

        // Canonical cluster order: by representative interval index.
        let mut clusters: Vec<(usize, ClusterPlan)> = raw
            .into_iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|p| (c, p)))
            .collect();
        clusters.sort_by_key(|(_, p)| p.representative);
        let mut remap = vec![usize::MAX; clustering.k];
        for (new_idx, (old_idx, _)) in clusters.iter().enumerate() {
            remap[*old_idx] = new_idx;
        }
        let assignments: Vec<usize> = clustering.assignments.iter().map(|&c| remap[c]).collect();
        for (old_idx, p) in &mut clusters {
            // Stratified sample points: the cluster's proportional share of
            // the target (at least 1, at most every member), spread evenly
            // over the members in stream order. `(2j+1)·m / 2p` is
            // `floor((j + ½)·m/p)` in integers — strictly increasing for
            // p ≤ m, so the points are distinct and ascending.
            let members = &member_lists[*old_idx];
            let m = members.len();
            let share = if total_uops == 0 {
                1
            } else {
                let rounded =
                    (cfg.target_points as u64 * p.uops * 2 + total_uops) / (2 * total_uops);
                usize::try_from(rounded).unwrap_or(usize::MAX)
            };
            let count = share.clamp(1, m);
            p.points = (0..count)
                .map(|j| members[(2 * j + 1) * m / (2 * count)])
                .collect();
            // With several measured points the within-cluster dispersion is
            // observed directly; the probe only earns its simulation when a
            // single point would otherwise go unchecked (and is a genuinely
            // different interval).
            if p.points.len() > 1 || p.probe == Some(p.points[0]) {
                p.probe = None;
            }
            p.weight = if total_uops == 0 {
                0.0
            } else {
                p.uops as f64 / total_uops as f64
            };
        }
        let clusters: Vec<ClusterPlan> = clusters.into_iter().map(|(_, p)| p).collect();

        SamplePlan {
            interval_uops: cfg.interval_uops.max(1),
            k: clusters.len(),
            intervals,
            assignments,
            clusters,
            total_uops,
            warmup_intervals: usize::try_from(cfg.warmup_uops.div_ceil(cfg.interval_uops.max(1)))
                .unwrap_or(usize::MAX)
                .max(1),
        }
    }

    /// Per-cluster reconstruction weights (sum to 1 for a non-empty trace).
    pub fn weights(&self) -> Vec<f64> {
        self.clusters.iter().map(|c| c.weight).collect()
    }

    /// Weighted reconstruction of a per-uop metric: `Σ weight_c · value_c`,
    /// where `value_c` was measured on cluster `c`'s representative. Exact
    /// for any metric that is constant within each cluster.
    ///
    /// # Panics
    ///
    /// Panics if `per_cluster` does not have one value per cluster.
    pub fn estimate(&self, per_cluster: &[f64]) -> f64 {
        assert_eq!(
            per_cluster.len(),
            self.clusters.len(),
            "one value per cluster"
        );
        self.clusters
            .iter()
            .zip(per_cluster)
            .map(|(c, v)| c.weight * v)
            .sum()
    }

    /// The reported error bound for a rate metric: the floor plus a margin
    /// over the weighted within-cluster dispersion. A cluster with several
    /// measured points contributes the standard error of its point values
    /// (`std/√p` — the uncertainty of the mean the reconstruction actually
    /// uses); a single-point cluster contributes its point↔probe
    /// disagreement instead; a singleton with no probe contributes nothing
    /// — its point *is* the cluster.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not have one entry per cluster (with, per
    /// cluster, one value per sample point).
    pub fn error_bound(&self, point_metric: &[Vec<f64>], probe_metric: &[Option<f64>]) -> f64 {
        assert_eq!(
            point_metric.len(),
            self.clusters.len(),
            "one entry per cluster"
        );
        assert_eq!(
            probe_metric.len(),
            self.clusters.len(),
            "one entry per cluster"
        );
        let dispersion: f64 = self
            .clusters
            .iter()
            .zip(point_metric.iter().zip(probe_metric))
            .map(|(c, (pts, probe))| {
                assert_eq!(pts.len(), c.points.len(), "one value per sample point");
                let d = if pts.len() >= 2 {
                    let n = pts.len() as f64;
                    let mean = pts.iter().sum::<f64>() / n;
                    let var = pts.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
                    (var / n).sqrt()
                } else {
                    probe.map_or(0.0, |p| (pts[0] - p).abs())
                };
                c.weight * d
            })
            .sum();
        EST_ERROR_FLOOR + EST_ERROR_MARGIN * dispersion
    }

    /// The functional-warmup range for an interval: the accesses of (up to)
    /// the `warmup_intervals` preceding intervals. Intervals at the trace
    /// start get whatever prefix exists; interval 0 gets none, so the
    /// genuine cold-start region stays represented. Simulating the warmup
    /// range before measuring gives the cache a realistically warm state
    /// without charging its misses to the sample.
    pub fn warmup_range(&self, interval_index: usize) -> Range<usize> {
        if interval_index == 0 || self.intervals.is_empty() {
            return 0..0;
        }
        let first = interval_index.saturating_sub(self.warmup_intervals);
        self.intervals[first].start_access..self.intervals[interval_index].start_access
    }

    /// The concatenated accesses of every simulation point, in trace order —
    /// the sampled stand-in for the full trace wherever a *training* trace is
    /// needed (e.g. profile-guided policy preparation). Using every point
    /// rather than just the cluster representatives keeps profile-guided
    /// policies faithful: when the points cover all intervals the training
    /// trace degenerates to the full trace.
    pub fn representative_trace(&self, trace: &LookupTrace) -> LookupTrace {
        let mut members: Vec<usize> = self
            .clusters
            .iter()
            .flat_map(|c| c.points.iter().copied())
            .collect();
        members.sort_unstable();
        let mut out = LookupTrace::new();
        for m in members {
            out.extend(trace.slice(self.intervals[m].range()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    fn plan_for(app: AppId, len: usize, interval: u64) -> (LookupTrace, SamplePlan) {
        let trace = build_trace(app, InputVariant(0), len);
        let plan = SamplePlan::build(&trace, &SampleConfig::new(interval, 0xfeed));
        (trace, plan)
    }

    #[test]
    fn weights_sum_to_one_and_cover_the_trace() {
        let (trace, plan) = plan_for(AppId::Kafka, 8_000, 4_000);
        assert!(plan.k >= 1);
        assert_eq!(plan.total_uops, trace.total_uops());
        let sum: f64 = plan.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
        let member_total: usize = plan.clusters.iter().map(|c| c.members).sum();
        assert_eq!(member_total, plan.intervals.len());
    }

    #[test]
    fn representatives_and_points_belong_to_their_clusters() {
        let (_, plan) = plan_for(AppId::Wordpress, 12_000, 2_000);
        for (c, cl) in plan.clusters.iter().enumerate() {
            assert_eq!(plan.assignments[cl.representative], c);
            assert!(!cl.points.is_empty());
            assert!(cl.points.len() <= cl.members);
            for w in cl.points.windows(2) {
                assert!(w[0] < w[1], "points ascend and are distinct");
            }
            for &p in &cl.points {
                assert_eq!(plan.assignments[p], c);
            }
            if let Some(p) = cl.probe {
                assert_eq!(plan.assignments[p], c);
                assert_eq!(cl.points.len(), 1, "probes only back single points");
                assert_ne!(p, cl.points[0]);
            }
        }
        // Stratification spends about the configured budget across clusters.
        let total_points: usize = plan.clusters.iter().map(|c| c.points.len()).sum();
        assert!(total_points >= plan.k);
        assert!(total_points <= plan.intervals.len());
        // Canonical order: representatives ascend.
        for w in plan.clusters.windows(2) {
            assert!(w[0].representative < w[1].representative);
        }
    }

    #[test]
    fn piecewise_constant_metrics_reconstruct_exactly() {
        let (_, plan) = plan_for(AppId::Clang, 10_000, 2_500);
        // Invent a metric constant within each cluster: its cluster index.
        let per_cluster: Vec<f64> = (0..plan.clusters.len()).map(|c| c as f64).collect();
        let est = plan.estimate(&per_cluster);
        // Ground truth: uop-weighted mean over intervals of their cluster's
        // value — identical by construction.
        let truth: f64 = plan
            .intervals
            .iter()
            .enumerate()
            .map(|(i, iv)| plan.assignments[i] as f64 * iv.uops as f64)
            .sum::<f64>()
            / plan.total_uops as f64;
        assert!((est - truth).abs() < 1e-9, "est {est} vs truth {truth}");
    }

    #[test]
    fn error_bound_floors_and_grows_with_dispersion() {
        let (_, plan) = plan_for(AppId::Python, 9_000, 3_000);
        let flat: Vec<Vec<f64>> = plan
            .clusters
            .iter()
            .map(|c| vec![0.9; c.points.len()])
            .collect();
        let noisy: Vec<Vec<f64>> = plan
            .clusters
            .iter()
            .map(|c| {
                (0..c.points.len())
                    .map(|j| if j % 2 == 0 { 0.95 } else { 0.45 })
                    .collect()
            })
            .collect();
        let probes: Vec<Option<f64>> = plan.clusters.iter().map(|c| c.probe.map(|_| 0.9)).collect();
        let tight = plan.error_bound(&flat, &probes);
        assert!(tight >= EST_ERROR_FLOOR);
        if plan.clusters.iter().any(|c| c.points.len() >= 2) {
            assert!(plan.error_bound(&noisy, &probes) > tight);
        }
        // Single-point clusters fall back to probe disagreement.
        if plan.clusters.iter().any(|c| c.probe.is_some()) {
            let far: Vec<Option<f64>> =
                plan.clusters.iter().map(|c| c.probe.map(|_| 0.1)).collect();
            assert!(plan.error_bound(&flat, &far) > tight);
        }
    }

    #[test]
    fn warmup_covers_the_preceding_intervals() {
        let (_, plan) = plan_for(AppId::Mysql, 6_000, 1_500);
        assert_eq!(plan.warmup_range(0), 0..0);
        if plan.intervals.len() > 1 {
            assert_eq!(plan.warmup_range(1), plan.intervals[0].range());
        }
        let last = plan.intervals.len() - 1;
        let w = plan.warmup_range(last);
        // Warmup ends exactly where the measured interval begins and spans
        // at most `warmup_intervals` intervals.
        assert_eq!(w.end, plan.intervals[last].start_access);
        assert_eq!(
            w.start,
            plan.intervals[last.saturating_sub(plan.warmup_intervals)].start_access
        );
    }

    #[test]
    fn representative_trace_concatenates_point_slices() {
        let (trace, plan) = plan_for(AppId::Tomcat, 8_000, 2_000);
        let rep = plan.representative_trace(&trace);
        let expected: usize = plan
            .clusters
            .iter()
            .flat_map(|c| c.points.iter())
            .map(|&m| plan.intervals[m].len())
            .sum();
        assert_eq!(rep.len(), expected);
        let total_points: usize = plan.clusters.iter().map(|c| c.points.len()).sum();
        if total_points == plan.intervals.len() {
            assert_eq!(rep.len(), trace.len());
        } else {
            assert!(rep.len() < trace.len());
        }
    }
}
