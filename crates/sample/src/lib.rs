//! # uopcache-sample
//!
//! SimPoint-style representative-interval sampling for the `uopcache`
//! workspace (after "Improving the Representativeness of Simulation
//! Intervals for the Cache Memory System" — see PAPERS.md): instead of
//! simulating a long trace end-to-end, simulate a handful of
//! representative slices and reconstruct whole-trace metrics from them.
//!
//! The pipeline, each stage a pure function of its inputs:
//!
//! 1. **Slice** ([`slice_intervals`]) — cut the trace into consecutive
//!    intervals of a fixed micro-op count.
//! 2. **Fingerprint** ([`fingerprint_intervals`], backed by
//!    `uopcache_obs::BbvRecorder`) — fold each interval's accesses into a
//!    prediction-window basic-block vector, random-projected to a fixed
//!    dimension with seeded ±1 signs.
//! 3. **Cluster** ([`kmeans`], [`choose_k`]) — deterministic seeded
//!    k-means over the projected vectors; `k` picked by a BIC-style score.
//! 4. **Select** ([`SamplePlan::build`]) — per cluster, the member closest
//!    to the centroid becomes the *representative* and the farthest member
//!    the *probe*; cluster weights are micro-op shares.
//! 5. **Simulate** ([`simulate_interval`]) — run each representative (and
//!    probe) with functional warmup from its preceding interval.
//! 6. **Reconstruct** ([`SamplePlan::estimate`]) — whole-trace metrics as
//!    the weighted average of representative metrics, with an error bound
//!    ([`SamplePlan::error_bound`]) from representative↔probe dispersion.
//!
//! Determinism contract: nothing here reads a clock, thread id, or
//! iteration order of an unordered container; a sampled sweep is therefore
//! byte-identical at any `--jobs`/`--shards` count.

pub mod interval;
pub mod kmeans;
pub mod plan;
pub mod sim;

pub use interval::{fingerprint_intervals, slice_intervals, Interval};
pub use kmeans::{choose_k, kmeans, Clustering};
pub use plan::{ClusterPlan, SampleConfig, SamplePlan, EST_ERROR_FLOOR, EST_ERROR_MARGIN};
pub use sim::simulate_interval;
