//! Representative-interval simulation with functional warmup.

use std::ops::Range;

use uopcache_cache::PwReplacementPolicy;
use uopcache_model::{FrontendConfig, LookupTrace, SimResult};
use uopcache_sim::Frontend;

/// Simulates one interval of `trace` and returns its isolated result:
/// the frontend first replays the `warmup` accesses (typically the
/// preceding interval — functional warmup, so the measured interval starts
/// from a realistically warm cache instead of a cold one), then runs
/// `measure`. [`Frontend::run`] reports per-run deltas, so the returned
/// result charges only the measured accesses.
///
/// An empty `warmup` skips warmup (used for intervals at the trace start).
pub fn simulate_interval(
    cfg: &FrontendConfig,
    policy: Box<dyn PwReplacementPolicy>,
    trace: &LookupTrace,
    warmup: Range<usize>,
    measure: Range<usize>,
) -> SimResult {
    let mut fe = Frontend::builder(*cfg).policy(policy).build();
    if !warmup.is_empty() {
        let _ = fe.run(&trace.slice(warmup));
    }
    fe.run(&trace.slice(measure))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uopcache_cache::LruPolicy;
    use uopcache_trace::{build_trace, AppId, InputVariant};

    #[test]
    fn warmup_does_not_leak_into_measured_counters() {
        let cfg = FrontendConfig::zen3();
        let trace = build_trace(AppId::Kafka, InputVariant(0), 4_000);
        let warmed = simulate_interval(
            &cfg,
            Box::new(LruPolicy::new()),
            &trace,
            0..2_000,
            2_000..4_000,
        );
        let requested: u64 = trace.slice(2_000..4_000).total_uops();
        assert_eq!(warmed.uopc.uops_requested, requested);
    }

    #[test]
    fn warmup_improves_on_cold_start_for_reused_code() {
        let cfg = FrontendConfig::zen3();
        let trace = build_trace(AppId::Postgres, InputVariant(0), 6_000);
        let cold = simulate_interval(&cfg, Box::new(LruPolicy::new()), &trace, 0..0, 3_000..6_000);
        let warm = simulate_interval(
            &cfg,
            Box::new(LruPolicy::new()),
            &trace,
            0..3_000,
            3_000..6_000,
        );
        assert!(warm.uopc.uops_hit >= cold.uopc.uops_hit);
    }
}
