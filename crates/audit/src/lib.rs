//! # uopcache-audit
//!
//! The workspace's correctness-tooling layer: a zero-external-dependency
//! static-analysis pass plus a runtime policy-conformance harness.
//!
//! The paper's headline results (FLACK optimality, FURBYS miss reduction)
//! are only as trustworthy as the policy implementations — a single
//! off-by-one in victim indexing or slot recycling silently shifts every
//! figure. And the repo's operational guarantees (zero-allocation warmed
//! hot path, byte-identical output at any `--jobs`) were until v2 enforced
//! only *dynamically*, on the inputs the tests happen to run. This crate
//! guards those boundaries statically:
//!
//! * **Lint pass** ([`run_lint`]): a hand-rolled tokenizer ([`lexer`]) and
//!   item parser ([`parser`]) walk every workspace `.rs` file, build a
//!   workspace-wide call graph ([`callgraph`]), and run three graph
//!   analyses ([`reach`]) on top of the token-pattern rules:
//!   alloc-reachability from the hot-path roots, hash-order-dependence of
//!   canonical output, and lock/spawn discipline in the concurrent crates.
//!   Violations print `file:line` diagnostics with call-path traces; an
//!   [`Allowlist`] file (entries carry a mandatory `reason:` and optional
//!   `expires:`) or an inline `audit:allow(rule)` comment suppresses
//!   justified exceptions, and stale suppressions are themselves
//!   diagnostics.
//! * **Conformance harness** ([`run_conformance`]): drives all online
//!   replacement policies through seeded random PW streams under
//!   [`uopcache_cache::CheckedPolicy`] (feature `strict-invariants`), so any
//!   violation of the `PwReplacementPolicy` contract panics at the exact
//!   hook with a replayable diagnostic.
//!
//! Both halves are exposed through the CLI's `audit` subcommand, which
//! exits nonzero if either finds a problem; `audit --json` emits the
//! diagnostics as canonical JSON ([`diagnostics_json`]) and `audit
//! --graph` dumps the call graph ([`callgraph_json`]) for downstream
//! tooling.

pub mod callgraph;
pub mod conformance;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;

pub use conformance::{run_conformance, ConformanceResult};
pub use rules::{
    callgraph_json, diagnostics_json, run_lint, run_lint_sources, today_utc, Allowlist,
    AuditReport, Diagnostic,
};
