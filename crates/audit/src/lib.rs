//! # uopcache-audit
//!
//! The workspace's correctness-tooling layer: a zero-external-dependency
//! static-analysis pass plus a runtime policy-conformance harness.
//!
//! The paper's headline results (FLACK optimality, FURBYS miss reduction)
//! are only as trustworthy as the policy implementations — a single
//! off-by-one in victim indexing or slot recycling silently shifts every
//! figure. This crate guards that boundary from two sides:
//!
//! * **Lint pass** ([`run_lint`]): a hand-rolled Rust tokenizer walks every
//!   workspace `.rs` file and enforces repo-specific rules — no `unwrap()`
//!   (or undocumented `expect()`) in the correctness-core crates, no exact
//!   float equality in metrics code, no unchecked narrowing casts in
//!   slot/set arithmetic, and unique `name()` strings across replacement
//!   policies. Violations print `file:line` diagnostics; an [`Allowlist`]
//!   file (or an inline `audit:allow(rule)` comment) suppresses justified
//!   exceptions.
//! * **Conformance harness** ([`run_conformance`]): drives all nine online
//!   replacement policies through seeded random PW streams under
//!   [`uopcache_cache::CheckedPolicy`] (feature `strict-invariants`), so any
//!   violation of the `PwReplacementPolicy` contract panics at the exact
//!   hook with a replayable diagnostic.
//!
//! Both halves are exposed through the CLI's `audit` subcommand, which
//! exits nonzero if either finds a problem.

pub mod conformance;
pub mod lexer;
pub mod rules;

pub use conformance::{run_conformance, ConformanceResult};
pub use rules::{run_lint, Allowlist, Diagnostic};
