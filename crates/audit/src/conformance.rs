//! Runtime conformance checks: every online replacement policy is driven
//! through a seeded random PW stream under [`CheckedPolicy`], so any
//! violation of the [`PwReplacementPolicy`] contract surfaces as a failure
//! here rather than as a silently wrong figure.
//!
//! [`PwReplacementPolicy`]: uopcache_cache::PwReplacementPolicy

use uopcache_cache::checked::verify_stats;
use uopcache_cache::{CheckedPolicy, LruPolicy, PwReplacementPolicy, UopCache};
use uopcache_core::{FurbysPolicy, HintMap};
use uopcache_model::rng::{Prng, Rng};
use uopcache_model::{Addr, LookupTrace, PwAccess, PwDesc, PwTermination, UopCacheConfig};
use uopcache_policies::{
    run_trace, ArcPolicy, CarPolicy, ClockPolicy, FifoPolicy, GhrpPolicy, LfuPolicy,
    MockingjayPolicy, MruPolicy, RandomPolicy, SetDuelingPolicy, ShipPlusPlusPolicy, SlruPolicy,
    SrripPolicy, ThermometerPolicy, TwoQPolicy,
};

/// Outcome of one policy's conformance run.
#[derive(Clone, Debug)]
pub struct ConformanceResult {
    /// The policy's `name()`.
    pub policy: &'static str,
    /// `Ok(hooks_checked)` or the violation's panic message.
    pub outcome: Result<u64, String>,
}

/// Every online policy — the paper's roster, the classic zoo, and the
/// set-dueling meta-policy — freshly constructed with deterministic inputs.
fn online_policies() -> Vec<Box<dyn PwReplacementPolicy>> {
    let mut hints = HintMap::new(3);
    let mut rates = uopcache_model::hash::FastHashMap::default();
    for i in 0..24u64 {
        hints.set(
            Addr::new(0x1000 + i * 64),
            u8::try_from(i % 8).expect("i % 8 < 8"),
        );
        rates.insert(
            Addr::new(0x1000 + i * 64),
            f64::from(u32::try_from(i).expect("i < 24")) / 24.0,
        );
    }
    vec![
        Box::new(LruPolicy::new()),
        Box::new(FifoPolicy::new()),
        Box::new(RandomPolicy::new(99)),
        Box::new(SrripPolicy::new()),
        Box::new(ShipPlusPlusPolicy::new()),
        Box::new(GhrpPolicy::new()),
        Box::new(MockingjayPolicy::new()),
        Box::new(ThermometerPolicy::from_hit_rates(&rates)),
        Box::new(FurbysPolicy::new(hints)),
        Box::new(MruPolicy::new()),
        Box::new(LfuPolicy::new()),
        Box::new(ClockPolicy::new()),
        Box::new(SlruPolicy::new()),
        Box::new(TwoQPolicy::new()),
        Box::new(ArcPolicy::new()),
        Box::new(CarPolicy::new()),
        Box::new(SetDuelingPolicy::default_zoo()),
    ]
}

/// A seeded random PW stream exercising overlap, multi-entry windows and
/// heavy eviction pressure.
fn stress_trace(seed: u64, len: usize) -> LookupTrace {
    let mut rng = Prng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let slot = rng.gen_range(0..24u64);
            let uops = rng.gen_range(1..28u32);
            PwAccess::new(PwDesc::new(
                Addr::new(0x1000 + slot * 64),
                uops,
                uops * 3,
                PwTermination::TakenBranch,
            ))
        })
        .collect()
}

/// The small geometry used for conformance stress: few ways, so victim
/// selection and slot recycling fire constantly.
fn stress_cfg() -> UopCacheConfig {
    UopCacheConfig {
        entries: 8,
        ways: 4,
        uops_per_entry: 8,
        switch_penalty: 1,
        inclusive_with_l1i: true,
        max_entries_per_pw: 4,
    }
}

/// Runs every online policy under [`CheckedPolicy`] over `rounds` seeded
/// traces of `len` accesses each, returning one result per policy.
///
/// A policy's entry is `Ok(total_hooks_checked)` if every hook in every
/// round satisfied the contract, otherwise the first violation's panic
/// message (which carries the replay coordinate).
pub fn run_conformance(rounds: u64, len: usize) -> Vec<ConformanceResult> {
    let cfg = stress_cfg();
    let policy_count = online_policies().len();
    (0..policy_count)
        .map(|pi| {
            let name = online_policies()[pi].name();
            let mut hooks = 0u64;
            for seed in 0..rounds {
                let trace = stress_trace(0xA0D17 + seed, len);
                let outcome = std::panic::catch_unwind(|| {
                    let policy = online_policies().swap_remove(pi);
                    let checked = CheckedPolicy::new(policy, cfg.ways);
                    let mut cache = UopCache::new(cfg, Box::new(checked));
                    let stats = run_trace(&mut cache, &trace);
                    verify_stats(&stats);
                    stats.lookups
                });
                match outcome {
                    Ok(checked_hooks) => hooks += checked_hooks,
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        return ConformanceResult {
                            policy: name,
                            outcome: Err(format!("seed {seed}: {msg}")),
                        };
                    }
                }
            }
            ConformanceResult {
                policy: name,
                outcome: Ok(hooks),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_online_policy_conforms() {
        let results = run_conformance(4, 400);
        assert_eq!(results.len(), 17);
        for r in &results {
            match &r.outcome {
                Ok(hooks) => assert!(*hooks > 0, "{}: no hooks checked", r.policy),
                Err(e) => panic!("{} violated the contract: {e}", r.policy),
            }
        }
    }

    #[test]
    fn policy_names_are_the_canonical_roster() {
        let names: Vec<_> = run_conformance(1, 10).iter().map(|r| r.policy).collect();
        assert_eq!(
            names,
            [
                "LRU",
                "FIFO",
                "Random",
                "SRRIP",
                "SHiP++",
                "GHRP",
                "Mockingjay",
                "Thermometer",
                "FURBYS",
                "MRU",
                "LFU",
                "CLOCK",
                "SLRU",
                "2Q",
                "ARC",
                "CAR",
                "set-dueling"
            ]
        );
    }
}
