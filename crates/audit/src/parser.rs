//! A lightweight Rust *item* parser over the lexer's token stream.
//!
//! Granularity is `fn` / `impl` / `trait` / `struct` / `mod` — deliberately
//! no expression grammar. The parser extracts exactly what the call-graph
//! passes need:
//!
//! * every function with its enclosing `impl` type and implemented trait,
//!   its parameter names and *base types*, and its body token range;
//! * every struct's field-name → base-type map (so `self.field.method(..)`
//!   receivers resolve to concrete types);
//! * every trait's method-name list (so calls through `dyn Trait` objects
//!   fan out to all implementations);
//! * audit markers read from comments: `audit:hot-path` (extra
//!   alloc-reachability root), `audit:alloc-exempt` (construction-time
//!   function or impl, pruned from the hot closure), `audit:spawn-site`
//!   (accounted thread-spawn location), `audit:canonical-output` (extra
//!   determinism-emission root). A marker applies to the `fn` or `impl`
//!   declared on the same line or within the three lines below it; markers
//!   on an `impl` apply to every function in the block.
//!
//! A *base type* is the innermost meaningful type name: `Vec<PwSet>` → the
//! type `PwSet`, `Box<dyn PwReplacementPolicy>` → the trait
//! `PwReplacementPolicy`, `&'a [PwMeta]` → `PwMeta`. Smart-pointer and
//! container wrappers are stripped because method calls auto-deref through
//! them in practice for the patterns this codebase uses.

use crate::lexer::{Tok, TokKind};

/// Container/pointer wrappers stripped when extracting a base type.
const WRAPPERS: [&str; 12] = [
    "Vec",
    "VecDeque",
    "Box",
    "Option",
    "Arc",
    "Rc",
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "Pin",
    "ManuallyDrop",
];

/// Audit markers attached to a function (possibly inherited from its impl).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Markers {
    /// `audit:hot-path` — the fn is an alloc-reachability root.
    pub hot_path: bool,
    /// `audit:alloc-exempt` — construction-time; pruned from the closure.
    pub alloc_exempt: bool,
    /// `audit:spawn-site` — accounted thread-spawn location.
    pub spawn_site: bool,
    /// `audit:canonical-output` — determinism-emission root.
    pub canonical_output: bool,
}

impl Markers {
    fn merge(self, other: Markers) -> Markers {
        Markers {
            hot_path: self.hot_path || other.hot_path,
            alloc_exempt: self.alloc_exempt || other.alloc_exempt,
            spawn_site: self.spawn_site || other.spawn_site,
            canonical_output: self.canonical_output || other.canonical_output,
        }
    }

    fn any(self) -> bool {
        self.hot_path || self.alloc_exempt || self.spawn_site || self.canonical_output
    }
}

/// A parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The `impl` block's type (`impl PwSet` → `PwSet`), or for a trait's
    /// default method, the trait name itself.
    pub self_type: Option<String>,
    /// The trait being implemented, if this fn sits in `impl Trait for T`
    /// (or is a trait default method).
    pub trait_impl: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (for `#[cfg(test)]`-range checks).
    pub decl_tok: usize,
    /// Body token range `[start, end)`, exclusive of the braces. `None` for
    /// bodyless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Parameter `(name, base_type)` pairs; the receiver is omitted.
    pub params: Vec<(String, String)>,
    /// Markers from comments (fn-level merged with impl-level).
    pub markers: Markers,
}

/// A parsed struct with its field-name → base-type pairs.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// `(field, base_type)` pairs for named-field structs.
    pub fields: Vec<(String, String)>,
}

/// A parsed trait with its method names.
#[derive(Clone, Debug)]
pub struct TraitItem {
    /// The trait name.
    pub name: String,
    /// Names of all methods (defaulted or not) declared by the trait.
    pub methods: Vec<String>,
}

/// All items parsed from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Functions (free, inherent, trait-impl, and trait-default).
    pub fns: Vec<FnItem>,
    /// Structs with named fields.
    pub structs: Vec<StructItem>,
    /// Trait declarations.
    pub traits: Vec<TraitItem>,
}

/// Extracts audit markers from a file's comments as `(line, marker)` pairs.
fn comment_markers(comments: &[(u32, String)]) -> Vec<(u32, Markers)> {
    comments
        .iter()
        .filter_map(|(line, text)| {
            let m = Markers {
                hot_path: text.contains("audit:hot-path"),
                alloc_exempt: text.contains("audit:alloc-exempt"),
                spawn_site: text.contains("audit:spawn-site"),
                canonical_output: text.contains("audit:canonical-output"),
            };
            m.any().then_some((*line, m))
        })
        .collect()
}

/// Parser state threaded through the item walk.
struct Parser<'a> {
    toks: &'a [Tok],
    /// Unconsumed `(line, markers)` pairs, in source order.
    markers: Vec<(u32, Markers)>,
    out: FileItems,
}

impl Parser<'_> {
    /// Consumes markers attributable to an item declared at `decl_line`:
    /// same line (trailing comment) or up to three lines above.
    fn take_markers(&mut self, decl_line: u32) -> Markers {
        let lo = decl_line.saturating_sub(3);
        let mut acc = Markers::default();
        self.markers.retain(|(line, m)| {
            if (lo..=decl_line).contains(line) {
                acc = acc.merge(*m);
                false
            } else {
                true
            }
        });
        acc
    }

    /// Index just past the bracket group opening at `open` (`(`/`[`/`{`),
    /// balanced over all three bracket kinds.
    fn skip_group(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            match self.toks[i].text.as_str() {
                "(" | "[" | "{" if self.toks[i].kind == TokKind::Punct => depth += 1,
                ")" | "]" | "}" if self.toks[i].kind == TokKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Index just past a generics group opening with `<` at `open`.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.toks.len() {
            match self.toks[i].text.as_str() {
                "<" if self.toks[i].kind == TokKind::Punct => depth += 1,
                ">" if self.toks[i].kind == TokKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Parses the items in `toks[i..end)`; returns with `self.out` filled.
    ///
    /// `self_type`/`trait_impl` carry the enclosing `impl` context;
    /// `in_trait` is set inside a `trait` declaration body;
    /// `inherited` holds impl-level markers to merge into each fn.
    #[allow(clippy::too_many_lines)]
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        self_type: Option<&str>,
        trait_impl: Option<&str>,
        in_trait: Option<&str>,
        inherited: Markers,
    ) {
        while i < end {
            let t = &self.toks[i];
            if t.kind != TokKind::Ident {
                if t.is_punct("#") {
                    // Attribute: `#[..]` or `#![..]` — skip the bracket group.
                    let mut j = i + 1;
                    if self.toks.get(j).is_some_and(|t| t.is_punct("!")) {
                        j += 1;
                    }
                    if self.toks.get(j).is_some_and(|t| t.is_punct("[")) {
                        i = self.skip_group(j);
                        continue;
                    }
                } else if t.is_punct("{") {
                    i = self.skip_group(i);
                    continue;
                }
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "fn" if self.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) => {
                    i = self.parse_fn(i, end, self_type, trait_impl, in_trait, inherited);
                }
                "impl" => {
                    i = self.parse_impl(i, end);
                }
                "trait" if self.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) => {
                    i = self.parse_trait(i, end);
                }
                "struct" if self.toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) => {
                    i = self.parse_struct(i, end);
                }
                "enum" | "union" | "macro_rules" => {
                    // Skip to the body braces (or terminating `;`) and past.
                    let mut j = i + 1;
                    while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
                        j += 1;
                    }
                    i = if self.toks.get(j).is_some_and(|t| t.is_punct("{")) {
                        self.skip_group(j)
                    } else {
                        j + 1
                    };
                }
                "mod" => {
                    // `mod name { .. }` — recurse; `mod name;` — skip.
                    let mut j = i + 1;
                    while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
                        j += 1;
                    }
                    if self.toks.get(j).is_some_and(|t| t.is_punct("{")) {
                        let close = self.skip_group(j);
                        self.items(j + 1, close.saturating_sub(1), None, None, None, inherited);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                }
                "const" | "static" if !self.toks.get(i + 1).is_some_and(|t| t.is_ident("fn")) => {
                    // `const NAME: T = expr;` — skip to the `;`, balancing
                    // any brace/paren groups in the initializer.
                    let mut j = i + 1;
                    while j < end {
                        let tj = &self.toks[j];
                        if tj.is_punct(";") {
                            j += 1;
                            break;
                        }
                        if tj.is_punct("{") || tj.is_punct("(") || tj.is_punct("[") {
                            j = self.skip_group(j);
                        } else {
                            j += 1;
                        }
                    }
                    i = j;
                }
                "use" | "extern" | "type" => {
                    while i < end && !self.toks[i].is_punct(";") {
                        i += 1;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Parses a `fn` at token `i`; returns the index just past the item.
    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        self_type: Option<&str>,
        trait_impl: Option<&str>,
        in_trait: Option<&str>,
        inherited: Markers,
    ) -> usize {
        let name = self.toks[i + 1].text.clone();
        let line = self.toks[i].line;
        let mut j = i + 2;
        if self.toks.get(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        let params = if self.toks.get(j).is_some_and(|t| t.is_punct("(")) {
            let close = self.skip_group(j);
            let p = self.parse_params(j + 1, close.saturating_sub(1));
            j = close;
            p
        } else {
            Vec::new()
        };
        // Skip the return type / where clause to the body or `;`.
        while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
            j += 1;
        }
        let markers = self.take_markers(line).merge(inherited);
        if let Some(tr) = in_trait {
            // Record the method on the trait regardless of a default body.
            if let Some(t) = self.out.traits.iter_mut().find(|t| t.name == tr) {
                if !t.methods.contains(&name) {
                    t.methods.push(name.clone());
                }
            }
        }
        if self.toks.get(j).is_some_and(|t| t.is_punct("{")) {
            let close = self.skip_group(j);
            let (st, ti) = match in_trait {
                // A trait default method: callable on any implementor.
                Some(tr) => (Some(tr.to_string()), Some(tr.to_string())),
                None => (
                    self_type.map(str::to_string),
                    trait_impl.map(str::to_string),
                ),
            };
            self.out.fns.push(FnItem {
                name,
                self_type: st,
                trait_impl: ti,
                line,
                decl_tok: i,
                body: Some((j + 1, close.saturating_sub(1))),
                params,
                markers,
            });
            close
        } else {
            // Bodyless signature (trait method or extern): no FnItem.
            j + 1
        }
    }

    /// Parses `impl .. {` at token `i`; returns index just past the block.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let line = self.toks[i].line;
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        let header_start = j;
        while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct("{")) {
            return j + 1;
        }
        let header = &self.toks[header_start..j];
        // Truncate at a top-level `where`.
        let header_end = header
            .iter()
            .position(|t| t.is_ident("where"))
            .unwrap_or(header.len());
        let header = &header[..header_end];
        let for_pos = header.iter().position(|t| t.is_ident("for"));
        let (ty, tr) = match for_pos {
            Some(f) => {
                let tr = path_tail(&header[..f]);
                let ty = extract_base(&header[f + 1..]);
                (ty, tr)
            }
            None => (extract_base(header), None),
        };
        let markers = self.take_markers(line);
        let close = self.skip_group(j);
        self.items(
            j + 1,
            close.saturating_sub(1),
            ty.as_deref(),
            tr.as_deref(),
            None,
            markers,
        );
        close
    }

    /// Parses `trait Name .. {` at token `i`.
    fn parse_trait(&mut self, i: usize, end: usize) -> usize {
        let name = self.toks[i + 1].text.clone();
        let mut j = i + 2;
        while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct("{")) {
            return j + 1;
        }
        self.out.traits.push(TraitItem {
            name: name.clone(),
            methods: Vec::new(),
        });
        let close = self.skip_group(j);
        self.items(
            j + 1,
            close.saturating_sub(1),
            None,
            None,
            Some(&name),
            Markers::default(),
        );
        close
    }

    /// Parses `struct Name .. { fields }` (or tuple/unit struct) at `i`.
    fn parse_struct(&mut self, i: usize, end: usize) -> usize {
        let name = self.toks[i + 1].text.clone();
        let mut j = i + 2;
        if self.toks.get(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        while j < end
            && !self.toks[j].is_punct("{")
            && !self.toks[j].is_punct("(")
            && !self.toks[j].is_punct(";")
        {
            j += 1;
        }
        match self.toks.get(j) {
            Some(t) if t.is_punct("{") => {
                let close = self.skip_group(j);
                let fields = self.parse_fields(j + 1, close.saturating_sub(1));
                self.out.structs.push(StructItem { name, fields });
                close
            }
            Some(t) if t.is_punct("(") => {
                // Tuple struct: skip the group and the trailing `;`.
                let close = self.skip_group(j);
                self.out.structs.push(StructItem {
                    name,
                    fields: Vec::new(),
                });
                close + 1
            }
            _ => j + 1,
        }
    }

    /// Parses named struct fields in `toks[i..end)`.
    fn parse_fields(&mut self, mut i: usize, end: usize) -> Vec<(String, String)> {
        let mut fields = Vec::new();
        while i < end {
            let t = &self.toks[i];
            if t.is_punct("#") {
                // Field attribute.
                if self.toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
                    i = self.skip_group(i + 1);
                    continue;
                }
            }
            if t.is_ident("pub") {
                i += 1;
                if self.toks.get(i).is_some_and(|t| t.is_punct("(")) {
                    i = self.skip_group(i);
                }
                continue;
            }
            if t.kind == TokKind::Ident && self.toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
                let fname = t.text.clone();
                // Type tokens run to the next top-level comma.
                let mut j = i + 2;
                let mut depth = 0i32;
                while j < end {
                    let tj = &self.toks[j];
                    match tj.text.as_str() {
                        "(" | "[" | "{" | "<" if tj.kind == TokKind::Punct => depth += 1,
                        ")" | "]" | "}" | ">" if tj.kind == TokKind::Punct => depth -= 1,
                        "," if tj.kind == TokKind::Punct && depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(base) = extract_base(&self.toks[i + 2..j]) {
                    fields.push((fname, base));
                }
                i = j + 1;
                continue;
            }
            i += 1;
        }
        fields
    }

    /// Parses fn parameters in `toks[i..end)` into `(name, base_type)`.
    fn parse_params(&self, i: usize, end: usize) -> Vec<(String, String)> {
        let mut params = Vec::new();
        // Split on top-level commas.
        let mut seg_start = i;
        let mut depth = 0i32;
        let mut k = i;
        let mut flush = |seg: &[Tok]| {
            if let Some(p) = parse_one_param(seg) {
                params.push(p);
            }
        };
        while k < end {
            let t = &self.toks[k];
            match t.text.as_str() {
                "(" | "[" | "{" | "<" if t.kind == TokKind::Punct => depth += 1,
                ")" | "]" | "}" | ">" if t.kind == TokKind::Punct => depth -= 1,
                "," if t.kind == TokKind::Punct && depth == 0 => {
                    flush(&self.toks[seg_start..k]);
                    seg_start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        flush(&self.toks[seg_start..end]);
        params
    }
}

/// Parses one `name: Type` parameter segment; receivers and non-identifier
/// patterns yield `None`.
fn parse_one_param(seg: &[Tok]) -> Option<(String, String)> {
    // Find the first top-level `:`.
    let mut depth = 0i32;
    let mut colon = None;
    for (k, t) in seg.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" | ">" if t.kind == TokKind::Punct => depth -= 1,
            ":" if t.kind == TokKind::Punct && depth == 0 => {
                colon = Some(k);
                break;
            }
            _ => {}
        }
    }
    let colon = colon?;
    // The receiver (`self`, `&mut self`, ..) has no top-level colon, but
    // `self: Box<Self>` does — reject any segment naming `self`.
    if seg[..colon].iter().any(|t| t.is_ident("self")) {
        return None;
    }
    // Only simple `name: Type` (optionally `mut name`) patterns are useful
    // for receiver typing; tuple/struct patterns have a non-ident token
    // right before the colon and are skipped.
    let name_tok = seg.get(colon.checked_sub(1)?)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let base = extract_base(&seg[colon + 1..])?;
    Some((name_tok.text.clone(), base))
}

/// The first path-resolved identifier in a token slice: skips `&`, `mut`,
/// `dyn`, `impl`, lifetimes, wrapper generics and path qualifiers.
/// `Box<dyn PwReplacementPolicy>` → `PwReplacementPolicy`;
/// `std::sync::Mutex<Inner>` → `Inner`; `&'a [PwMeta]` → `PwMeta`.
pub fn extract_base(toks: &[Tok]) -> Option<String> {
    let mut last_wrapper: Option<&str> = None;
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Ident {
            let name = t.text.as_str();
            let qualified = toks.get(k + 1).is_some_and(|n| n.is_punct("::"));
            if qualified || matches!(name, "dyn" | "mut" | "impl" | "const" | "as") {
                k += 1;
                continue;
            }
            if WRAPPERS.contains(&name) {
                last_wrapper = Some(name);
                k += 1;
                continue;
            }
            return Some(name.to_string());
        }
        k += 1;
    }
    // `Box<[u8]>`-style: nothing but wrappers and primitives-by-punct; the
    // outermost wrapper is still a useful (if vague) answer.
    last_wrapper.map(str::to_string)
}

/// The trait name from an impl header's pre-`for` tokens: the tail of the
/// first path (`uopcache_cache::PwReplacementPolicy` → the latter; `From<X>`
/// → `From`).
fn path_tail(toks: &[Tok]) -> Option<String> {
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "impl") {
            if toks.get(k + 1).is_some_and(|n| n.is_punct("::")) {
                k += 2;
                continue;
            }
            return Some(t.text.clone());
        }
        k += 1;
    }
    None
}

/// Parses the items of one tokenized file.
pub fn parse_items(toks: &[Tok], comments: &[(u32, String)]) -> FileItems {
    let mut p = Parser {
        toks,
        markers: comment_markers(comments),
        out: FileItems::default(),
    };
    p.items(0, toks.len(), None, None, None, Markers::default());
    p.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize_full;

    fn parse(src: &str) -> FileItems {
        let lexed = tokenize_full(src);
        parse_items(&lexed.toks, &lexed.comments)
    }

    #[test]
    fn fns_get_impl_and_trait_context() {
        let items = parse(
            "struct S { policy: Box<dyn Pol>, sets: Vec<Set> }\n\
             trait Pol { fn hook(&mut self); fn dflt(&self) { self.hook(); } }\n\
             impl Pol for S { fn hook(&mut self) {} }\n\
             impl S { fn helper(&self, x: &Set) -> u32 { 0 } }\n\
             fn free(a: u64) {}\n",
        );
        let names: Vec<_> = items
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.self_type.as_deref(),
                    f.trait_impl.as_deref(),
                )
            })
            .collect();
        assert!(names.contains(&("dflt", Some("Pol"), Some("Pol"))));
        assert!(names.contains(&("hook", Some("S"), Some("Pol"))));
        assert!(names.contains(&("helper", Some("S"), None)));
        assert!(names.contains(&("free", None, None)));
        let s = &items.structs[0];
        assert_eq!(
            s.fields,
            vec![
                ("policy".to_string(), "Pol".to_string()),
                ("sets".to_string(), "Set".to_string()),
            ]
        );
        let t = &items.traits[0];
        assert_eq!(t.methods, vec!["hook".to_string(), "dflt".to_string()]);
    }

    #[test]
    fn params_capture_base_types() {
        let items = parse("fn f(a: &mut Vec<PwMeta>, _b: usize, (c, d): (u8, u8)) {}");
        assert_eq!(
            items.fns[0].params,
            vec![
                ("a".to_string(), "PwMeta".to_string()),
                ("_b".to_string(), "usize".to_string()),
            ]
        );
    }

    #[test]
    fn markers_attach_to_next_item_and_propagate_from_impl() {
        let items = parse(
            "// audit:hot-path\nfn hot() {}\nfn cold() {}\n\
             // audit:alloc-exempt — conformance harness\nimpl C {\n  fn a(&self) {}\n  fn b(&self) {}\n}\n",
        );
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).expect("fn exists");
        assert!(by_name("hot").markers.hot_path);
        assert!(!by_name("cold").markers.hot_path);
        assert!(by_name("a").markers.alloc_exempt);
        assert!(by_name("b").markers.alloc_exempt);
    }

    #[test]
    fn impl_of_boxed_trait_object_resolves_to_trait_name() {
        let items = parse("impl Pol for Box<dyn Pol> { fn hook(&mut self) {} }");
        assert_eq!(items.fns[0].self_type.as_deref(), Some("Pol"));
        assert_eq!(items.fns[0].trait_impl.as_deref(), Some("Pol"));
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_the_walk() {
        let items = parse(
            "impl<P: Pol + Send> Wrapper<P> where P: Clone {\n\
             fn get<Q: Into<u64>>(&self, q: Q) -> u64 { q.into() }\n}",
        );
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].self_type.as_deref(), Some("Wrapper"));
        assert_eq!(items.fns[0].trait_impl, None);
    }
}
