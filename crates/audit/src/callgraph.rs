//! Workspace-wide call-graph construction over parsed items.
//!
//! Each parsed function becomes a node; call sites in its body become edges,
//! resolved by *receiver typing*:
//!
//! * `self.method(..)` → the enclosing impl type's methods;
//! * `self.field.method(..)` / `self.field[i].method(..)` → the field's base
//!   type (a trait-object field like `Box<dyn PwReplacementPolicy>` fans out
//!   to **every** implementation of the trait — exactly how a policy hook
//!   call behaves dynamically);
//! * `param.method(..)` → the parameter's base type;
//! * `Type::assoc(..)` / `Self::assoc(..)` → that type's methods;
//! * anything else (locals, chained call results) → conservatively, every
//!   workspace method with that name.
//!
//! Calls that resolve to *no* workspace function are checked against an
//! allocation denylist (`push`, `extend`, `collect`, `to_string`, ...): an
//! unresolved `.push(..)` is almost certainly `Vec::push`, and recording it
//! as allocation *evidence* is what makes the alloc-reachability pass an
//! over-approximating proof rather than a spot check. Direct constructs
//! (`Box::new`, `Vec::with_capacity`, `vec!`, `format!`, ...) are recorded
//! unconditionally. Allocation-like calls inside panic-only macros
//! (`assert!`, `panic!`, ...) are ignored: the panic path is not the hot
//! path. [`FastHashMap`]/`FastHashSet` receivers are *blessed* leaves for
//! the allocation pass — steady-state capacity-stable by construction and
//! backed by the runtime counting-allocator wall — but their iteration
//! methods still count as unordered-iteration evidence for the determinism
//! pass.
//!
//! [`FastHashMap`]: uopcache_model::hash::FastHashMap

use crate::lexer::{Tok, TokKind};
use crate::parser::{FileItems, Markers};
use std::path::Path;
use uopcache_model::hash::{FastHashMap, FastHashSet};

/// Method names that allocate when the receiver is not a workspace type.
const ALLOC_METHODS: [&str; 20] = [
    "push",
    "push_back",
    "push_front",
    "push_str",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "resize_with",
    "reserve",
    "reserve_exact",
    "insert_str",
    "split_off",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "into_boxed_slice",
    "repeat",
    "join",
];

/// `Type::method(..)` path calls that construct/allocate directly. The
/// container `new`s are included even though they defer their first heap
/// block: constructing a container per access *is* per-access allocation.
const ALLOC_PATH_CALLS: [(&str, &str); 15] = [
    ("Box", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("PathBuf", "from"),
];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Panic-family macros: their interiors are the panic path, not the hot
/// path, so allocation evidence inside them is not recorded.
const PANIC_MACROS: [&str; 10] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Map/set types whose iteration order is hash-dependent.
const MAP_TYPES: [&str; 4] = ["FastHashMap", "FastHashSet", "HashMap", "HashSet"];

/// Blessed leaf types for the allocation pass (see module docs).
const BLESSED_TYPES: [&str; 2] = ["FastHashMap", "FastHashSet"];

/// Methods that iterate a map in hash order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Method names that never use the unresolved-receiver name fallback:
/// ubiquitous std iterator/`Option`/`Result` adapters. An unresolved
/// `.all(..)` is an iterator adapter, not `PolicyRegistry::all`; resolving
/// it by name would drag unrelated workspace methods into every hot path.
/// Workspace methods with these names are still resolved when the receiver
/// types (self, fields, params).
const NO_FALLBACK_METHODS: [&str; 26] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "into_iter",
    "drain",
    "all",
    "any",
    "map",
    "filter",
    "filter_map",
    "fold",
    "for_each",
    "find",
    "position",
    "count",
    "max_by_key",
    "min_by_key",
    "rev",
    "take",
    "skip",
    "enumerate",
    "flatten",
    "last",
    "expect",
    "get",
];

/// One file's parse results, viewed by the graph builder.
pub struct FileView<'a> {
    /// Workspace-relative path.
    pub path: &'a Path,
    /// The file's code tokens.
    pub toks: &'a [Tok],
    /// Parsed items.
    pub items: &'a FileItems,
    /// Token ranges under `#[cfg(test)]`.
    pub test_ranges: &'a [(usize, usize)],
}

/// A call-graph node: one parsed function.
#[derive(Clone, Debug)]
pub struct Node {
    /// Index into the builder's file list.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Enclosing impl type.
    pub self_type: Option<String>,
    /// Implemented trait, if any.
    pub trait_impl: Option<String>,
    /// 1-indexed declaration line.
    pub line: u32,
    /// Body token range in the owning file.
    pub body: (usize, usize),
    /// Parameter `(name, base_type)` pairs.
    pub params: Vec<(String, String)>,
    /// Audit markers.
    pub markers: Markers,
    /// Whether the fn sits under `#[cfg(test)]`.
    pub in_test: bool,
}

impl Node {
    /// `Type::name` or bare `name` — for diagnostics and the JSON dump.
    pub fn display_name(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An allocation (or map-iteration) evidence site inside a function body.
#[derive(Clone, Debug)]
pub struct Evidence {
    /// 1-indexed line of the construct.
    pub line: u32,
    /// What was found (`` `Vec::with_capacity(..)` `` etc.).
    pub what: String,
    /// Token index — used for the later-`sort` suppression of iteration
    /// evidence.
    pub tok: usize,
}

/// The workspace call graph plus per-node analysis evidence.
pub struct CallGraph {
    /// All nodes, in file order then declaration order (deterministic).
    pub nodes: Vec<Node>,
    /// `edges[n]` — callee node indices, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Per-node allocation evidence.
    pub allocs: Vec<Vec<Evidence>>,
    /// Per-node unordered-map-iteration evidence (already suppressed where
    /// a `sort*` call follows later in the same body).
    pub map_iters: Vec<Vec<Evidence>>,
    /// Names of all declared traits.
    pub traits: FastHashSet<String>,
}

/// Builds the call graph over all files.
pub fn build(files: &[FileView]) -> CallGraph {
    // ---- indexes -------------------------------------------------------
    let mut nodes: Vec<Node> = Vec::new();
    let mut fields: FastHashMap<String, FastHashMap<String, String>> = FastHashMap::default();
    let mut traits: FastHashSet<String> = FastHashSet::default();
    for (fi, f) in files.iter().enumerate() {
        for s in &f.items.structs {
            let entry = fields.entry(s.name.clone()).or_default();
            for (name, ty) in &s.fields {
                entry.insert(name.clone(), ty.clone());
            }
        }
        for t in &f.items.traits {
            traits.insert(t.name.clone());
        }
        for item in &f.items.fns {
            let Some(body) = item.body else { continue };
            let in_test = f
                .test_ranges
                .iter()
                .any(|&(s, e)| (s..=e).contains(&item.decl_tok));
            nodes.push(Node {
                file: fi,
                name: item.name.clone(),
                self_type: item.self_type.clone(),
                trait_impl: item.trait_impl.clone(),
                line: item.line,
                body,
                params: item.params.clone(),
                markers: item.markers,
                in_test,
            });
        }
    }
    let mut methods_by_type: FastHashMap<(String, String), Vec<usize>> = FastHashMap::default();
    let mut methods_by_name: FastHashMap<String, Vec<usize>> = FastHashMap::default();
    let mut trait_methods: FastHashMap<(String, String), Vec<usize>> = FastHashMap::default();
    let mut free_by_name: FastHashMap<String, Vec<usize>> = FastHashMap::default();
    for (i, n) in nodes.iter().enumerate() {
        match &n.self_type {
            Some(ty) => {
                methods_by_type
                    .entry((ty.clone(), n.name.clone()))
                    .or_default()
                    .push(i);
                methods_by_name.entry(n.name.clone()).or_default().push(i);
            }
            None => free_by_name.entry(n.name.clone()).or_default().push(i),
        }
        if let Some(tr) = &n.trait_impl {
            trait_methods
                .entry((tr.clone(), n.name.clone()))
                .or_default()
                .push(i);
        }
    }

    // ---- body scans ----------------------------------------------------
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut allocs: Vec<Vec<Evidence>> = vec![Vec::new(); nodes.len()];
    let mut map_iters: Vec<Vec<Evidence>> = vec![Vec::new(); nodes.len()];

    let resolve_method = |ty: Option<&str>, m: &str| -> Vec<usize> {
        match ty {
            Some(ty) => {
                let mut c: Vec<usize> = methods_by_type
                    .get(&(ty.to_string(), m.to_string()))
                    .cloned()
                    .unwrap_or_default();
                if traits.contains(ty) {
                    if let Some(more) = trait_methods.get(&(ty.to_string(), m.to_string())) {
                        c.extend_from_slice(more);
                    }
                }
                c
            }
            None if NO_FALLBACK_METHODS.contains(&m) => Vec::new(),
            None => methods_by_name.get(m).cloned().unwrap_or_default(),
        }
    };

    for (ni, node) in nodes.iter().enumerate() {
        let f = &files[node.file];
        let toks = f.toks;
        let (bs, be) = node.body;
        let mut sort_positions: Vec<usize> = Vec::new();
        let mut k = bs;
        while k < be {
            let t = &toks[k];
            if t.kind != TokKind::Ident {
                k += 1;
                continue;
            }
            let name = t.text.as_str();
            if name.starts_with("sort") {
                sort_positions.push(k);
            }
            // Macro invocation.
            if toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
                && toks
                    .get(k + 2)
                    .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
            {
                if PANIC_MACROS.contains(&name) {
                    k = skip_group(toks, k + 2).min(be);
                    continue;
                }
                if ALLOC_MACROS.contains(&name) {
                    allocs[ni].push(Evidence {
                        line: t.line,
                        what: format!("`{name}!(..)`"),
                        tok: k,
                    });
                }
                k += 2;
                continue;
            }
            // Call? Either `name(` or turbofish `name::<..>(`.
            let call = if toks.get(k + 1).is_some_and(|n| n.is_punct("(")) {
                true
            } else {
                toks.get(k + 1).is_some_and(|n| n.is_punct("::"))
                    && toks.get(k + 2).is_some_and(|n| n.is_punct("<"))
                    && {
                        let after = skip_angles_at(toks, k + 2);
                        toks.get(after).is_some_and(|n| n.is_punct("("))
                    }
            };
            if !call {
                k += 1;
                continue;
            }
            let prev = k.checked_sub(1).map(|p| &toks[p]);
            let mut targets: Vec<usize> = Vec::new();
            if prev.is_some_and(|p| p.is_punct(".")) {
                // Method call: type the receiver chain.
                let chain = receiver_chain(toks, k - 2, bs);
                let recv_ty = chain
                    .as_deref()
                    .and_then(|c| type_of_chain(c, node, &fields));
                let is_map = recv_ty.as_deref().is_some_and(|t| MAP_TYPES.contains(&t));
                if is_map && ITER_METHODS.contains(&name) {
                    map_iters[ni].push(Evidence {
                        line: t.line,
                        what: format!(
                            "`.{name}()` on hash-ordered `{}`",
                            recv_ty.as_deref().unwrap_or("map")
                        ),
                        tok: k,
                    });
                } else if recv_ty
                    .as_deref()
                    .is_some_and(|t| BLESSED_TYPES.contains(&t))
                {
                    // Blessed leaf: capacity-stable by construction, backed
                    // by the runtime allocator wall.
                } else if recv_ty.is_none() && ALLOC_METHODS.contains(&name) {
                    // An untyped `.push(..)`/`.collect()`/... is almost
                    // certainly a std container or iterator: record it as
                    // evidence here rather than fanning out by name, which
                    // would both misplace the span and drag unrelated
                    // workspace methods into the path.
                    allocs[ni].push(Evidence {
                        line: t.line,
                        what: format!("`.{name}(..)` on an unresolved receiver"),
                        tok: k,
                    });
                } else {
                    targets = resolve_method(recv_ty.as_deref(), name);
                    if targets.is_empty() && ALLOC_METHODS.contains(&name) {
                        allocs[ni].push(Evidence {
                            line: t.line,
                            what: format!(
                                "`.{name}(..)` on {}",
                                recv_ty.as_deref().map_or_else(
                                    || "an unresolved receiver".to_string(),
                                    |t| { format!("`{t}`") }
                                )
                            ),
                            tok: k,
                        });
                    }
                }
            } else if prev.is_some_and(|p| p.is_punct("::")) {
                // Path call `Qual::name(..)`.
                let qual = k
                    .checked_sub(2)
                    .map(|q| &toks[q])
                    .filter(|q| q.kind == TokKind::Ident)
                    .map(|q| q.text.clone());
                match qual.as_deref() {
                    Some("Self") => {
                        targets = resolve_method(node.self_type.as_deref(), name);
                    }
                    Some(q) => {
                        let c = resolve_method(Some(q), name);
                        if c.is_empty() {
                            if ALLOC_PATH_CALLS.contains(&(q, name)) {
                                allocs[ni].push(Evidence {
                                    line: t.line,
                                    what: format!("`{q}::{name}(..)`"),
                                    tok: k,
                                });
                            } else if let Some(frees) = free_by_name.get(name) {
                                // Module-qualified free fn.
                                targets = frees.clone();
                            }
                        } else {
                            targets = c;
                        }
                    }
                    None => {}
                }
            } else {
                // Free call.
                targets = free_by_name.get(name).cloned().unwrap_or_default();
            }
            for t in targets {
                if t != ni {
                    edges[ni].push(t);
                }
            }
            k += 1;
        }
        // Iteration followed by an in-body `sort*` is the canonical
        // sorted-emission idiom: suppress it.
        if let Some(&last_sort) = sort_positions.last() {
            map_iters[ni].retain(|e| e.tok > last_sort);
        }
    }
    for e in &mut edges {
        e.sort_unstable();
        e.dedup();
    }
    CallGraph {
        nodes,
        edges,
        allocs,
        map_iters,
        traits,
    }
}

/// Index just past the bracket group opening at `open`.
fn skip_group(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" if toks[i].kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if toks[i].kind == TokKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Index just past an angle-bracket group opening at `open`.
fn skip_angles_at(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" if toks[i].kind == TokKind::Punct => depth += 1,
            ">" if toks[i].kind == TokKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Walks a receiver chain backwards from `end` (the token just before the
/// `.` of a method call), stripping index groups: `self.sets[i]` → `[self,
/// sets]`. Returns `None` for receivers rooted at a call result or other
/// non-path expression.
pub(crate) fn receiver_chain(toks: &[Tok], end: usize, lo: usize) -> Option<Vec<String>> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = end;
    loop {
        if j < lo || j >= toks.len() {
            break;
        }
        let t = &toks[j];
        if t.is_punct("]") {
            // Strip one index group.
            let mut depth = 0i32;
            let mut b = j;
            loop {
                if toks[b].is_punct("]") {
                    depth += 1;
                } else if toks[b].is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if b == lo {
                    return None;
                }
                b -= 1;
            }
            if b == lo {
                return None;
            }
            j = b - 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            parts.push(t.text.clone());
            if j > lo && toks[j - 1].is_punct(".") && j >= 2 {
                j -= 2;
                continue;
            }
            break;
        }
        // `)`-rooted (call result), literals, `?`, etc: unresolved.
        return if parts.is_empty() {
            None
        } else {
            break_some(parts)
        };
    }
    if parts.is_empty() {
        None
    } else {
        parts.reverse();
        Some(parts)
    }
}

fn break_some(mut parts: Vec<String>) -> Option<Vec<String>> {
    parts.reverse();
    Some(parts)
}

/// Types a receiver chain against the enclosing function's context.
fn type_of_chain(
    chain: &[String],
    node: &Node,
    fields: &FastHashMap<String, FastHashMap<String, String>>,
) -> Option<String> {
    if chain.len() > 4 {
        return None;
    }
    let first = chain.first()?;
    let mut ty: String = if first == "self" {
        node.self_type.clone()?
    } else {
        node.params
            .iter()
            .find(|(n, _)| n == first)
            .map(|(_, t)| t.clone())?
    };
    for part in &chain[1..] {
        ty = fields.get(&ty)?.get(part)?.clone();
    }
    Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize_full;
    use crate::parser::parse_items;
    use std::path::PathBuf;

    struct Owned {
        path: PathBuf,
        toks: Vec<Tok>,
        items: FileItems,
    }

    fn prepare(srcs: &[(&str, &str)]) -> Vec<Owned> {
        srcs.iter()
            .map(|(p, s)| {
                let lexed = tokenize_full(s);
                let items = parse_items(&lexed.toks, &lexed.comments);
                Owned {
                    path: PathBuf::from(p),
                    toks: lexed.toks,
                    items,
                }
            })
            .collect()
    }

    fn graph(owned: &[Owned]) -> CallGraph {
        let views: Vec<FileView> = owned
            .iter()
            .map(|o| FileView {
                path: &o.path,
                toks: &o.toks,
                items: &o.items,
                test_ranges: &[],
            })
            .collect();
        build(&views)
    }

    fn idx(g: &CallGraph, disp: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.display_name() == disp)
            .unwrap_or_else(|| panic!("node {disp} missing"))
    }

    #[test]
    fn field_typed_receivers_resolve_precisely() {
        let owned = prepare(&[(
            "crates/cache/src/a.rs",
            "struct Cache { sets: Vec<Set> }\n\
             struct Set { n: u32 }\n\
             impl Set { fn insert(&mut self) {} fn find(&self) {} }\n\
             impl Cache { fn lookup(&mut self, i: usize) { self.sets[i].insert(); } }\n",
        )]);
        let g = graph(&owned);
        let lookup = idx(&g, "Cache::lookup");
        let insert = idx(&g, "Set::insert");
        let find = idx(&g, "Set::find");
        assert!(g.edges[lookup].contains(&insert));
        assert!(!g.edges[lookup].contains(&find));
    }

    #[test]
    fn trait_object_fields_fan_out_to_all_impls() {
        let owned = prepare(&[(
            "crates/cache/src/a.rs",
            "trait Pol { fn on_hit(&mut self); }\n\
             struct Cache { policy: Box<dyn Pol> }\n\
             struct A; struct B;\n\
             impl Pol for A { fn on_hit(&mut self) {} }\n\
             impl Pol for B { fn on_hit(&mut self) {} }\n\
             impl Cache { fn hit(&mut self) { self.policy.on_hit(); } }\n",
        )]);
        let g = graph(&owned);
        let hit = idx(&g, "Cache::hit");
        assert!(g.edges[hit].contains(&idx(&g, "A::on_hit")));
        assert!(g.edges[hit].contains(&idx(&g, "B::on_hit")));
    }

    #[test]
    fn unresolved_alloc_methods_and_direct_constructs_are_evidence() {
        let owned = prepare(&[(
            "crates/cache/src/a.rs",
            "fn f() { let mut v = Vec::with_capacity(4); v.push(1); let s = format!(\"x\"); }",
        )]);
        let g = graph(&owned);
        let f = idx(&g, "f");
        let whats: Vec<_> = g.allocs[f].iter().map(|e| e.what.as_str()).collect();
        assert!(
            whats.iter().any(|w| w.contains("with_capacity")),
            "{whats:?}"
        );
        assert!(whats.iter().any(|w| w.contains("push")), "{whats:?}");
        assert!(whats.iter().any(|w| w.contains("format")), "{whats:?}");
    }

    #[test]
    fn panic_macro_interiors_are_not_evidence() {
        let owned = prepare(&[(
            "crates/cache/src/a.rs",
            "fn f(x: u32) { assert!(x > 0, \"bad {}\", format!(\"{x}\")); }",
        )]);
        let g = graph(&owned);
        assert!(g.allocs[idx(&g, "f")].is_empty());
    }

    #[test]
    fn blessed_map_mutation_is_clean_but_iteration_is_evidence() {
        let owned = prepare(&[(
            "crates/policies/src/a.rs",
            "struct P { rdp: FastHashMap<u64, u64> }\n\
             impl P {\n\
               fn train(&mut self, a: u64) { self.rdp.insert(a, 1); }\n\
               fn emit(&self) { for (k, v) in self.rdp.iter() { let _ = (k, v); } }\n\
               fn emit_sorted(&self) { let mut v: Vec<u64> = Vec::new(); for (k, _) in self.rdp.iter() { v.push(*k); } v.sort_unstable(); }\n\
             }\n",
        )]);
        let g = graph(&owned);
        assert!(g.allocs[idx(&g, "P::train")].is_empty());
        assert_eq!(g.map_iters[idx(&g, "P::emit")].len(), 1);
        // sorted afterwards → suppressed
        assert!(g.map_iters[idx(&g, "P::emit_sorted")].is_empty());
    }
}
